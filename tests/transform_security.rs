//! Integration: locking security under synthesis-like optimization.
//!
//! A real attacker sees the design *after* optimization. Constant folding
//! must neither break the locked design's function nor re-open the
//! learning channel ERA closed: key muxes are opaque to a key-oblivious
//! optimizer, so localities survive and the ODT balance is untouched.

use mlrl::attack::extract_localities;
use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::odt::Odt;
use mlrl::locking::pairs::PairTable;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
use mlrl::rtl::equiv::{check_equiv, EquivConfig};
use mlrl::rtl::transform::constant_fold;
use mlrl::rtl::visit;

#[test]
fn folding_a_locked_design_preserves_function() {
    for bench in ["DES3", "RSA"] {
        let spec = benchmark_by_name(bench).expect("benchmark");
        let original = generate(&spec, 21);
        let mut locked = original.clone();
        let total = visit::binary_ops(&locked).len();
        let outcome = era_lock(&mut locked, &EraConfig::new(total / 2, 23)).expect("lock");
        let mut folded = locked.clone();
        constant_fold(&mut folded).expect("fold");
        let r = check_equiv(
            &original,
            &folded,
            &[],
            outcome.key.as_bits(),
            &EquivConfig::default(),
        )
        .expect("equiv");
        assert!(
            r.is_equivalent(),
            "{bench}: folding broke the locked design"
        );
    }
}

#[test]
fn folding_keeps_every_locality() {
    let spec = benchmark_by_name("DES3").expect("benchmark");
    let mut locked = generate(&spec, 25);
    let total = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total / 2, 27)).expect("lock");
    let before = extract_localities(&locked);
    let mut folded = locked.clone();
    constant_fold(&mut folded).expect("fold");
    let after = extract_localities(&folded);
    assert_eq!(
        before.len(),
        after.len(),
        "folding must not remove key muxes"
    );
    assert_eq!(before.len(), outcome.key.len());
    // Key-bit coverage identical.
    let bits = |locs: &[mlrl::attack::Locality]| {
        let mut b: Vec<u32> = locs.iter().map(|l| l.key_bit).collect();
        b.sort_unstable();
        b
    };
    assert_eq!(bits(&before), bits(&after));
}

#[test]
fn era_balance_survives_folding() {
    // Folding can only remove constant-operand ops in *pairs-agnostic*
    // positions; on our benchmarks (no constant-constant ops) the census
    // and hence Def. 1 balance are unchanged.
    let spec = benchmark_by_name("MD5").expect("benchmark");
    let mut locked = generate(&spec, 29);
    let total = visit::binary_ops(&locked).len();
    era_lock(&mut locked, &EraConfig::new(total * 3 / 4, 31)).expect("lock");
    let mut folded = locked.clone();
    constant_fold(&mut folded).expect("fold");
    let odt = Odt::load(&folded, PairTable::fixed());
    assert!(odt.is_balanced(), "folding re-opened the imbalance channel");
}

#[test]
fn attack_on_folded_era_design_stays_at_chance() {
    let mut kpas = Vec::new();
    for i in 0..3u64 {
        let spec = benchmark_by_name("FIR").expect("benchmark");
        let mut locked = generate(&spec, 60 + i);
        let total = visit::binary_ops(&locked).len();
        let outcome = era_lock(&mut locked, &EraConfig::new(total * 3 / 4, i)).expect("lock");
        let mut folded = locked.clone();
        constant_fold(&mut folded).expect("fold");
        let cfg = AttackConfig {
            relock: RelockConfig {
                rounds: 25,
                budget_fraction: 0.75,
                seed: i ^ 0x33,
            },
            ..Default::default()
        };
        let report = snapshot_attack(&folded, &outcome.key, &cfg).expect("localities");
        kpas.push(report.kpa);
    }
    let mean = kpas.iter().sum::<f64>() / kpas.len() as f64;
    assert!(
        (mean - 50.0).abs() < 16.0,
        "folded ERA target should stay near 50%: {mean:.1} ({kpas:?})"
    );
}
