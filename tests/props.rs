//! Property-based tests over the core invariants:
//!
//! - emit → parse round trips preserve semantics for arbitrary expressions,
//! - ODT incremental bookkeeping always matches a fresh census reload,
//! - lock/undo sequences restore the module exactly,
//! - the security metric stays within `[0, 100]` and the global variant is
//!   monotonic under balancing locks,
//! - locking with any scheme preserves function under the correct key.

use mlrl::locking::key::Key;
use mlrl::locking::lock_step::{lock_type, undo_lock};
use mlrl::locking::metric::SecurityMetric;
use mlrl::locking::odt::Odt;
use mlrl::locking::pairs::PairTable;
use mlrl::rtl::ast::{Expr, ExprId, Module, PortDir};
use mlrl::rtl::op::{BinaryOp, UnaryOp, ALL_BINARY_OPS};
use mlrl::rtl::sim::Simulator;
use mlrl::rtl::{emit, parser, visit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generatable expression tree (no arena ids).
#[derive(Debug, Clone)]
enum ETree {
    Const(u64, Option<u32>),
    Var(u8),
    Un(UnaryOp, Box<ETree>),
    Bin(BinaryOp, Box<ETree>, Box<ETree>),
    Tern(Box<ETree>, Box<ETree>, Box<ETree>),
}

fn etree_strategy() -> impl Strategy<Value = ETree> {
    let leaf = prop_oneof![
        (
            any::<u64>(),
            prop_oneof![Just(None), (1u32..=32).prop_map(Some)]
        )
            .prop_map(|(v, w)| ETree::Const(v & 0xFFFF, w)),
        (0u8..3).prop_map(ETree::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        let op = proptest::sample::select(ALL_BINARY_OPS.to_vec());
        let un = prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Neg), Just(UnaryOp::LNot)];
        prop_oneof![
            (un, inner.clone()).prop_map(|(u, a)| ETree::Un(u, Box::new(a))),
            (op, inner.clone(), inner.clone()).prop_map(|(o, a, b)| ETree::Bin(
                o,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| ETree::Tern(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn build(tree: &ETree, m: &mut Module) -> ExprId {
    match tree {
        ETree::Const(v, w) => {
            let masked = match w {
                Some(w) if *w < 64 => v & ((1u64 << w) - 1),
                _ => *v,
            };
            m.alloc_expr(Expr::Const {
                value: masked,
                width: *w,
            })
        }
        ETree::Var(i) => m.alloc_expr(Expr::Ident(format!("v{i}"))),
        ETree::Un(op, a) => {
            let a = build(a, m);
            m.alloc_expr(Expr::Unary { op: *op, arg: a })
        }
        ETree::Bin(op, a, b) => {
            let a = build(a, m);
            let b = build(b, m);
            m.alloc_expr(Expr::Binary {
                op: *op,
                lhs: a,
                rhs: b,
            })
        }
        ETree::Tern(c, t, e) => {
            let c = build(c, m);
            let t = build(t, m);
            let e = build(e, m);
            m.alloc_expr(Expr::Ternary {
                cond: c,
                then_expr: t,
                else_expr: e,
            })
        }
    }
}

fn module_of(tree: &ETree) -> Module {
    let mut m = Module::new("prop");
    for i in 0..3 {
        m.add_input(format!("v{i}"), 32).expect("fresh input");
    }
    m.add_output("y", 32).expect("fresh output");
    let root = build(tree, &mut m);
    m.add_assign("y", root).expect("assign");
    m
}

fn eval(m: &Module, inputs: &[u64; 3]) -> u64 {
    let mut sim = Simulator::new(m).expect("simulatable");
    for (i, v) in inputs.iter().enumerate() {
        sim.set_input(&format!("v{i}"), *v).expect("input");
    }
    sim.settle().expect("settle");
    sim.get("y").expect("output")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emit_parse_round_trip_preserves_semantics(
        tree in etree_strategy(),
        inputs in proptest::array::uniform3(any::<u64>()),
    ) {
        let m = module_of(&tree);
        let text = emit::emit_verilog(&m).expect("emit");
        let back = parser::parse_verilog(&text).expect("parse emitted Verilog");
        prop_assert_eq!(visit::op_census(&back), visit::op_census(&m));
        prop_assert_eq!(eval(&back, &inputs), eval(&m, &inputs));
    }

    #[test]
    fn double_emit_is_identical(tree in etree_strategy()) {
        let m = module_of(&tree);
        let t1 = emit::emit_verilog(&m).expect("emit");
        let back = parser::parse_verilog(&t1).expect("parse");
        let t2 = emit::emit_verilog(&back).expect("emit again");
        prop_assert_eq!(t1, t2, "emit must be a fixpoint after one round trip");
    }

    #[test]
    fn odt_bookkeeping_matches_census_reload(
        seed in any::<u64>(),
        locks in 1usize..25,
        ops in proptest::collection::vec(
            (proptest::sample::select(ALL_BINARY_OPS.to_vec()), 1usize..6), 1..5),
    ) {
        let mut m = Module::new("t");
        m.add_input("a", 32).expect("input");
        let mut widx = 0;
        for (op, n) in &ops {
            for _ in 0..*n {
                let w = format!("w{widx}");
                m.add_wire(&w, 32).expect("wire");
                let a = m.alloc_expr(Expr::Ident("a".into()));
                let b = m.alloc_expr(Expr::Ident("a".into()));
                let e = m.alloc_expr(Expr::Binary { op: *op, lhs: a, rhs: b });
                m.add_assign(&w, e).expect("assign");
                widx += 1;
            }
        }
        let mut odt = Odt::load(&m, PairTable::fixed());
        let mut key = Key::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut i = 0usize;
        'outer: for _ in 0..locks {
            // Rotate through op types until one lock succeeds.
            for _ in 0..ALL_BINARY_OPS.len() {
                let ty = ALL_BINARY_OPS[i % ALL_BINARY_OPS.len()];
                i += 1;
                if lock_type(ty, &mut odt, &mut m, &mut key, false, &mut rng).is_ok() {
                    continue 'outer;
                }
            }
            break;
        }
        let reloaded = Odt::load(&m, PairTable::fixed());
        prop_assert_eq!(odt, reloaded, "incremental ODT diverged from census");
    }

    #[test]
    fn lock_undo_sequences_restore_module(
        seed in any::<u64>(),
        n_locks in 1usize..8,
    ) {
        let mut m = Module::new("t");
        m.add_input("a", 32).expect("input");
        for i in 0..10 {
            let w = format!("w{i}");
            m.add_wire(&w, 32).expect("wire");
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let b = m.alloc_expr(Expr::Ident("a".into()));
            let op = if i % 2 == 0 { BinaryOp::Add } else { BinaryOp::Mul };
            let e = m.alloc_expr(Expr::Binary { op, lhs: a, rhs: b });
            m.add_assign(&w, e).expect("assign");
        }
        let snapshot = m.clone();
        let mut odt = Odt::load(&m, PairTable::fixed());
        let odt0 = odt.clone();
        let mut key = Key::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut txns = Vec::new();
        for j in 0..n_locks {
            let ty = if j % 2 == 0 { BinaryOp::Add } else { BinaryOp::Mul };
            if let Ok((_, txn)) = lock_type(ty, &mut odt, &mut m, &mut key, j % 3 == 0, &mut rng) {
                txns.push(txn);
            }
        }
        for txn in txns.into_iter().rev() {
            undo_lock(txn, &mut m, &mut key, &mut odt).expect("LIFO undo");
        }
        prop_assert_eq!(m, snapshot);
        prop_assert_eq!(odt, odt0);
        prop_assert!(key.is_empty());
    }

    #[test]
    fn metric_stays_in_unit_interval(
        adds in 0usize..30,
        subs in 0usize..30,
        shls in 0usize..15,
        dummy_subs in 0usize..40,
    ) {
        let mut m = Module::new("t");
        m.add_input("a", 32).expect("input");
        let mut widx = 0;
        for (op, n) in [(BinaryOp::Add, adds), (BinaryOp::Sub, subs), (BinaryOp::Shl, shls)] {
            for _ in 0..n {
                let w = format!("w{widx}");
                m.add_wire(&w, 32).expect("wire");
                let a = m.alloc_expr(Expr::Ident("a".into()));
                let b = m.alloc_expr(Expr::Ident("a".into()));
                let e = m.alloc_expr(Expr::Binary { op, lhs: a, rhs: b });
                m.add_assign(&w, e).expect("assign");
                widx += 1;
            }
        }
        let mut odt = Odt::load(&m, PairTable::fixed());
        let metric = SecurityMetric::new(&odt);
        prop_assert!((0.0..=100.0).contains(&metric.global(&odt)));
        // Balancing locks only ever move the global metric up.
        let mut last = metric.global(&odt);
        for k in 0..dummy_subs {
            // Alternate between reducing the (+,-) and (<<,>>) imbalance
            // without overshooting (overshoot is not "balancing").
            if odt.get(BinaryOp::Add) > 0 {
                odt.record_added(BinaryOp::Sub);
            } else if odt.get(BinaryOp::Add) < 0 {
                odt.record_added(BinaryOp::Add);
            } else if odt.get(BinaryOp::Shl) > 0 {
                odt.record_added(BinaryOp::Shr);
            } else {
                break;
            }
            let now = metric.global(&odt);
            prop_assert!((0.0..=100.0).contains(&now), "step {k}: {now}");
            prop_assert!(now + 1e-9 >= last, "step {k}: {last} -> {now}");
            last = now;
        }
    }

    #[test]
    fn kpa_is_percentage_and_self_consistent(
        bits in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut key = Key::new();
        for b in &bits {
            key.push(*b, mlrl::locking::key::KeyBitKind::Operation);
        }
        prop_assert_eq!(key.kpa(key.as_bits()), 100.0);
        let flipped: Vec<bool> = bits.iter().map(|b| !b).collect();
        prop_assert_eq!(key.kpa(&flipped), 0.0);
        let mut rng = StdRng::seed_from_u64(bits.len() as u64);
        let wrong = key.random_wrong_key(&mut rng);
        let kpa = key.kpa(&wrong);
        prop_assert!((0.0..=100.0).contains(&kpa));
        prop_assert!(kpa < 100.0, "a wrong key can never score 100");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn assure_locking_preserves_function_on_random_designs(
        tree in etree_strategy(),
        seed in any::<u64>(),
        inputs in proptest::array::uniform3(any::<u64>()),
    ) {
        use mlrl::locking::assure::{lock_operations, AssureConfig};
        let original = module_of(&tree);
        let n_ops = visit::binary_ops(&original).len();
        prop_assume!(n_ops > 0);
        let mut locked = original.clone();
        let key = lock_operations(&mut locked, &AssureConfig::random(n_ops.min(6), seed))
            .expect("lockable");
        let mut sim = Simulator::new(&locked).expect("simulatable");
        for (i, v) in inputs.iter().enumerate() {
            sim.set_input(&format!("v{i}"), *v).expect("input");
        }
        sim.set_key(key.as_bits()).expect("key");
        sim.settle().expect("settle");
        prop_assert_eq!(sim.get("y").expect("y"), eval(&original, &inputs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(src in "[ -~\\n]{0,200}") {
        // Any byte soup must produce Ok or Err — never a panic.
        let _ = parser::parse_verilog(&src);
        let _ = parser::parse_design(&src);
    }

    #[test]
    fn lexer_never_panics(src in proptest::string::string_regex(".{0,120}").unwrap()) {
        let _ = mlrl::rtl::lexer::tokenize(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constant_fold_preserves_semantics(
        tree in etree_strategy(),
        inputs in proptest::array::uniform3(any::<u64>()),
    ) {
        let original = module_of(&tree);
        let mut folded = original.clone();
        mlrl::rtl::transform::constant_fold(&mut folded).expect("fold");
        prop_assert_eq!(eval(&folded, &inputs), eval(&original, &inputs));
    }
}

#[test]
fn port_dir_visibility_smoke() {
    // Keep the imports honest.
    let m = module_of(&ETree::Var(0));
    assert!(m.ports().iter().any(|p| p.dir == PortDir::Output));
}
