//! Cross-level integration: RTL designs (locked and unlocked) must lower to
//! gate-level netlists that are bit-exact with the RTL simulator, and the
//! paper's locking guarantees must survive synthesis.

use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::netlist::emit::emit_structural_verilog;
use mlrl::netlist::equiv::{check_module_vs_netlist, check_netlists};
use mlrl::netlist::lower::lower_module;
use mlrl::netlist::stats::NetlistStats;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width, paper_benchmarks};
use mlrl::rtl::parser::parse_verilog;
use mlrl::rtl::visit;

/// Benchmarks whose *locked* form stays lowerable: RSA is excluded because
/// its Mod operations take Pow dummies with variable exponents.
fn lowerable_locked_benchmarks() -> Vec<&'static str> {
    vec!["DES3", "FIR", "IIR", "SASC", "SIM_SPI", "USB_PHY", "I2C_SL"]
}

#[test]
fn every_paper_benchmark_lowers_and_matches_rtl_simulation() {
    for spec in paper_benchmarks() {
        // Skip the giant synthetic networks for lowering speed; their op
        // content (pure +/- chains) is covered by the others.
        if spec.name.starts_with("N_") {
            continue;
        }
        let module = generate_with_width(&spec, 11, 8);
        let netlist =
            lower_module(&module).unwrap_or_else(|e| panic!("{} fails to lower: {e}", spec.name));
        let check = check_module_vs_netlist(&module, &netlist, &[], 40, 0, 5)
            .unwrap_or_else(|e| panic!("{} cross-check errors: {e}", spec.name));
        assert!(
            check.is_equivalent(),
            "{}: {} of {} vectors diverge (first: {:?})",
            spec.name,
            check.mismatches,
            check.samples,
            check.first_mismatch
        );
    }
}

#[test]
fn era_locked_designs_survive_synthesis_with_the_correct_key() {
    for name in lowerable_locked_benchmarks() {
        let spec = benchmark_by_name(name).expect("known benchmark");
        let original = generate_with_width(&spec, 23, 8);
        let mut locked = original.clone();
        let total = visit::binary_ops(&locked).len();
        let outcome = era_lock(&mut locked, &EraConfig::new(total * 3 / 4, 3)).expect("locks");
        let key: Vec<bool> = (0..locked.key_width())
            .map(|i| outcome.key.bit(i).unwrap_or(false))
            .collect();
        let mut netlist =
            lower_module(&locked).unwrap_or_else(|e| panic!("{name} locked fails to lower: {e}"));
        netlist.sweep();
        assert_eq!(
            netlist.key_width(),
            key.len(),
            "{name}: key width preserved"
        );
        // Correct key at gate level == original RTL function.
        let check = check_module_vs_netlist(&original, &netlist, &key, 40, 0, 7).expect("checks");
        assert!(
            check.is_equivalent(),
            "{name}: correct key must unlock, {check:?}"
        );
    }
}

#[test]
fn wrong_keys_corrupt_lowered_assure_designs() {
    let spec = benchmark_by_name("SASC").expect("known benchmark");
    let original = generate_with_width(&spec, 31, 8);
    let mut locked = original.clone();
    let key = lock_operations(&mut locked, &AssureConfig::serial(20, 9)).expect("locks");
    let key_bits: Vec<bool> = (0..locked.key_width())
        .map(|i| key.bit(i).unwrap_or(false))
        .collect();
    let mut netlist = lower_module(&locked).expect("lowers");
    netlist.sweep();
    // Flip each key bit in turn; most must visibly corrupt outputs on
    // random stimulus. Real and dummy operations can coincide on many
    // 8-bit inputs (narrow shifts, predicates), so 100% is not expected.
    let mut corrupting = 0usize;
    for flip in 0..key_bits.len() {
        let mut wrong = key_bits.clone();
        wrong[flip] = !wrong[flip];
        let check = check_module_vs_netlist(&original, &netlist, &wrong, 80, 0, flip as u64)
            .expect("checks");
        if !check.is_equivalent() {
            corrupting += 1;
        }
    }
    assert!(
        corrupting * 5 >= key_bits.len() * 3,
        "only {corrupting}/{} key bits corrupt outputs",
        key_bits.len()
    );
}

#[test]
fn structural_emission_round_trips_through_the_rtl_parser() {
    let spec = benchmark_by_name("SIM_SPI").expect("known benchmark");
    let module = generate_with_width(&spec, 5, 8);
    let mut netlist = lower_module(&module).expect("lowers");
    netlist.sweep();
    let text = emit_structural_verilog(&netlist).expect("emits");
    let reparsed = parse_verilog(&text).expect("structural Verilog reparses");
    // The reparsed gate-level module must match the original RTL module.
    let check = check_module_vs_netlist(&reparsed, &netlist, &[], 30, 0, 2).expect("checks");
    assert!(check.is_equivalent(), "round-trip diverges: {check:?}");
}

#[test]
fn synthesis_cost_scales_with_key_bits() {
    let spec = benchmark_by_name("SASC").expect("known benchmark");
    let original = generate_with_width(&spec, 17, 8);
    let base = {
        let mut n = lower_module(&original).expect("lowers");
        n.sweep();
        NetlistStats::of(&n)
    };
    let mut prev_gates = base.total_gates;
    for budget in [8usize, 16, 32] {
        let mut locked = original.clone();
        lock_operations(&mut locked, &AssureConfig::serial(budget, 1)).expect("locks");
        let mut n = lower_module(&locked).expect("lowers");
        n.sweep();
        let stats = NetlistStats::of(&n);
        assert!(
            stats.total_gates > prev_gates,
            "budget {budget}: {} gates not above {prev_gates}",
            stats.total_gates
        );
        prev_gates = stats.total_gates;
    }
}

#[test]
fn gate_level_locking_composes_with_rtl_locking() {
    // Defence in depth: ERA at RTL, then XOR/XNOR at gate level. Both keys
    // must be correct to unlock.
    let spec = benchmark_by_name("SIM_SPI").expect("known benchmark");
    let original = generate_with_width(&spec, 37, 8);
    let mut locked = original.clone();
    let total = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total / 2, 5)).expect("locks");
    let rtl_key: Vec<bool> = (0..locked.key_width())
        .map(|i| outcome.key.bit(i).unwrap_or(false))
        .collect();
    let mut netlist = lower_module(&locked).expect("lowers");
    netlist.sweep();
    let base_unlocked = lower_module(&original).expect("lowers");

    let gate_key = mlrl::netlist::lock::xor_xnor_lock(&mut netlist, 8, 3).expect("locks");
    let full_key: Vec<bool> = rtl_key.iter().chain(gate_key.bits()).copied().collect();
    let ok = check_netlists(&base_unlocked, &netlist, &[], &full_key, 50, 9).expect("checks");
    assert!(ok.is_equivalent(), "both keys correct must unlock");

    let mut wrong_gate = full_key.clone();
    let last = wrong_gate.len() - 1;
    wrong_gate[last] = !wrong_gate[last];
    let bad = check_netlists(&base_unlocked, &netlist, &[], &wrong_gate, 50, 9).expect("checks");
    assert!(!bad.is_equivalent(), "wrong gate key must corrupt");
}
