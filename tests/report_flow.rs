//! Integration coverage for the performance-intelligence tooling:
//! `mlrl report` against a frozen run-dir fixture (golden snapshot, so
//! the renderer stays byte-stable) and `mlrl bench-diff` exit-code
//! semantics over `BENCH.json` baselines.
//!
//! The fixture under `tests/data/report_fixture/` is a real (quick)
//! 2-worker orchestration's `journal.jsonl` + `metrics.json` +
//! `trace.json`, frozen at capture time; every number in the golden
//! report derives from those bytes, so the comparison is exact.

use std::path::Path;
use std::process::Command;

fn mlrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlrl"))
}

fn fixture() -> &'static Path {
    Path::new("tests/data/report_fixture")
}

#[test]
fn report_reproduces_the_golden_snapshot_byte_for_byte() {
    let golden = std::fs::read_to_string("tests/data/report_golden.txt").expect("golden report");
    let rendered =
        mlrl::orchestrate::render_report(fixture(), &mlrl::orchestrate::ReportOptions::default())
            .expect("report renders");
    assert_eq!(
        rendered, golden,
        "report output drifted from tests/data/report_golden.txt; \
         regenerate it with `mlrl report tests/data/report_fixture` if the change is intended"
    );
}

#[test]
fn folded_stack_export_matches_its_golden() {
    let golden =
        std::fs::read_to_string("tests/data/report_golden.folded").expect("golden folded stacks");
    let out = std::env::temp_dir().join(format!("mlrl-folded-{}.txt", std::process::id()));
    let opts = mlrl::orchestrate::ReportOptions {
        folded_out: Some(out.clone()),
        ..Default::default()
    };
    let rendered = mlrl::orchestrate::render_report(fixture(), &opts).expect("report renders");
    assert!(rendered.contains("folded stacks written to"));
    let folded = std::fs::read_to_string(&out).expect("folded file written");
    let _ = std::fs::remove_file(&out);
    assert_eq!(folded, golden, "folded-stack export drifted");
    // Shape sanity: every line is `lane;frame[;frame...] <self_us>`.
    for line in folded.lines() {
        let (stack, self_us) = line.rsplit_once(' ').expect("space-separated");
        assert!(
            stack.contains(';'),
            "stack must carry a lane prefix: {line}"
        );
        self_us.parse::<u64>().expect("numeric self time");
    }
}

#[test]
fn report_subcommand_prints_the_report() {
    let out = mlrl()
        .args(["report", fixture().to_str().unwrap(), "--top", "3"])
        .output()
        .expect("run mlrl report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(text.contains("campaign \"gate-vs-rtl-sweep\": 16 of 16 cells journaled"));
    assert!(text.contains("slowest cells (top 3)"));
    assert!(!text.contains(" 4. cell"), "--top 3 must truncate the list");
}

#[test]
fn bench_diff_exits_nonzero_only_on_regressions_past_the_threshold() {
    let dir = std::env::temp_dir().join(format!("mlrl-bench-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(
        &old,
        r#"{"benches":{"a":{"median_ns":1000,"min_ns":900,"max_ns":1100,"samples":5}}}"#,
    )
    .expect("old baseline");
    std::fs::write(
        &new,
        r#"{"benches":{"a":{"median_ns":1300,"min_ns":1200,"max_ns":1400,"samples":5}}}"#,
    )
    .expect("new baseline");

    // +30% against a 10% threshold: regression, nonzero exit.
    let out = mlrl()
        .args([
            "bench-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--threshold",
            "10",
        ])
        .output()
        .expect("run bench-diff");
    assert!(!out.status.success(), "a >threshold regression must fail");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("REGRESSED  a: 1000 ns -> 1300 ns (+30.0%)"),
        "{text}"
    );

    // The same move under a 50% threshold is noise: clean exit.
    let out = mlrl()
        .args([
            "bench-diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--threshold",
            "50",
        ])
        .output()
        .expect("run bench-diff");
    assert!(out.status.success(), "within-threshold moves must pass");

    // The committed CI baseline parses and diffs cleanly against itself.
    let baseline = "tests/data/bench_baseline.json";
    let out = mlrl()
        .args(["bench-diff", baseline, baseline])
        .output()
        .expect("run bench-diff on the committed baseline");
    assert!(out.status.success(), "self-diff must never regress");
    let _ = std::fs::remove_dir_all(&dir);
}
