//! The compiled simulation core is observationally identical to the old
//! interpretive semantics.
//!
//! `golden` is a test-only reimplementation of the pre-refactor RTL
//! simulator — name-keyed `HashMap` state, recursive expression walk,
//! two-phase update list for clocked processes — kept as the oracle the
//! compiled tape must match. Property tests drive both on random designs
//! (generated benchmarks, locked variants, random expression modules) with
//! random stimulus, keys, and clocking, and demand equality on every
//! declared signal.

use proptest::prelude::*;

use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width, paper_benchmarks};
use mlrl::rtl::parser::parse_verilog;
use mlrl::rtl::sim::Simulator;
use mlrl::rtl::Module;

/// The pre-refactor interpretive RTL simulator, verbatim semantics:
/// per-settle levelized walk over name-keyed values, recursive eval,
/// update-list non-blocking commits.
mod golden {
    use std::collections::HashMap;

    use mlrl::rtl::ast::{Expr, ExprId, Module, PortDir, SeqStmt};
    use mlrl::rtl::sim::eval_binary;
    use mlrl::rtl::tape::levelize;
    use mlrl::rtl::UnaryOp;

    fn mask(width: u32) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    pub struct GoldenSimulator<'m> {
        module: &'m Module,
        values: HashMap<String, u64>,
        key: Vec<bool>,
        order: Vec<usize>,
    }

    impl<'m> GoldenSimulator<'m> {
        pub fn new(module: &'m Module) -> Self {
            let order = levelize(module).expect("acyclic");
            let mut values = HashMap::new();
            for p in module.ports() {
                values.insert(p.name.clone(), 0);
            }
            for n in module.nets() {
                values.insert(n.name.clone(), 0);
            }
            Self {
                module,
                values,
                key: vec![false; module.key_width() as usize],
                order,
            }
        }

        pub fn set_input(&mut self, name: &str, value: u64) {
            let port = self
                .module
                .ports()
                .iter()
                .find(|p| p.name == name && p.dir == PortDir::Input)
                .expect("input port");
            self.values
                .insert(name.to_owned(), value & mask(port.width));
        }

        pub fn set_key(&mut self, key: &[bool]) {
            self.key = key.to_vec();
        }

        pub fn get(&self, name: &str) -> u64 {
            self.values[name]
        }

        pub fn settle(&mut self) {
            for &i in &self.order.clone() {
                let assign = &self.module.assigns()[i];
                let v = self.eval(assign.rhs);
                let width = self.module.signal_width(&assign.lhs).expect("declared");
                self.values.insert(assign.lhs.clone(), v & mask(width));
            }
        }

        pub fn tick(&mut self) {
            self.settle();
            let mut updates: Vec<(String, u64)> = Vec::new();
            for blk in self.module.always_blocks() {
                self.exec_stmts(&blk.body, &mut updates);
            }
            for (name, v) in updates {
                let width = self.module.signal_width(&name).expect("declared");
                self.values.insert(name, v & mask(width));
            }
            self.settle();
        }

        fn exec_stmts(&self, stmts: &[SeqStmt], updates: &mut Vec<(String, u64)>) {
            for s in stmts {
                match s {
                    SeqStmt::NonBlocking { lhs, rhs } => {
                        updates.push((lhs.clone(), self.eval(*rhs)));
                    }
                    SeqStmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        if self.eval(*cond) != 0 {
                            self.exec_stmts(then_body, updates);
                        } else {
                            self.exec_stmts(else_body, updates);
                        }
                    }
                }
            }
        }

        fn eval(&self, id: ExprId) -> u64 {
            let expr = self.module.expr(id).expect("valid id");
            match expr {
                Expr::Const { value, width } => match width {
                    Some(w) => value & mask(*w),
                    None => *value,
                },
                Expr::Ident(name) => self.get(name),
                Expr::KeyBit(i) => self.key.get(*i as usize).copied().unwrap_or(false) as u64,
                Expr::KeySlice { lsb, width } => {
                    let mut v = 0u64;
                    for b in 0..*width {
                        if self.key.get((*lsb + b) as usize).copied().unwrap_or(false) {
                            v |= 1 << b;
                        }
                    }
                    v
                }
                Expr::Index { base, bit } => (self.get(base) >> bit.min(&63)) & 1,
                Expr::Unary { op, arg } => {
                    let v = self.eval(*arg);
                    match op {
                        UnaryOp::Not => !v,
                        UnaryOp::Neg => v.wrapping_neg(),
                        UnaryOp::LNot => (v == 0) as u64,
                    }
                }
                Expr::Binary { op, lhs, rhs } => eval_binary(*op, self.eval(*lhs), self.eval(*rhs)),
                Expr::Ternary {
                    cond,
                    then_expr,
                    else_expr,
                } => {
                    if self.eval(*cond) != 0 {
                        self.eval(*then_expr)
                    } else {
                        self.eval(*else_expr)
                    }
                }
            }
        }
    }
}

use golden::GoldenSimulator;

/// Every declared signal (not just outputs) must agree after the same
/// stimulus program.
fn assert_all_signals_equal(module: &Module, compiled: &Simulator, golden: &GoldenSimulator) {
    for p in module.ports() {
        assert_eq!(
            compiled.get(&p.name).expect("port"),
            golden.get(&p.name),
            "port `{}`",
            p.name
        );
    }
    for n in module.nets() {
        assert_eq!(
            compiled.get(&n.name).expect("net"),
            golden.get(&n.name),
            "net `{}`",
            n.name
        );
    }
}

/// Drives both simulators with the identical program: per pattern set every
/// input, then settle (ticks = 0) or apply `ticks` clock edges.
fn run_lockstep(module: &Module, key: &[bool], stimulus: &[u64], ticks: usize) {
    let mut compiled = Simulator::new(module).expect("compiles");
    let mut golden = GoldenSimulator::new(module);
    compiled.set_key(key).expect("key fits");
    golden.set_key(key);
    let inputs: Vec<(String, u32)> = module
        .ports()
        .iter()
        .filter(|p| p.dir == mlrl::rtl::ast::PortDir::Input)
        .map(|p| (p.name.clone(), p.width))
        .collect();
    let mut at = 0usize;
    while at + inputs.len() <= stimulus.len() {
        for (i, (name, _)) in inputs.iter().enumerate() {
            compiled.set_input(name, stimulus[at + i]).expect("input");
            golden.set_input(name, stimulus[at + i]);
        }
        at += inputs.len().max(1);
        if ticks == 0 {
            compiled.settle().expect("settles");
            golden.settle();
        } else {
            for _ in 0..ticks {
                compiled.tick().expect("ticks");
                golden.tick();
            }
        }
        assert_all_signals_equal(module, &compiled, &golden);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Generated benchmark designs (combinational and sequential), raw.
    #[test]
    fn compiled_sim_matches_golden_on_benchmarks(
        bench_idx in 0usize..10,
        seed in 0u64..1000,
        width in 4u32..=32,
        stimulus in proptest::collection::vec(any::<u64>(), 8..64),
        ticks in 0usize..3,
    ) {
        let benchmarks = paper_benchmarks();
        let spec = &benchmarks[bench_idx % benchmarks.len()];
        let module = generate_with_width(spec, seed, width);
        run_lockstep(&module, &[], &stimulus, ticks);
    }

    /// ASSURE-locked designs: key muxes, key slices, correct and wrong keys.
    #[test]
    fn compiled_sim_matches_golden_on_locked_designs(
        seed in 0u64..1000,
        budget in 1usize..40,
        key_seed in any::<u64>(),
        stimulus in proptest::collection::vec(any::<u64>(), 8..48),
        ticks in 0usize..3,
    ) {
        let spec = benchmark_by_name("FIR").expect("FIR exists");
        let mut module = generate_with_width(&spec, seed, 16);
        lock_operations(&mut module, &AssureConfig::serial(budget, seed ^ 0x5a5a))
            .expect("lockable");
        // A random (usually wrong) key exercises both mux branches.
        let key: Vec<bool> = (0..module.key_width())
            .map(|i| key_seed >> (i % 64) & 1 == 1)
            .collect();
        run_lockstep(&module, &key, &stimulus, ticks);
    }

    /// Random expression modules stress operator lowering and masking.
    #[test]
    fn compiled_sim_matches_golden_on_random_expressions(
        width in 1u32..=64,
        a in any::<u64>(),
        b in any::<u64>(),
        op_idx in 0usize..17,
    ) {
        let op = ["+", "-", "*", "/", "%", "&", "|", "^", "~^", "<<", ">>",
                  "<", ">", "==", "!=", "&&", "||"][op_idx];
        let src = format!(
            "module t(a, b, y, z);\n input [{w}:0] a, b;\n output [{w}:0] y;\n output z;\n assign y = (a {op} b) ^ (a ~^ (b >> 1));\n assign z = y[0];\nendmodule",
            w = width - 1
        );
        let module = parse_verilog(&src).expect("parses");
        run_lockstep(&module, &[], &[a, b], 0);
    }
}

/// The batched compiled tape vs the interpretive golden reference: one
/// `BatchSimulator::<96>` carries 96 vectors — more than a single 64-lane
/// word — through a locked FIR in one settle (and through clock edges),
/// and every lane must equal an independent golden interpretation of that
/// lane's vector.
#[test]
fn batched_compiled_sim_matches_golden_past_64_vectors() {
    use mlrl::rtl::sim::BatchSimulator;
    const V: usize = 96;
    let spec = benchmark_by_name("FIR").expect("FIR exists");
    let mut module = generate_with_width(&spec, 7, 16);
    lock_operations(&mut module, &AssureConfig::serial(12, 0x5a5a)).expect("lockable");
    let key: Vec<bool> = (0..module.key_width())
        .map(|i| 0x9e37_79b9u64 >> (i % 32) & 1 == 1)
        .collect();
    let inputs: Vec<String> = module
        .ports()
        .iter()
        .filter(|p| p.dir == mlrl::rtl::ast::PortDir::Input)
        .map(|p| p.name.clone())
        .collect();
    let stim = |port: usize, lane: usize| {
        (lane as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(port as u32 * 7)
            ^ port as u64
    };
    let mut batch = BatchSimulator::<V>::new(&module).expect("compiles");
    batch.set_key(&key).expect("key fits");
    for (i, name) in inputs.iter().enumerate() {
        let vals: Vec<u64> = (0..V).map(|l| stim(i, l)).collect();
        batch.set_input_batch(name, &vals).expect("batch input");
    }
    batch.settle().expect("settles");
    batch.tick().expect("ticks");
    batch.tick().expect("ticks");
    for lane in 0..V {
        let mut golden = GoldenSimulator::new(&module);
        golden.set_key(&key);
        for (i, name) in inputs.iter().enumerate() {
            golden.set_input(name, stim(i, lane));
        }
        golden.settle();
        golden.tick();
        golden.tick();
        for p in module.ports() {
            assert_eq!(
                batch.get_lane(&p.name, lane).expect("port"),
                golden.get(&p.name),
                "lane {lane} port `{}`",
                p.name
            );
        }
        for n in module.nets() {
            assert_eq!(
                batch.get_lane(&n.name, lane).expect("net"),
                golden.get(&n.name),
                "lane {lane} net `{}`",
                n.name
            );
        }
    }
}

/// A hand-written sequential design with nested ifs, both branch shapes,
/// and multiple writes to one register — the predication edge cases.
#[test]
fn compiled_sim_matches_golden_on_nested_branches() {
    let src = "module t(clk, m, d, q);\n input clk;\n input [1:0] m;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] r, s;\n assign q = r + s;\n always @(posedge clk) begin\n r <= d;\n if (m[0]) begin\n if (m[1]) begin\n r <= r + d;\n end else begin\n r <= r - d;\n end\n s <= s ^ d;\n end else begin\n s <= d;\n end\n end\nendmodule";
    let module = parse_verilog(src).expect("parses");
    let stimulus: Vec<u64> = (0..64u64)
        .flat_map(|i| [i % 4, i.wrapping_mul(0x9e37_79b9) & 0xff])
        .collect();
    run_lockstep(&module, &[], &stimulus, 2);
}
