//! Integration tests asserting the *shape* of the paper's evaluation
//! (Fig. 6): who wins, by roughly what factor, and where the floor sits.
//! Absolute digits differ from the paper (synthetic benchmarks, different
//! ML stack); the qualitative ordering must hold.

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::rtl::bench_designs::{benchmark_by_name, DesignSpec};
use mlrl::rtl::visit;

fn attack_cfg(seed: u64) -> AttackConfig {
    AttackConfig {
        relock: RelockConfig {
            rounds: 30,
            budget_fraction: 0.75,
            seed,
        },
        ..Default::default()
    }
}

/// Mean KPA over several independently locked instances.
fn mean_kpa(spec: &DesignSpec, scheme: &str, instances: usize) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..instances {
        let seed = 1000 + i as u64;
        let mut module = mlrl::rtl::bench_designs::generate(spec, seed);
        let total = visit::binary_ops(&module).len();
        let budget = if scheme == "era" && spec.name == "N_2046" {
            total
        } else {
            total * 3 / 4
        };
        let key = match scheme {
            "assure" => {
                lock_operations(&mut module, &AssureConfig::serial(budget, seed)).expect("lock")
            }
            "era" => {
                era_lock(&mut module, &EraConfig::new(budget, seed))
                    .expect("lock")
                    .key
            }
            other => panic!("unknown scheme {other}"),
        };
        if let Some(report) = snapshot_attack(&module, &key, &attack_cfg(seed ^ 0xF00)) {
            sum += report.kpa;
            n += 1;
        }
    }
    assert!(n > 0, "no instance produced a report");
    sum / n as f64
}

#[test]
fn assure_leaks_heavily_on_imbalanced_designs() {
    // FIR is 100% pair-imbalanced: serial ASSURE should approach 100% KPA
    // (the N_2046 column of Fig. 6a shows the same effect at scale).
    let spec = benchmark_by_name("FIR").expect("benchmark");
    let kpa = mean_kpa(&spec, "assure", 3);
    assert!(kpa > 85.0, "ASSURE on FIR should leak, got {kpa:.1}%");
}

#[test]
fn era_holds_the_line_at_chance_on_imbalanced_designs() {
    let spec = benchmark_by_name("FIR").expect("benchmark");
    let kpa = mean_kpa(&spec, "era", 6);
    assert!(
        (kpa - 50.0).abs() < 15.0,
        "ERA should average near 50%, got {kpa:.1}%"
    );
}

#[test]
fn era_beats_assure_by_a_wide_margin() {
    let spec = benchmark_by_name("MD5").expect("benchmark");
    let assure = mean_kpa(&spec, "assure", 2);
    let era = mean_kpa(&spec, "era", 2);
    assert!(
        assure > era + 15.0,
        "expected ASSURE ({assure:.1}%) well above ERA ({era:.1}%)"
    );
}

#[test]
fn balanced_design_is_safe_under_any_scheme() {
    // N_1023 (fully balanced): even plain ASSURE stays near chance —
    // observation 3 of §3.1. Use a scaled-down balanced network for speed.
    let mut spec = benchmark_by_name("N_1023").expect("benchmark");
    spec.op_mix = vec![
        (mlrl::rtl::op::BinaryOp::Add, 120),
        (mlrl::rtl::op::BinaryOp::Sub, 120),
    ];
    let kpa = mean_kpa(&spec, "assure", 4);
    assert!(
        (kpa - 50.0).abs() < 12.0,
        "balanced design should stay near 50%, got {kpa:.1}%"
    );
}

#[test]
fn fully_imbalanced_network_is_fully_broken_under_assure() {
    // The N_2046 effect, scaled down: an all-+ network under serial ASSURE
    // leaks every bit.
    let mut spec = benchmark_by_name("N_2046").expect("benchmark");
    spec.op_mix = vec![(mlrl::rtl::op::BinaryOp::Add, 200)];
    let kpa = mean_kpa(&spec, "assure", 2);
    assert!(
        kpa > 95.0,
        "all-+ network should be fully broken, got {kpa:.1}%"
    );
}

#[test]
fn era_saves_the_fully_imbalanced_network() {
    let mut spec = benchmark_by_name("N_2046").expect("benchmark");
    spec.op_mix = vec![(mlrl::rtl::op::BinaryOp::Add, 200)];
    let kpa = mean_kpa(&spec, "era", 6);
    assert!(
        (kpa - 50.0).abs() < 15.0,
        "ERA should pin the all-+ network near 50%, got {kpa:.1}%"
    );
}
