//! Integration tests for the full ASSURE obfuscation suite — operation +
//! branch + constant locking applied together on sequential designs, with
//! cross-crate equivalence checking.

use mlrl::locking::assure::{lock_branches, lock_constants, lock_operations, AssureConfig};
use mlrl::locking::key::KeyBitKind;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
use mlrl::rtl::equiv::{check_equiv, EquivConfig};
use mlrl::rtl::stats::DesignStats;
use mlrl::rtl::visit;

/// Applies all three obfuscations and returns (locked, concatenated key).
fn lock_everything(module: &mut mlrl::rtl::Module, seed: u64) -> (Vec<bool>, usize, usize, usize) {
    let ops = visit::binary_ops(module).len();
    let k_op = lock_operations(module, &AssureConfig::serial(ops / 2, seed)).expect("ops");
    let k_br = lock_branches(module, seed ^ 1).expect("branches");
    let k_con = lock_constants(module, 2).expect("constants");
    let full: Vec<bool> = k_op
        .as_bits()
        .iter()
        .chain(k_br.as_bits())
        .chain(k_con.as_bits())
        .copied()
        .collect();
    (full, k_op.len(), k_br.len(), k_con.len())
}

#[test]
fn combined_obfuscation_preserves_sequential_behaviour() {
    for bench in ["SASC", "SIM_SPI", "USB_PHY", "I2C_SL"] {
        let spec = benchmark_by_name(bench).expect("controller benchmark");
        let original = generate(&spec, 99);
        let mut locked = original.clone();
        let (key, n_op, n_br, n_con) = lock_everything(&mut locked, 7);
        assert!(n_op > 0, "{bench}: operation bits");
        assert!(n_br > 0, "{bench}: controllers have branches to lock");
        // Controllers carry a constant in the reset path.
        assert!(n_con > 0, "{bench}: constants present");
        assert_eq!(key.len(), locked.key_width() as usize);

        let cfg = EquivConfig {
            patterns: 24,
            ticks: 4,
            seed: 3,
        };
        let result = check_equiv(&original, &locked, &[], &key, &cfg).expect("simulatable");
        assert!(result.is_equivalent(), "{bench}: {result:?}");
    }
}

#[test]
fn combined_obfuscation_corrupts_under_bit_flips() {
    let spec = benchmark_by_name("SASC").expect("benchmark");
    let original = generate(&spec, 101);
    let mut locked = original.clone();
    let (key, ..) = lock_everything(&mut locked, 11);
    let cfg = EquivConfig {
        patterns: 48,
        ticks: 4,
        seed: 5,
    };
    let mut corrupting = 0usize;
    for bit in 0..key.len() {
        let mut wrong = key.clone();
        wrong[bit] = !wrong[bit];
        let result = check_equiv(&original, &locked, &[], &wrong, &cfg).expect("simulatable");
        if !result.is_equivalent() {
            corrupting += 1;
        }
    }
    // Not every flip is observable: the generated designs expose a sample
    // of internal wires as outputs, so ops outside the observed cones are
    // don't-cares (as in real designs, where output corruptibility of
    // locking is below 100%). Require a solid plurality to corrupt.
    assert!(
        corrupting * 10 >= key.len() * 4,
        "only {corrupting}/{} single-bit flips corrupted outputs",
        key.len()
    );
}

#[test]
fn key_kinds_partition_the_key() {
    let spec = benchmark_by_name("I2C_SL").expect("benchmark");
    let mut locked = generate(&spec, 103);
    let ops = visit::binary_ops(&locked).len();
    let k_op = lock_operations(&mut locked, &AssureConfig::serial(ops / 2, 1)).expect("ops");
    let k_br = lock_branches(&mut locked, 2).expect("branches");
    let k_con = lock_constants(&mut locked, 2).expect("constants");
    assert!(k_op
        .bits_of_kind(KeyBitKind::Operation)
        .len()
        .eq(&k_op.len()));
    assert!(k_br.bits_of_kind(KeyBitKind::Branch).len().eq(&k_br.len()));
    assert!(k_con
        .bits_of_kind(KeyBitKind::Constant)
        .len()
        .eq(&k_con.len()));
}

#[test]
fn stats_track_combined_overhead() {
    let spec = benchmark_by_name("USB_PHY").expect("benchmark");
    let original = generate(&spec, 107);
    let before = DesignStats::of(&original);
    let mut locked = original.clone();
    let (_key, n_op, _n_br, _n_con) = lock_everything(&mut locked, 13);
    let after = DesignStats::of(&locked);
    let overhead = after.overhead_vs(&before);
    // One dummy per operation bit; branch locking adds xor ops too.
    assert!(overhead.extra_ops >= n_op);
    assert_eq!(overhead.key_muxes, n_op);
    assert!(after.key_bits > before.key_bits);
}

#[test]
fn constant_obfuscation_removes_literals_from_view() {
    let spec = benchmark_by_name("DES3").expect("benchmark; has shift constants");
    let mut locked = generate(&spec, 109);
    let before = DesignStats::constants(&locked);
    assert!(before > 0);
    let key = lock_constants(&mut locked, 1).expect("constants");
    let after = DesignStats::constants(&locked);
    assert_eq!(after, 0, "every literal should now be a key slice");
    assert!(key.len() as u32 <= locked.key_width());
}
