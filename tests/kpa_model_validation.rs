//! Validates the closed-form KPA model against the measured SnapShot-RTL
//! attack: the paper's §3 theory (learning resilience is a property of the
//! operation distribution) should predict the §5 evaluation.

use mlrl::attack::kpa_model::predict_kpa;
use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::pairs::PairTable;
use mlrl::rtl::bench_designs::benchmark_by_name;
use mlrl::rtl::visit;

fn measured_and_predicted(bench: &str, scheme: &str, seed: u64) -> (f64, f64) {
    let spec = benchmark_by_name(bench).expect("benchmark");
    let mut module = mlrl::rtl::bench_designs::generate(&spec, seed);
    let total = visit::binary_ops(&module).len();
    let budget = total * 3 / 4;
    let key = match scheme {
        "assure" => {
            lock_operations(&mut module, &AssureConfig::serial(budget, seed)).expect("lockable")
        }
        "era" => {
            era_lock(&mut module, &EraConfig::new(budget, seed))
                .expect("lockable")
                .key
        }
        other => panic!("unknown scheme {other}"),
    };
    let predicted = predict_kpa(&module, &key, &PairTable::fixed()).expected_kpa;
    let cfg = AttackConfig {
        relock: RelockConfig {
            rounds: 40,
            budget_fraction: 0.75,
            seed: seed ^ 0xBEEF,
        },
        ..Default::default()
    };
    let measured = snapshot_attack(&module, &key, &cfg)
        .expect("localities")
        .kpa;
    (measured, predicted)
}

#[test]
fn model_tracks_assure_on_one_sided_designs() {
    // FIR: model predicts ~100; measurement should land within a few points.
    let (measured, predicted) = measured_and_predicted("FIR", "assure", 9);
    assert!(predicted > 99.0, "model: {predicted:.1}");
    assert!(
        (measured - predicted).abs() < 10.0,
        "measured {measured:.1} vs predicted {predicted:.1}"
    );
}

#[test]
fn model_tracks_assure_on_mixed_designs() {
    // Average over instances: per-instance noise is all-or-nothing per
    // feature group (see DESIGN.md), so compare means.
    let mut measured_sum = 0.0;
    let mut predicted_sum = 0.0;
    let n = 3;
    for i in 0..n {
        let (m, p) = measured_and_predicted("DES3", "assure", 50 + i);
        measured_sum += m;
        predicted_sum += p;
    }
    let measured = measured_sum / n as f64;
    let predicted = predicted_sum / n as f64;
    assert!(
        (measured - predicted).abs() < 12.0,
        "measured {measured:.1} vs predicted {predicted:.1}"
    );
}

#[test]
fn model_predicts_the_era_floor_exactly() {
    for (i, bench) in ["FIR", "MD5", "SASC"].iter().enumerate() {
        let spec = benchmark_by_name(bench).expect("benchmark");
        let mut module = mlrl::rtl::bench_designs::generate(&spec, 70 + i as u64);
        let total = visit::binary_ops(&module).len();
        let outcome = era_lock(&mut module, &EraConfig::new(total * 3 / 4, 71)).expect("lockable");
        let predicted = predict_kpa(&module, &outcome.key, &PairTable::fixed()).expected_kpa;
        assert!(
            (predicted - 50.0).abs() < 1e-9,
            "{bench}: ERA model must be exactly 50, got {predicted}"
        );
    }
}

#[test]
fn model_orders_schemes_like_the_measurement() {
    let (m_assure, p_assure) = measured_and_predicted("SHA256", "assure", 90);
    let (m_era, p_era) = measured_and_predicted("SHA256", "era", 90);
    assert!(p_assure > p_era, "model ordering");
    assert!(m_assure > m_era, "measured ordering");
}
