//! Integration: the oracle-guided SAT attack versus every locking scheme.
//!
//! The paper's §5 asks whether its ML-resilient algorithms resist
//! oracle-guided attacks. These tests pin the answer: they do not — the SAT
//! attack recovers a functionally correct key for ASSURE, HRA, and ERA
//! (lowered to gates) and for both gate-level schemes, in few DIPs.
//!
//! Sequential designs are attacked through their scan view (flip-flop state
//! exposed as pseudo-I/O), the standard assumption for oracle-guided
//! attacks on production chips with test scan chains.

use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::netlist::lock::{mux_lock, xor_xnor_lock};
use mlrl::netlist::lower::lower_module;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width};
use mlrl::rtl::visit;
use mlrl::sat::attack::{sat_attack_with_sim_oracle, SatAttackConfig};

fn era_locked_netlist(name: &str, width: u32, seed: u64) -> (mlrl::netlist::Netlist, Vec<bool>) {
    let spec = benchmark_by_name(name).expect("known benchmark");
    let mut locked = generate_with_width(&spec, seed, width);
    let total = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total * 3 / 4, seed)).expect("locks");
    let key: Vec<bool> = (0..locked.key_width())
        .map(|i| outcome.key.bit(i).unwrap_or(false))
        .collect();
    let mut netlist = lower_module(&locked).expect("lowers").to_scan_view();
    netlist.sweep();
    (netlist, key)
}

#[test]
fn sat_attack_breaks_era_locked_designs() {
    // ERA is provably learning-resilient — and still falls to the oracle-
    // guided SAT attack, confirming the orthogonality the paper points at.
    let (netlist, key) = era_locked_netlist("SIM_SPI", 6, 3);
    let (report, correct) = sat_attack_with_sim_oracle(
        &netlist,
        &key,
        &SatAttackConfig {
            max_dips: 1024,
            ..Default::default()
        },
    )
    .expect("attack converges");
    assert!(report.proved, "miter must reach UNSAT");
    assert!(correct, "recovered key must unlock the design");
    assert!(
        report.dips < 200,
        "operation locking should fall quickly, took {} DIPs",
        report.dips
    );
}

#[test]
fn sat_attack_breaks_hra_locked_designs() {
    let spec = benchmark_by_name("USB_PHY").expect("known benchmark");
    let mut locked = generate_with_width(&spec, 13, 6);
    let total = visit::binary_ops(&locked).len();
    let outcome = hra_lock(&mut locked, &HraConfig::new(total / 2, 5)).expect("locks");
    let key: Vec<bool> = (0..locked.key_width())
        .map(|i| outcome.key.bit(i).unwrap_or(false))
        .collect();
    let mut netlist = lower_module(&locked).expect("lowers").to_scan_view();
    netlist.sweep();
    let (report, correct) = sat_attack_with_sim_oracle(
        &netlist,
        &key,
        &SatAttackConfig {
            max_dips: 1024,
            ..Default::default()
        },
    )
    .expect("attack converges");
    assert!(report.proved && correct);
}

#[test]
fn sat_attack_breaks_gate_level_schemes() {
    let spec = benchmark_by_name("SASC").expect("known benchmark");
    let module = generate_with_width(&spec, 29, 6);
    let mut base = lower_module(&module).expect("lowers").to_scan_view();
    base.sweep();

    let mut xor_locked = base.clone();
    let xor_key = xor_xnor_lock(&mut xor_locked, 20, 11).expect("locks");
    let (r1, ok1) =
        sat_attack_with_sim_oracle(&xor_locked, xor_key.bits(), &SatAttackConfig::default())
            .expect("attack converges");
    assert!(r1.proved && ok1, "XOR/XNOR locking falls");

    let mut mux_locked = base.clone();
    let mux_key = mux_lock(&mut mux_locked, 16, 13).expect("locks");
    let (r2, ok2) =
        sat_attack_with_sim_oracle(&mux_locked, mux_key.bits(), &SatAttackConfig::default())
            .expect("attack converges");
    assert!(r2.proved && ok2, "MUX locking falls");
}

#[test]
fn dip_counts_stay_far_below_brute_force() {
    // The whole point of the SAT attack: DIP count ≪ 2^inputs and ≪ 2^key.
    let (netlist, key) = era_locked_netlist("SIM_SPI", 6, 17);
    let (report, _) = sat_attack_with_sim_oracle(
        &netlist,
        &key,
        &SatAttackConfig {
            max_dips: 1024,
            ..Default::default()
        },
    )
    .expect("attack converges");
    let input_bits: usize = netlist.inputs().iter().map(|p| p.width()).sum();
    assert!(
        input_bits >= 20,
        "test design has a non-trivial input space"
    );
    assert!(
        (report.dips as f64) < 2f64.powi(input_bits as i32) / 1e3,
        "{} DIPs is not far below 2^{input_bits}",
        report.dips
    );
}
