//! Integration tests of the campaign engine's three core guarantees:
//!
//! 1. **Determinism** — the same spec produces a byte-identical canonical
//!    report on one thread and on many (derived seeds make results
//!    independent of scheduling).
//! 2. **Caching** — re-running the same spec on the same engine reports
//!    a non-zero cache hit rate with unchanged results.
//! 3. **Sharding** — merging every shard's canonical report reproduces
//!    the unsharded canonical byte stream, whatever the shard count and
//!    cache temperature (so a campaign partitions across processes or
//!    machines without changing its science).

use mlrl::engine::job::ShardSpec;
use mlrl::engine::report::merge_canonical_streams;
use mlrl::engine::run::Engine;
use mlrl::engine::spec::{AttackKind, CampaignSpec, Level, OptLevel, SchemeKind};

/// Two grids pinning every simulator-derived number the canonical report
/// can carry. The first drives the RTL simulator hard (corruptibility
/// near-miss sweeps, oracle-guided hill-climbing agreement) on two
/// benchmarks; the second drives the gate simulator (SAT-attack oracle +
/// recovered-key equivalence check) on the small SoC only — SAT solving
/// is solver-bound, not simulator-bound, so multiplier-heavy designs
/// would dominate the test's runtime without pinning anything extra.
fn simulation_heavy_specs() -> [CampaignSpec; 2] {
    let mut rtl = CampaignSpec::grid(&["SIM_SPI", "FIR"], &[SchemeKind::Era], &[0.5]);
    rtl.name = "sim-golden-rtl".into();
    rtl.seeds = vec![7];
    rtl.attacks = vec![
        AttackKind::FreqTable,
        AttackKind::Corruptibility,
        AttackKind::OracleGuided,
    ];
    rtl.relock_rounds = 6;
    rtl.width = 6;
    rtl.wrong_keys = 8;
    rtl.threads = 2;

    let mut gate = CampaignSpec::grid(
        &["SIM_SPI"],
        &[SchemeKind::Era, SchemeKind::XorXnor],
        &[0.5],
    );
    gate.name = "sim-golden-gate".into();
    gate.levels = vec![Level::Rtl, Level::Gate];
    gate.seeds = vec![7];
    gate.attacks = vec![AttackKind::FreqTable, AttackKind::Sat];
    gate.relock_rounds = 6;
    gate.width = 6;
    gate.threads = 2;
    [rtl, gate]
}

/// The compiled-simulation-core refactor must be observationally
/// invisible: canonical campaign bytes match a golden snapshot taken
/// from the interpretive simulators (pre-refactor seed code).
///
/// Regenerate (only for a change that legitimately alters campaign
/// *science*, never for a simulator change) with:
/// `MLRL_BLESS=1 cargo test -q --test campaign_flow golden`.
#[test]
fn canonical_reports_match_pre_refactor_golden_snapshot() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/golden_campaign.jsonl"
    );
    let mut canonical = String::new();
    for spec in simulation_heavy_specs() {
        let report = Engine::new().run(&spec);
        assert_eq!(report.failed_count(), 0, "{:?}", report.records);
        canonical.push_str(&report.canonical_jsonl());
    }
    if std::env::var_os("MLRL_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap())
            .expect("create tests/data");
        std::fs::write(golden_path, &canonical).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden snapshot exists (MLRL_BLESS=1 to regenerate)");
    assert_eq!(
        canonical, golden,
        "canonical campaign bytes diverged from the pre-refactor golden snapshot"
    );
}

/// The acceptance grid: 2 benchmarks × 2 schemes × 3 budgets = 12 cells.
fn twelve_cell_spec(threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::grid(
        &["FIR", "IIR"],
        &[SchemeKind::Assure, SchemeKind::Era],
        &[0.25, 0.5, 0.75],
    );
    spec.name = "campaign-flow".into();
    spec.seeds = vec![11];
    spec.attacks = vec![AttackKind::FreqTable];
    spec.relock_rounds = 6;
    spec.threads = threads;
    spec
}

#[test]
fn parallel_and_serial_runs_produce_byte_identical_reports() {
    let serial = Engine::new().run(&twelve_cell_spec(1));
    let parallel = Engine::new().run(&twelve_cell_spec(4));

    assert_eq!(serial.records.len(), 12);
    assert_eq!(serial.failed_count(), 0, "{:?}", serial.records);
    assert_eq!(parallel.failed_count(), 0);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);

    let canonical_serial = serial.canonical_jsonl();
    let canonical_parallel = parallel.canonical_jsonl();
    assert_eq!(
        canonical_serial, canonical_parallel,
        "canonical reports must be byte-identical across thread counts"
    );
    // Sanity: the canonical report carries real science, not just headers.
    assert!(canonical_serial.contains("\"attack\":\"freq-table\""));
    assert!(serial.records.iter().all(|r| r.kpa.is_some()));
}

#[test]
fn rerunning_a_spec_hits_the_cache_with_unchanged_results() {
    let engine = Engine::new();
    let spec = twelve_cell_spec(2);

    let first = engine.run(&spec);
    assert_eq!(first.failed_count(), 0, "{:?}", first.records);

    let second = engine.run(&spec);
    assert_eq!(second.failed_count(), 0);

    assert!(
        second.cache.hits > 0,
        "second run must hit the artifact cache (stats: {:?})",
        second.cache
    );
    assert!(
        second.cache.hit_rate() > first.cache.hit_rate(),
        "hit rate must rise on re-run: first {:?}, second {:?}",
        first.cache,
        second.cache
    );
    assert_eq!(
        first.canonical_jsonl(),
        second.canonical_jsonl(),
        "cache hits must not change results"
    );
}

/// The gate-level acceptance grid: 1 benchmark × {rtl, gate} ×
/// {era, xor-xnor} × 1 budget × {freq-table, sat, none} = 8 cells
/// (rtl skips the gate scheme and the SAT attack).
fn mixed_level_spec(threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::grid(
        &["SIM_SPI"],
        &[SchemeKind::Era, SchemeKind::XorXnor],
        &[0.5],
    );
    spec.name = "mixed-level-flow".into();
    spec.levels = vec![Level::Rtl, Level::Gate];
    spec.seeds = vec![7];
    spec.attacks = vec![AttackKind::FreqTable, AttackKind::Sat, AttackKind::None];
    spec.relock_rounds = 6;
    spec.width = 6;
    spec.threads = threads;
    spec
}

#[test]
fn mixed_level_campaigns_are_byte_identical_across_thread_counts() {
    let serial = Engine::new().run(&mixed_level_spec(1));
    let parallel = Engine::new().run(&mixed_level_spec(4));

    assert_eq!(serial.records.len(), 8);
    assert_eq!(serial.failed_count(), 0, "{:?}", serial.records);
    assert_eq!(parallel.failed_count(), 0);
    assert_eq!(
        serial.canonical_jsonl(),
        parallel.canonical_jsonl(),
        "gate-level cells must be as deterministic as RTL cells"
    );
    // The canonical report carries the gate-level science.
    let canonical = serial.canonical_jsonl();
    assert!(canonical.contains("\"level\":\"gate\""));
    assert!(canonical.contains("\"sat_proved\":true"));
    assert!(canonical.contains("\"attack\":\"sat\""));
    // SAT-attacked cells record their iteration counts and area overhead.
    for r in serial.records.iter().filter(|r| r.attack == "sat") {
        assert!(r.sat_dips.expect("dips") > 0);
        assert!(r.area_overhead.expect("area") >= 1.0);
    }
}

#[test]
fn warm_reruns_hit_the_lowered_netlist_shard() {
    let engine = Engine::new();
    let spec = mixed_level_spec(2);

    let cold = engine.run(&spec);
    assert_eq!(cold.failed_count(), 0, "{:?}", cold.records);
    assert!(
        cold.cache.lowered_misses > 0,
        "cold run must synthesize (stats: {:?})",
        cold.cache
    );

    let warm = engine.run(&spec);
    assert_eq!(warm.failed_count(), 0);
    assert!(
        warm.cache.lowered_hits > 0,
        "warm re-run must hit the lowered-netlist shard (stats: {:?})",
        warm.cache
    );
    assert_eq!(
        warm.cache.lowered_misses, 0,
        "warm re-run must not re-synthesize (stats: {:?})",
        warm.cache
    );
    assert_eq!(
        cold.canonical_jsonl(),
        warm.canonical_jsonl(),
        "netlist-shard hits must not change results"
    );
}

/// Splits `spec` into `count` shards on independent engines (cold
/// caches, like separate processes) and returns the canonical streams.
fn run_shards(spec: &CampaignSpec, count: usize) -> Vec<String> {
    (0..count)
        .map(|index| {
            Engine::new()
                .run_shard(spec, Some(ShardSpec { index, count }))
                .canonical_jsonl()
        })
        .collect()
}

#[test]
fn merged_shard_reports_are_byte_identical_to_the_unsharded_run() {
    let spec = twelve_cell_spec(2);
    let full = Engine::new().run(&spec).canonical_jsonl();

    let shards = run_shards(&spec, 3);
    // Shards partition, not duplicate: 12 cells across 3 shards.
    let cells: usize = shards
        .iter()
        .map(|s| s.lines().count().saturating_sub(1))
        .sum();
    assert_eq!(cells, 12);
    let merged = merge_canonical_streams(&shards).expect("shards merge");
    assert_eq!(
        merged, full,
        "merged shard reports must be byte-identical to the unsharded canonical report"
    );
}

/// The optimizer axis: an O2 gate campaign must shard and merge
/// byte-exactly (the opt level is folded into the content-addressed
/// lowering keys, so shards can never mix optimized and unoptimized
/// artifacts), the canonical stream must carry the `opt_level` column
/// on every record, and the default-O0 stream must never carry it —
/// that omission is what keeps pre-optimizer golden bytes stable.
#[test]
fn o2_campaigns_shard_and_merge_byte_identically() {
    let mut spec = mixed_level_spec(2);
    spec.name = "o2-flow".into();
    spec.opt_level = OptLevel::O2;

    let full_report = Engine::new().run(&spec);
    assert_eq!(full_report.failed_count(), 0, "{:?}", full_report.records);
    let full = full_report.canonical_jsonl();
    assert!(full.contains("\"opt_level\":\"o2\""));
    // The optimized netlists still carry real gate-level science: SAT
    // proofs converge and locking still adds area on the smaller base.
    for r in full_report.records.iter().filter(|r| r.attack == "sat") {
        assert!(r.sat_dips.expect("dips") > 0);
        assert!(r.area_overhead.expect("area") >= 1.0);
    }

    let shards = run_shards(&spec, 3);
    let merged = merge_canonical_streams(&shards).expect("shards merge");
    assert_eq!(
        merged, full,
        "O2 shards must merge to the unsharded canonical bytes"
    );

    // Same grid at the default level: no opt_level column anywhere.
    let mut o0 = spec.clone();
    o0.name = "o0-flow".into();
    o0.opt_level = OptLevel::O0;
    let o0_bytes = Engine::new().run(&o0).canonical_jsonl();
    assert!(
        !o0_bytes.contains("opt_level"),
        "O0 must omit the column to keep historical canonical bytes"
    );
}

#[test]
fn uneven_shards_with_more_shards_than_cells_still_merge_exactly() {
    // The mixed-level grid has 8 cells; 11 shards forces empty shards
    // and single-cell shards, and its SAT cells exercise the cost model
    // (a 10× cell must not unbalance the partition's correctness).
    let spec = mixed_level_spec(1);
    let full = Engine::new().run(&spec).canonical_jsonl();
    let shards = run_shards(&spec, 11);
    assert!(
        shards.iter().any(|s| s.lines().count() == 1),
        "11 shards over 8 cells must leave some shard empty"
    );
    let merged = merge_canonical_streams(&shards).expect("shards merge");
    assert_eq!(merged, full);
}

#[test]
fn warm_caches_do_not_perturb_sharded_reports() {
    let spec = twelve_cell_spec(2);
    let full = Engine::new().run(&spec).canonical_jsonl();

    // Each shard runs twice on its own engine; the second (warm) pass
    // must hit the cache and still merge byte-exactly.
    let shards: Vec<String> = (0..3)
        .map(|index| {
            let shard = Some(ShardSpec { index, count: 3 });
            let engine = Engine::new();
            let cold = engine.run_shard(&spec, shard);
            let warm = engine.run_shard(&spec, shard);
            if !cold.records.is_empty() {
                assert!(
                    warm.cache.hits > 0,
                    "warm shard {index} must hit the cache (stats: {:?})",
                    warm.cache
                );
            }
            assert_eq!(cold.canonical_jsonl(), warm.canonical_jsonl());
            warm.canonical_jsonl()
        })
        .collect();
    let merged = merge_canonical_streams(&shards).expect("shards merge");
    assert_eq!(merged, full);
}

#[test]
fn co_located_shards_share_one_cache_dir() {
    // The ROADMAP's sound-but-untested path: two shard processes pointed
    // at the same --cache-dir. Artifacts are content-addressed, so shard 1
    // may freely consume what shard 0 spilled, results must merge to the
    // exact unsharded bytes, and a later run over the warm directory must
    // hit without re-synthesizing anything.
    let dir = std::env::temp_dir().join(format!(
        "mlrl-shared-cache-{}-{}",
        std::process::id(),
        line!()
    ));
    let spec = mixed_level_spec(2);
    let full = Engine::new().run(&spec).canonical_jsonl();

    let shards: Vec<String> = (0..2)
        .map(|index| {
            // A fresh engine per shard = a separate process's cold memory,
            // warm shared disk.
            Engine::new()
                .with_cache_dir(dir.clone())
                .run_shard(&spec, Some(ShardSpec { index, count: 2 }))
                .canonical_jsonl()
        })
        .collect();
    let merged = merge_canonical_streams(&shards).expect("shards merge");
    assert_eq!(
        merged, full,
        "shards sharing one cache dir must merge to the unsharded bytes"
    );

    // The two shards spilled every artifact; a third co-located engine
    // must serve the whole campaign from the shared directory without a
    // single synthesis run.
    let warm_engine = Engine::new().with_cache_dir(dir.clone());
    let warm = warm_engine.run(&spec);
    assert_eq!(warm.canonical_jsonl(), full);
    assert!(
        warm.cache.hits > 0,
        "warm run must hit the shared artifacts (stats: {:?})",
        warm.cache
    );
    assert_eq!(
        warm.cache.lowered_misses, 0,
        "warm run must not re-synthesize (stats: {:?})",
        warm.cache
    );
    assert!(
        warm.cache.lowered_hits > 0,
        "warm run must reuse the spilled netlists (stats: {:?})",
        warm.cache
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overlapping_or_incomplete_shard_sets_are_rejected() {
    let spec = twelve_cell_spec(2);
    let shards = run_shards(&spec, 3);
    // Dropping a shard is a missing-index error, not silent data loss.
    let err = merge_canonical_streams(&shards[..2]).expect_err("incomplete set");
    assert!(err.contains("missing"), "{err}");
    // Feeding one shard twice is an overlap error.
    let doubled = vec![shards[0].clone(), shards[0].clone(), shards[1].clone()];
    let err = merge_canonical_streams(&doubled).expect_err("overlap");
    assert!(err.contains("duplicate"), "{err}");
}

// Panic *isolation* (a panicking job yielding Err while the campaign
// completes) is covered at the pool layer by
// `mlrl_engine::pool::tests::isolates_panics_to_their_job`; no current
// benchmark/scheme combination panics, so this level checks the failure
// paths that are reachable: clean runs and up-front spec rejection.
#[test]
fn healthy_campaigns_have_no_failures_and_bad_specs_are_rejected() {
    let spec = twelve_cell_spec(2);
    let engine = Engine::new();
    let report = engine.run(&spec);
    assert_eq!(report.failed_count(), 0);

    let mut bad = spec.clone();
    bad.benchmarks = vec!["NO_SUCH_DESIGN".into()];
    assert!(bad.validate().is_err());
}

/// Telemetry is a pure side channel: enabling span tracing and metrics
/// must leave the canonical bytes untouched, while the exported Chrome
/// trace and metrics rollup are well-formed and account for the run.
///
/// Counter assertions use `>=` (never `==`): the telemetry sink is
/// process-global and other tests in this binary run concurrently, so
/// their cells may also land in the snapshot.
#[test]
fn telemetry_is_a_pure_side_channel_with_wellformed_artifacts() {
    let spec = twelve_cell_spec(2);
    let baseline = Engine::new().run(&spec).canonical_jsonl();

    mlrl::obs::enable();
    let traced = Engine::new().run(&spec).canonical_jsonl();
    let metrics = mlrl::obs::snapshot();
    let trace = mlrl::obs::trace_json();
    mlrl::obs::disable();

    assert_eq!(
        traced, baseline,
        "telemetry must never perturb the canonical bytes"
    );

    // The rollup accounts for the traced run's cells and cache traffic.
    let completed = metrics.counters.get("cells.completed").copied();
    assert!(
        completed.is_some_and(|n| n >= 12),
        "12-cell run must count its cells (counters: {:?})",
        metrics.counters
    );
    assert!(
        metrics.counters.contains_key("cache.misses"),
        "cold run must count cache misses (counters: {:?})",
        metrics.counters
    );
    let cell_stat = metrics.spans.get("cell").expect("cell span stat");
    assert!(cell_stat.count >= 12, "cell spans: {cell_stat:?}");
    assert!(
        metrics.spans.contains_key("phase.design"),
        "phase spans must aggregate (spans: {:?})",
        metrics.spans.keys().collect::<Vec<_>>()
    );

    // Every span name also accumulates a duration histogram, in
    // lockstep with its sum-only stat (both are recorded under the same
    // sink lock, so their counts agree within one snapshot).
    let cell_hist = metrics.hists.get("cell").expect("cell histogram");
    assert_eq!(cell_hist.count(), cell_stat.count);
    assert_eq!(cell_hist.sum(), cell_stat.total_us);
    let p50 = cell_hist.p50().expect("non-empty percentile");
    assert!(
        cell_hist.min().unwrap() <= p50 && p50 <= cell_hist.max().unwrap(),
        "p50 {p50} outside [{:?}, {:?}]",
        cell_hist.min(),
        cell_hist.max()
    );

    // The rollup JSON round-trips through its own parser, histograms
    // included.
    let reparsed = mlrl::obs::Metrics::parse(&metrics.to_json()).expect("metrics JSON reparses");
    assert_eq!(reparsed.counters, metrics.counters);
    assert_eq!(reparsed.spans, metrics.spans);
    assert_eq!(reparsed.hists, metrics.hists);

    // The Chrome trace is valid JSON with named spans on named lanes.
    let doc = mlrl::obs::json::parse(&trace).expect("trace is valid JSON");
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let name_of = |e: &mlrl::obs::json::Value| {
        e.as_object()
            .and_then(|o| o.get("name"))
            .and_then(|n| n.as_str())
            .map(str::to_owned)
    };
    assert!(
        events
            .iter()
            .any(|e| name_of(e).is_some_and(|n| n.starts_with("cell "))),
        "trace must carry per-cell spans"
    );
    assert!(
        events
            .iter()
            .any(|e| name_of(e).is_some_and(|n| n == "thread_name")),
        "trace must label its lanes"
    );

    // The overhead controls thin only the trace stream: with 1-in-8
    // span sampling and a 64-event ring, the canonical bytes and the
    // aggregate stats stay exact — only trace events get dropped.
    mlrl::obs::reset();
    mlrl::obs::enable();
    mlrl::obs::set_span_sample(8);
    mlrl::obs::set_trace_cap(64);
    let sampled = Engine::new().run(&spec).canonical_jsonl();
    let sampled_metrics = mlrl::obs::snapshot();
    let sampled_trace = mlrl::obs::trace_json();
    mlrl::obs::reset();
    mlrl::obs::disable();
    assert_eq!(
        sampled, baseline,
        "sampling and ring capping must never perturb the canonical bytes"
    );
    assert!(
        sampled_metrics
            .counters
            .get("cells.completed")
            .is_some_and(|&n| n >= 12),
        "stats stay exact under sampling (counters: {:?})",
        sampled_metrics.counters
    );
    let doc = mlrl::obs::json::parse(&sampled_trace).expect("sampled trace is valid JSON");
    let kept: Vec<String> = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("sampled traceEvents array")
        .iter()
        .filter_map(|e| {
            let o = e.as_object()?;
            if o.get("ph")?.as_str()? == "M" {
                return None;
            }
            o.get("name")?.as_str().map(str::to_owned)
        })
        .collect();
    let retained = kept
        .iter()
        .filter(|n| !n.starts_with("obs.events.dropped"))
        .count();
    assert!(
        retained <= 64,
        "the trace ring must stay bounded ({retained} events kept)"
    );
    assert!(
        kept.iter().any(|n| n.starts_with("obs.events.dropped")),
        "a 12-cell run overflows a 64-event ring, which must be marked: {kept:?}"
    );
}

#[test]
fn spec_files_round_trip_through_the_parser() {
    let text = "\
        name       = acceptance\n\
        benchmarks = FIR IIR\n\
        schemes    = assure era\n\
        budgets    = 0.25 0.5 0.75\n\
        seeds      = 11\n\
        attacks    = freq-table\n\
        relock_rounds = 6\n\
        threads    = 2\n";
    let parsed = CampaignSpec::parse(text).expect("parses");
    assert_eq!(parsed.cells(), 12);
    let mut expected = twelve_cell_spec(2);
    expected.name = "acceptance".into();
    assert_eq!(parsed, expected);
}
