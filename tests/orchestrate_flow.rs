//! Integration tests of `mlrl orchestrate`, driven through the real CLI
//! binary: worker processes, supervision, crash restart, checkpoint
//! resume — all proven against the one invariant that matters, byte
//! identity with the unsharded single-process run.
//!
//! Worker crashes are injected with the `MLRL_FAULT_CELL` env var (the
//! worker aborts right before executing that grid cell); adding
//! `MLRL_FAULT_FLAG=<path>` makes the fault one-shot so restarted or
//! resumed workers get through.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mlrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlrl"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlrl-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes the acceptance spec (4 cells: 2 schemes × {freq-table, none})
/// and returns its path.
fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("campaign.spec");
    std::fs::write(
        &path,
        "name       = orch-flow\n\
         benchmarks = FIR\n\
         schemes    = assure era\n\
         budgets    = 0.5\n\
         seeds      = 11\n\
         attacks    = freq-table none\n\
         relock_rounds = 6\n\
         threads    = 1\n",
    )
    .expect("write spec");
    path
}

fn stdout_of(out: &Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The single-process canonical reference stream.
fn unsharded_reference(spec: &Path) -> String {
    let out = mlrl()
        .args(["campaign", spec.to_str().unwrap(), "--canonical"])
        .output()
        .expect("run campaign");
    stdout_of(&out, "single-process campaign")
}

#[test]
fn orchestrated_runs_are_byte_identical_to_the_single_process_run() {
    let dir = tmpdir("basic");
    let spec = write_spec(&dir);
    let full = unsharded_reference(&spec);

    let run_dir = dir.join("run");
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--canonical",
        ])
        .output()
        .expect("run orchestrate");
    let orchestrated = stdout_of(&out, "orchestrate");
    assert_eq!(
        orchestrated, full,
        "orchestrated canonical bytes must equal the unsharded run's"
    );

    // The run dir holds the journal and the merged stream.
    assert!(run_dir.join("journal.jsonl").exists());
    assert_eq!(
        std::fs::read_to_string(run_dir.join("merged.jsonl")).expect("merged written"),
        full
    );
    // Workers shared the run dir's content-addressed cache.
    assert!(
        std::fs::read_dir(run_dir.join("cache"))
            .map(|entries| entries.count() > 0)
            .unwrap_or(false),
        "workers must spill into the shared cache dir"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_workers_are_restarted_without_perturbing_the_bytes() {
    let dir = tmpdir("crash");
    let spec = write_spec(&dir);
    let full = unsharded_reference(&spec);

    let run_dir = dir.join("run");
    let flag = dir.join("fault-fired");
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--canonical",
        ])
        .env("MLRL_FAULT_CELL", "2")
        .env("MLRL_FAULT_FLAG", &flag)
        .output()
        .expect("run orchestrate");
    let orchestrated = stdout_of(&out, "orchestrate with injected crash");
    assert!(flag.exists(), "the injected fault must actually fire");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("restarting"),
        "supervisor must report the restart: {stderr}"
    );
    assert_eq!(
        orchestrated, full,
        "a crash-restarted orchestration must still emit the exact unsharded bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_orchestrations_resume_from_the_journal_to_the_exact_bytes() {
    let dir = tmpdir("resume");
    let spec = write_spec(&dir);
    let full = unsharded_reference(&spec);
    let run_dir = dir.join("run");

    // Phase 1: a worker dies mid-campaign and the restart budget is 0,
    // so the whole orchestration aborts — the "killed" scenario, with
    // the journal left behind.
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--max-restarts",
            "0",
        ])
        .env("MLRL_FAULT_CELL", "2")
        .output()
        .expect("run orchestrate");
    assert!(
        !out.status.success(),
        "restart budget 0 must abort on the injected crash"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume"),
        "abort must point at resume: {stderr}"
    );
    let journal = std::fs::read_to_string(run_dir.join("journal.jsonl")).expect("journal retained");
    let checkpointed = journal.lines().count().saturating_sub(1);
    assert!(
        checkpointed >= 1,
        "cells completed before the crash must be checkpointed:\n{journal}"
    );
    assert!(
        checkpointed < 4,
        "the faulted cell must not be checkpointed:\n{journal}"
    );

    // Phase 2: resume (fault cleared) recomputes only the remainder and
    // lands on the exact unsharded bytes.
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--resume",
            run_dir.to_str().unwrap(),
            "--canonical",
        ])
        .output()
        .expect("resume orchestrate");
    let resumed = stdout_of(&out, "resumed orchestrate");
    assert_eq!(
        resumed, full,
        "killed-and-resumed orchestration must emit the exact unsharded bytes"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("{checkpointed} resumed")),
        "resume must replay the checkpointed cells: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_runs_refuse_to_clobber_an_existing_journal() {
    let dir = tmpdir("guard");
    let spec = write_spec(&dir);
    let run_dir = dir.join("run");
    let first = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "1",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .expect("run orchestrate");
    stdout_of(&first, "first orchestrate");

    let second = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "1",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ])
        .output()
        .expect("rerun orchestrate");
    assert!(!second.status.success(), "must refuse to clobber");
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("--resume"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry across process boundaries: a traced orchestration must
/// emit the exact unsharded bytes, export a valid Chrome trace, and
/// aggregate worker metrics into a fleet rollup that accounts for every
/// cell — both at `--metrics-out` and in `<run-dir>/metrics.json`.
#[test]
fn traced_orchestrations_aggregate_worker_metrics_without_perturbing_bytes() {
    let dir = tmpdir("telemetry");
    let spec = write_spec(&dir);
    let full = unsharded_reference(&spec);

    // The traced single-process campaign is also byte-identical.
    let campaign_trace = dir.join("campaign-trace.json");
    let campaign_metrics = dir.join("campaign-metrics.json");
    let out = mlrl()
        .args([
            "campaign",
            spec.to_str().unwrap(),
            "--canonical",
            "--trace-out",
            campaign_trace.to_str().unwrap(),
            "--metrics-out",
            campaign_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run traced campaign");
    assert_eq!(
        stdout_of(&out, "traced campaign"),
        full,
        "traced campaign bytes must equal the untraced run's"
    );
    assert!(campaign_trace.exists() && campaign_metrics.exists());

    let run_dir = dir.join("run");
    let trace = dir.join("trace.json");
    let metrics_out = dir.join("metrics.json");
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--canonical",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics_out.to_str().unwrap(),
        ])
        .output()
        .expect("run traced orchestrate");
    let orchestrated = stdout_of(&out, "traced orchestrate");
    assert_eq!(
        orchestrated, full,
        "traced orchestration bytes must equal the unsharded run's"
    );

    // The fleet rollup accounts for every cell, exactly: worker
    // processes are isolated sinks, so unlike in-process tests the
    // counters admit `==` assertions.
    let rollup = std::fs::read_to_string(&metrics_out).expect("metrics rollup written");
    let metrics = mlrl::obs::Metrics::parse(&rollup).expect("metrics rollup parses");
    assert_eq!(
        metrics.counters.get("cells.completed"),
        Some(&4),
        "fleet rollup must account for all 4 cells (counters: {:?})",
        metrics.counters
    );
    assert_eq!(metrics.counters.get("cells.failed"), None);
    assert_eq!(metrics.counters.get("orch.cells.total"), Some(&4));
    assert!(
        metrics
            .counters
            .get("orch.workers.spawned")
            .is_some_and(|&n| n >= 2),
        "two workers must be spawned (counters: {:?})",
        metrics.counters
    );
    assert!(
        metrics.spans.get("cell").is_some_and(|s| s.count == 4),
        "worker cell spans must aggregate (spans: {:?})",
        metrics.spans
    );

    // Histograms fold across the fleet bucket-wise: the workers' cell
    // spans and the supervisor's protocol-observed wall times both
    // account for all 4 cells.
    assert!(
        metrics.hists.get("cell").is_some_and(|h| h.count() == 4),
        "worker cell histograms must merge (hists: {:?})",
        metrics.hists.keys().collect::<Vec<_>>()
    );
    assert!(
        metrics
            .hists
            .get("orch.cell_wall_us")
            .is_some_and(|h| h.count() == 4 && h.p99() <= h.max()),
        "supervisor must histogram per-cell wall time (hists: {:?})",
        metrics.hists.keys().collect::<Vec<_>>()
    );

    // Per-worker gauges must not collapse under the fleet's max-merge:
    // the supervisor namespaces each slot's gauges (`w<id>.`), so both
    // workers' pool utilization readings survive side by side.
    let namespaced: Vec<&String> = metrics
        .gauges
        .keys()
        .filter(|k| k.starts_with("w0.pool.") || k.starts_with("w1.pool."))
        .collect();
    assert!(
        namespaced.len() >= 2,
        "both workers' gauges must survive the fold (gauges: {:?})",
        metrics.gauges.keys().collect::<Vec<_>>()
    );

    // The supervisor drops the same rollup next to the journal.
    let in_run_dir = std::fs::read_to_string(run_dir.join("metrics.json"))
        .expect("run dir holds the fleet rollup");
    assert_eq!(in_run_dir, rollup);

    // The trace is valid JSON carrying supervisor-synthesized worker
    // lanes and per-cell spans.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = mlrl::obs::json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| {
            e.as_object()
                .and_then(|o| o.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_owned)
        })
        .collect();
    assert!(
        (0..4).all(|i| names.iter().any(|n| n == &format!("cell {i}"))),
        "trace must span every cell: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("worker ")),
        "trace must span worker lifecycles: {names:?}"
    );

    // The run dir's merged fleet trace interleaves real worker-side
    // spans (lanes namespaced `w<slot>/`, streamed over the protocol
    // and skew-corrected) with supervisor-synthesized `orch/` lanes.
    let merged =
        std::fs::read_to_string(run_dir.join("trace.json")).expect("merged fleet trace written");
    let doc = mlrl::obs::json::parse(&merged).expect("merged trace is valid JSON");
    let events = doc
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("merged traceEvents array");
    let lanes: Vec<String> = events
        .iter()
        .filter_map(|e| {
            let o = e.as_object()?;
            if o.get("name")?.as_str()? != "thread_name" {
                return None;
            }
            o.get("args")?
                .as_object()?
                .get("name")?
                .as_str()
                .map(str::to_owned)
        })
        .collect();
    let worker_slots: std::collections::HashSet<&str> = lanes
        .iter()
        .filter_map(|l| l.strip_prefix('w')?.split_once('/').map(|(slot, _)| slot))
        .filter(|slot| slot.chars().all(|c| c.is_ascii_digit()))
        .collect();
    assert!(
        worker_slots.len() >= 2,
        "streamed lanes from both worker slots must appear: {lanes:?}"
    );
    assert!(
        lanes.iter().any(|l| l.starts_with("orch/")),
        "supervisor-synthesized lanes must live under orch/: {lanes:?}"
    );
    // Collision guard: the namespaces keep every lane label unique.
    let mut deduped = lanes.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), lanes.len(), "lane labels collide: {lanes:?}");
    let merged_names: Vec<String> = events
        .iter()
        .filter_map(|e| {
            e.as_object()
                .and_then(|o| o.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_owned)
        })
        .collect();
    assert!(
        merged_names.iter().any(|n| n.starts_with("phase.")),
        "worker-side phase spans must reach the merged trace: {merged_names:?}"
    );

    // The live console reads the same run dir after the fact.
    let out = mlrl()
        .args(["top", run_dir.to_str().unwrap(), "--once"])
        .output()
        .expect("run top");
    let console = stdout_of(&out, "top --once");
    assert!(console.contains("4/4 cells"), "{console}");
    assert!(console.contains("w0"), "{console}");
    assert!(console.contains("p99"), "{console}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol compatibility under a hostile trace stream: with
/// `MLRL_FAULT_TRACE=1` every worker interleaves unknown verbs,
/// truncated trace chunks, and non-JSON trace payloads with its real
/// traffic — and the orchestration must still emit the exact bytes and
/// a well-formed merged trace.
#[test]
fn hostile_trace_streams_never_corrupt_bytes_or_the_merged_trace() {
    let dir = tmpdir("fault-trace");
    let spec = write_spec(&dir);
    let full = unsharded_reference(&spec);

    let run_dir = dir.join("run");
    let metrics_out = dir.join("metrics.json");
    let out = mlrl()
        .args([
            "orchestrate",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--quick",
            "--run-dir",
            run_dir.to_str().unwrap(),
            "--canonical",
            "--metrics-out",
            metrics_out.to_str().unwrap(),
        ])
        .env("MLRL_FAULT_TRACE", "1")
        .output()
        .expect("run orchestrate under trace faults");
    let orchestrated = stdout_of(&out, "orchestrate under trace faults");
    assert_eq!(
        orchestrated, full,
        "garbled trace traffic must never perturb canonical bytes"
    );

    // The merged trace still parses; the malformed chunks were rejected
    // whole (counted, not half-merged).
    let merged = std::fs::read_to_string(run_dir.join("trace.json")).expect("merged trace written");
    mlrl::obs::json::parse(&merged).expect("merged trace is valid JSON despite garbled chunks");
    let rollup = std::fs::read_to_string(&metrics_out).expect("metrics rollup written");
    let metrics = mlrl::obs::Metrics::parse(&rollup).expect("metrics rollup parses");
    assert_eq!(metrics.counters.get("cells.completed"), Some(&4));
    assert!(
        metrics
            .counters
            .get("orch.trace.rejected")
            .is_some_and(|&n| n >= 1),
        "rejected chunks must be counted (counters: {:?})",
        metrics.counters
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--telemetry` worker upgrades the protocol in place: an
/// epoch-bearing hello, incremental `trace` chunks after completions,
/// and a final flush before the payload-carrying bye. A reader
/// predating those lines sees only additions it already skips.
#[test]
fn telemetry_workers_stream_epoch_hellos_and_trace_chunks() {
    let dir = tmpdir("worker-telemetry");
    let spec = write_spec(&dir);
    let out = mlrl()
        .args([
            "worker",
            spec.to_str().unwrap(),
            "--cells",
            "0,3",
            "--threads",
            "1",
            "--telemetry",
        ])
        .output()
        .expect("run telemetry worker");
    let stdout = stdout_of(&out, "telemetry worker");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines
            .first()
            .is_some_and(|l| l.starts_with("mlrl-worker v1 cells=2 epoch_us=")),
        "telemetry hello must carry the worker's trace epoch: {stdout}"
    );
    assert!(
        lines.last().is_some_and(|l| l.starts_with("bye 2 {")),
        "telemetry bye must carry the metrics payload: {stdout}"
    );
    let trace_lines: Vec<&&str> = lines.iter().filter(|l| l.starts_with("trace ")).collect();
    assert!(
        !trace_lines.is_empty(),
        "completions must stream trace chunks: {stdout}"
    );
    for line in &trace_lines {
        let payload = line.strip_prefix("trace ").unwrap();
        let chunk = mlrl::obs::json::parse(payload).expect("trace chunk is valid JSON");
        let obj = chunk.as_object().expect("chunk object");
        assert!(
            obj.contains_key("lanes") && obj.contains_key("events"),
            "{line}"
        );
    }
    // Chunks flow strictly after the done they describe, and the last
    // one after the final done (the pre-bye flush).
    let first_done = lines.iter().position(|l| l.starts_with("done ")).unwrap();
    let first_trace = lines.iter().position(|l| l.starts_with("trace ")).unwrap();
    assert!(first_trace > first_done, "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers_speak_the_line_protocol() {
    let dir = tmpdir("worker");
    let spec = write_spec(&dir);
    let out = mlrl()
        .args([
            "worker",
            spec.to_str().unwrap(),
            "--cells",
            "0,3",
            "--threads",
            "1",
            "--cache-dir",
            dir.join("cache").to_str().unwrap(),
        ])
        .output()
        .expect("run worker");
    let stdout = stdout_of(&out, "worker");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.first(), Some(&"mlrl-worker v1 cells=2"), "{stdout}");
    assert_eq!(lines.last(), Some(&"bye 2"), "{stdout}");
    for index in [0usize, 3] {
        assert!(
            lines.iter().any(|l| *l == format!("start {index}")),
            "{stdout}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with(&format!("done {index} {{\"index\":{index},"))),
            "{stdout}"
        );
    }

    // Out-of-range cells are rejected up front.
    let out = mlrl()
        .args(["worker", spec.to_str().unwrap(), "--cells", "99"])
        .output()
        .expect("run worker");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
