//! Property-based tests for the gate-level and SAT substrates.
//!
//! The central invariant: the bit-blasting lowering is *bit-exact* with the
//! RTL simulator for arbitrary expressions, widths and stimulus; locking
//! preserves function under the correct key; and the Tseitin encoding
//! agrees with the netlist simulator.

use proptest::prelude::*;

use mlrl::netlist::build::{Lane, NetlistBuilder};
use mlrl::netlist::equiv::{check_module_vs_netlist, check_netlists};
use mlrl::netlist::lock::{mux_lock, xor_xnor_lock};
use mlrl::netlist::lower::lower_module;
use mlrl::netlist::opt::{optimize, OptLevel};
use mlrl::netlist::serdes::{emit_netlist, parse_netlist};
use mlrl::netlist::sim::NetlistSimulator;
use mlrl::netlist::Netlist;
use mlrl::rtl::parser::parse_verilog;
use mlrl::sat::cnf::CnfBuilder;
use mlrl::sat::solver::Solver;
use mlrl::sat::tseitin::{bind_input_const, encode};

/// A random binary-operator expression tree over inputs `a`, `b`, `c`,
/// rendered as Verilog.
fn arb_expr(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        (0u64..16).prop_map(|v| format!("{v}")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("/"),
                Just("%"),
                Just("&"),
                Just("|"),
                Just("^"),
                Just("~^"),
                Just("<<"),
                Just(">>"),
                Just("<"),
                Just(">"),
                Just("=="),
                Just("!="),
                Just("&&"),
                Just("||"),
            ],
        )
            .prop_map(|(l, r, op)| format!("({l} {op} {r})"))
    })
}

/// Drives a random locked netlist at width `W` with per-lane input
/// vectors and a per-lane key sweep — one walk for all lanes — then
/// checks every lane (value, per-lane digest, and batch digest) against
/// an independent scalar simulation of that lane's vector and key.
fn lane_matches_scalar<const W: usize>(
    expr: &str,
    width: u32,
    vectors: &[(u64, u64, u64)],
    keys: &[u64],
    bits: usize,
    seed: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let src = format!(
        "module t(a, b, c, y);\n input [{w}:0] a, b, c;\n output [{w}:0] y;\n assign y = {expr};\nendmodule",
        w = width - 1
    );
    let module = parse_verilog(&src).expect("generated source parses");
    let mut netlist = lower_module(&module).expect("expression lowers");
    netlist.sweep();
    // Constant-folded expressions may leave nothing lockable; the lane
    // property must hold either way.
    let key_len = xor_xnor_lock(&mut netlist, bits, seed).map_or(0, |k| k.len());
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };

    // Per-lane keys: lane l uses keys[l % keys.len()] as a bit source.
    let lane_keys: Vec<Vec<bool>> = (0..vectors.len())
        .map(|l| {
            let word = keys[l % keys.len()];
            (0..key_len).map(|i| word >> (i % 64) & 1 == 1).collect()
        })
        .collect();
    let key_refs: Vec<&[bool]> = lane_keys.iter().map(|k| k.as_slice()).collect();

    let mut word = NetlistSimulator::<W>::with_width(&netlist).expect("word sim");
    for (port, idx) in [("a", 0usize), ("b", 1), ("c", 2)] {
        let lanes: Vec<u64> = vectors
            .iter()
            .map(|v| [v.0, v.1, v.2][idx] & mask)
            .collect();
        word.set_input_batch(port, &lanes).expect("batch input");
    }
    word.set_key_batch(&key_refs).expect("batch key");
    word.settle_batch().expect("settles");
    let batch_digests = word
        .outputs_digest_batch(vectors.len())
        .expect("batch digests");

    let mut scalar = NetlistSimulator::new(&netlist).expect("scalar sim");
    for (lane, v) in vectors.iter().enumerate() {
        scalar.set_input("a", v.0 & mask).expect("set");
        scalar.set_input("b", v.1 & mask).expect("set");
        scalar.set_input("c", v.2 & mask).expect("set");
        scalar.set_key(&lane_keys[lane]).expect("key");
        scalar.settle().expect("settle");
        prop_assert_eq!(
            word.output_lane("y", lane).expect("lane"),
            scalar.output("y").expect("y"),
            "W={} lane {} of expr {}",
            W,
            lane,
            src
        );
        let digest = scalar.outputs_digest().expect("digest");
        prop_assert_eq!(word.outputs_digest_lane(lane).expect("lane digest"), digest);
        prop_assert_eq!(batch_digests[lane], digest);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lowering_matches_rtl_simulation_for_random_expressions(
        expr in arb_expr(3),
        width in 1u32..=16,
        stim in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..6),
    ) {
        let src = format!(
            "module t(a, b, c, y);\n input [{w}:0] a, b, c;\n output [{w}:0] y;\n assign y = {expr};\nendmodule",
            w = width - 1
        );
        let module = parse_verilog(&src).expect("generated source parses");
        let netlist = lower_module(&module).expect("expression lowers");
        let mut rtl = mlrl::rtl::sim::Simulator::new(&module).expect("rtl sim");
        let mut gate = NetlistSimulator::new(&netlist).expect("gate sim");
        let mask = if width >= 64 { u64::MAX } else { (1 << width) - 1 };
        for (a, b, c) in stim {
            for (name, v) in [("a", a), ("b", b), ("c", c)] {
                rtl.set_input(name, v & mask).expect("set");
                gate.set_input(name, v & mask).expect("set");
            }
            rtl.settle().expect("settle");
            gate.settle().expect("settle");
            prop_assert_eq!(
                rtl.get("y").expect("y"),
                gate.output("y").expect("y"),
                "expr {} on ({}, {}, {})", src, a & mask, b & mask, c & mask
            );
        }
    }

    #[test]
    fn builder_arithmetic_is_bit_exact(
        a in any::<u64>(),
        b in any::<u64>(),
        wa in 1usize..=64,
        wb in 1usize..=64,
    ) {
        let mask = |v: u64, w: usize| if w >= 64 { v } else { v & ((1 << w) - 1) };
        let (av, bv) = (mask(a, wa), mask(b, wb));
        let mut builder = NetlistBuilder::new(Netlist::new("t"));
        let la = builder.const_lane(av);
        let lb = builder.const_lane(bv);
        // Constant lanes fold completely, so lane_const gives the result of
        // the full 64-bit circuit with zero gates built.
        let cases: Vec<(u64, Lane)> = vec![
            (av.wrapping_add(bv), builder.add(la, lb)),
            (av.wrapping_sub(bv), builder.sub(la, lb)),
            (av.wrapping_mul(bv), builder.mul(la, lb)),
            (av.checked_div(bv).unwrap_or(0), builder.divmod(la, lb).0),
            (av.checked_rem(bv).unwrap_or(0), builder.divmod(la, lb).1),
            (if bv >= 64 { 0 } else { av << bv }, builder.shl(la, lb)),
            (if bv >= 64 { 0 } else { av >> bv }, builder.shr(la, lb)),
            ((av < bv) as u64, {
                let bit = builder.lt(la, lb);
                builder.bit_lane(bit)
            }),
            ((av == bv) as u64, {
                let bit = builder.eq(la, lb);
                builder.bit_lane(bit)
            }),
        ];
        for (want, lane) in cases {
            prop_assert_eq!(builder.lane_const(lane), Some(want));
        }
        prop_assert!(builder.netlist().gates().is_empty(), "constants must fold");
    }

    #[test]
    fn gate_locking_preserves_function_under_correct_key(
        seed in any::<u64>(),
        bits in 1usize..12,
        use_mux in any::<bool>(),
    ) {
        let src = "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n wire [7:0] w;\n assign w = a * b;\n assign y = (w ^ a) + b;\nendmodule";
        let module = parse_verilog(src).expect("parses");
        let mut base = lower_module(&module).expect("lowers");
        base.sweep();
        let mut locked = base.clone();
        let key = if use_mux {
            mux_lock(&mut locked, bits, seed).expect("locks")
        } else {
            xor_xnor_lock(&mut locked, bits, seed).expect("locks")
        };
        let check = check_netlists(&base, &locked, &[], key.bits(), 40, seed ^ 1).expect("checks");
        prop_assert!(check.is_equivalent(), "{:?}", check);
        // Flipping one random key bit must keep the netlist well-formed and
        // simulable (corruption is likely but not universal per bit).
        let mut wrong = key.bits().to_vec();
        let flip = (seed as usize) % wrong.len();
        wrong[flip] ^= true;
        let _ = check_netlists(&base, &locked, &[], &wrong, 10, seed ^ 2).expect("still runs");
    }

    #[test]
    fn word_sim_lane_i_matches_scalar_eval_of_vector_i(
        expr in arb_expr(3),
        width in 1u32..=16,
        vectors in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..64),
        keys in proptest::collection::vec(any::<u64>(), 1..16),
        bits in 1usize..6,
        seed in any::<u64>(),
    ) {
        // A random locked netlist driven with up to 64 input vectors (and a
        // per-lane key sweep) in one walk; every lane must equal an
        // independent scalar simulation of that vector and key.
        lane_matches_scalar::<1>(&expr, width, &vectors, &keys, bits, seed)?;
    }

    #[test]
    fn tseitin_models_agree_with_netlist_simulation(
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let src = "module t(a, b, y);\n input [5:0] a, b;\n output [5:0] y;\n assign y = (a + b) ^ (a & b);\nendmodule";
        let module = parse_verilog(src).expect("parses");
        let mut netlist = lower_module(&module).expect("lowers");
        netlist.sweep();
        let (av, bv) = (a & 63, b & 63);
        let mut sim = NetlistSimulator::new(&netlist).expect("sim");
        sim.set_input("a", av).expect("set");
        sim.set_input("b", bv).expect("set");
        sim.settle().expect("settle");
        let want = sim.output("y").expect("y");

        let mut cnf = CnfBuilder::new();
        let mut bound = std::collections::HashMap::new();
        bind_input_const(&netlist, &mut cnf, &mut bound, "a", av);
        bind_input_const(&netlist, &mut cnf, &mut bound, "b", bv);
        let enc = encode(&netlist, &mut cnf, &bound).expect("encodes");
        let result = Solver::from_builder(&cnf).solve();
        let model = result.model().expect("sat");
        let mut got = 0u64;
        for (i, lit) in enc.port_lits(&netlist, "y").iter().enumerate() {
            if lit.value_under(model[lit.var().index()]) {
                got |= 1 << i;
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn cross_level_equivalence_on_random_locked_modules(
        seed in any::<u64>(),
    ) {
        // Lock a fixed small design with a random ASSURE key and check the
        // lowered form end to end (ternary mux trees included).
        let src = "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n wire [7:0] w0, w1;\n assign w0 = a + b;\n assign w1 = w0 * a;\n assign y = w1 - b;\nendmodule";
        let mut module = parse_verilog(src).expect("parses");
        let key = mlrl::locking::assure::lock_operations(
            &mut module,
            &mlrl::locking::assure::AssureConfig::random(3, seed),
        )
        .expect("locks");
        let bits: Vec<bool> =
            (0..module.key_width()).map(|i| key.bit(i).unwrap_or(false)).collect();
        let netlist = lower_module(&module).expect("lowers");
        let check =
            check_module_vs_netlist(&module, &netlist, &bits, 25, 0, seed).expect("checks");
        prop_assert!(check.is_equivalent(), "{:?}", check);
    }
}

/// Acceptance floor for the optimization pipeline: on at least one of
/// the paper's designs the `O2` pipeline must strip ≥ 20% of the lowered
/// gates — and prove it changed nothing observable.
#[test]
fn o2_reduces_a_paper_design_at_least_20_percent() {
    use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width};

    let spec = benchmark_by_name("USB_PHY").expect("known benchmark");
    let module = generate_with_width(&spec, 42, 8);
    let mut base = lower_module(&module).expect("lowers");
    base.sweep();
    let mut opt = base.clone();
    let stats = optimize(&mut opt, OptLevel::O2);
    assert!(opt.validate().is_ok());
    assert!(
        stats.reduction() >= 0.20,
        "USB_PHY O2 reduction regressed below the 20% floor: {} -> {} ({:.1}%)",
        stats.gates_before,
        stats.gates_after,
        100.0 * stats.reduction()
    );
    let check = check_netlists(&base, &opt, &[], &[], 200, 7).expect("checks");
    assert!(check.is_equivalent(), "{check:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn optimizer_preserves_function_for_random_expressions(
        expr in arb_expr(3),
        width in 1u32..=12,
        seed in any::<u64>(),
    ) {
        // The pipeline's core contract: for any netlist, `optimize` at
        // every level leaves the observable function untouched.
        let src = format!(
            "module t(a, b, c, y);\n input [{w}:0] a, b, c;\n output [{w}:0] y;\n assign y = {expr};\nendmodule",
            w = width - 1
        );
        let module = parse_verilog(&src).expect("generated source parses");
        let mut base = lower_module(&module).expect("lowers");
        base.sweep();
        for level in [OptLevel::O1, OptLevel::O2] {
            let mut opt = base.clone();
            let stats = optimize(&mut opt, level);
            prop_assert!(opt.validate().is_ok());
            prop_assert!(stats.gates_after <= stats.gates_before);
            let check =
                check_netlists(&base, &opt, &[], &[], 48, seed).expect("checks");
            prop_assert!(check.is_equivalent(), "{level}: {check:?} for {src}");
        }
    }

    #[test]
    fn optimize_and_lock_commute_and_round_trip_serdes(
        seed in any::<u64>(),
        bits in 1usize..10,
    ) {
        // Differential fuzzing of the two pass orders the engine can
        // produce: optimize-then-lock (the campaign pipeline) vs
        // lock-then-optimize (what an adversary with the optimizer would
        // do). Both must survive a serdes round trip byte-stably and
        // agree with each other under their correct keys.
        let src = "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n wire [7:0] w;\n assign w = (a & b) ^ (a + b);\n assign y = w | (a ^ 8'd85);\nendmodule";
        let module = parse_verilog(src).expect("parses");
        let mut base = lower_module(&module).expect("lowers");
        base.sweep();

        let mut opt_first = base.clone();
        optimize(&mut opt_first, OptLevel::O2);
        let key_a = xor_xnor_lock(&mut opt_first, bits, seed).expect("locks optimized");

        let mut lock_first = base.clone();
        let key_b = xor_xnor_lock(&mut lock_first, bits, seed).expect("locks base");
        optimize(&mut lock_first, OptLevel::O2);
        prop_assert!(lock_first.validate().is_ok());

        for n in [&opt_first, &lock_first] {
            let text = emit_netlist(n);
            let back = parse_netlist(&text).expect("round-trips");
            prop_assert_eq!(&emit_netlist(&back), &text, "serdes is byte-stable");
        }
        let check = check_netlists(
            &opt_first,
            &lock_first,
            key_a.bits(),
            key_b.bits(),
            40,
            seed ^ 3,
        )
        .expect("checks");
        prop_assert!(check.is_equivalent(), "{check:?}");
    }
}

proptest! {
    // Fewer cases: each one checks up to 256 lanes at two widths.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn wide_sim_lane_i_matches_scalar_eval_past_64(
        expr in arb_expr(2),
        width in 1u32..=8,
        vectors in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 65..257),
        keys in proptest::collection::vec(any::<u64>(), 1..16),
        bits in 1usize..6,
        seed in any::<u64>(),
    ) {
        // The same lane property at W=4 (up to fully packed) and W=8
        // (partially filled): always >64 vectors, so the words past the
        // first — the ones the scalar-era simulator never had — are live.
        lane_matches_scalar::<4>(&expr, width, &vectors, &keys, bits, seed)?;
        lane_matches_scalar::<8>(&expr, width, &vectors, &keys, bits, seed)?;
    }
}
