//! Integration test for §3.2: the original ASSURE pairing is broken by
//! pair analysis; the involutive fix closes the channel on every benchmark.

use mlrl::attack::pair_analysis::pair_analysis_attack;
use mlrl::locking::assure::{lock_operations, AssureConfig, Selection};
use mlrl::locking::pairs::PairTable;
use mlrl::rtl::bench_designs::{benchmark_by_name, paper_benchmarks};
use mlrl::rtl::visit;

#[test]
fn original_pairing_breaks_arithmetic_benchmarks() {
    // Benchmarks containing the §3.2-named leaky ops (*, /, %, ^, **).
    for bench in ["RSA", "FIR", "DES3"] {
        let spec = benchmark_by_name(bench).expect("benchmark");
        let table = PairTable::original_assure();
        let mut module = mlrl::rtl::bench_designs::generate(&spec, 41);
        let total = visit::binary_ops(&module).len();
        let cfg = AssureConfig {
            selection: Selection::Serial,
            pair_table: table.clone(),
            budget: total * 3 / 4,
            seed: 41,
        };
        let key = lock_operations(&mut module, &cfg).expect("lockable");
        let report = pair_analysis_attack(&module, &key, &table);
        assert!(
            !report.inferred.is_empty(),
            "{bench}: original pairing must leak bits"
        );
        assert_eq!(
            report.kpa_on_inferred, 100.0,
            "{bench}: pair inference must be exact"
        );
    }
}

#[test]
fn fixed_pairing_closes_the_channel_on_every_benchmark() {
    let table = PairTable::fixed();
    for spec in paper_benchmarks() {
        if spec.total_ops() > 300 {
            continue; // the N_* networks only contain (+,-): nothing new
        }
        let mut module = mlrl::rtl::bench_designs::generate(&spec, 43);
        let total = visit::binary_ops(&module).len();
        let cfg = AssureConfig {
            selection: Selection::Serial,
            pair_table: table.clone(),
            budget: total / 2,
            seed: 43,
        };
        let key = lock_operations(&mut module, &cfg).expect("lockable");
        let report = pair_analysis_attack(&module, &key, &table);
        assert!(
            report.inferred.is_empty(),
            "{}: fixed pairing leaked {} bits",
            spec.name,
            report.inferred.len()
        );
    }
}

#[test]
fn leak_coverage_tracks_leaky_op_share() {
    // RSA: Mul 26 + Mod 14 of 100 ops are one-way pairs under the original
    // table — coverage should be in that ballpark (serial, 75% budget).
    let spec = benchmark_by_name("RSA").expect("benchmark");
    let table = PairTable::original_assure();
    let mut module = mlrl::rtl::bench_designs::generate(&spec, 47);
    let total = visit::binary_ops(&module).len();
    let cfg = AssureConfig {
        selection: Selection::Serial,
        pair_table: table.clone(),
        budget: total * 3 / 4,
        seed: 47,
    };
    let key = lock_operations(&mut module, &cfg).expect("lockable");
    let report = pair_analysis_attack(&module, &key, &table);
    assert!(
        report.coverage > 15.0 && report.coverage < 80.0,
        "coverage {:.1}% out of expected band",
        report.coverage
    );
}
