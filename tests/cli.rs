//! End-to-end tests of the `mlrl` CLI binary: generate → stats → lock →
//! verify → attack on real files in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mlrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlrl"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlrl-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn full_lock_verify_attack_workflow() {
    let dir = tmpdir("flow");
    let design = dir.join("fir.v");
    let locked = dir.join("fir_locked.v");
    let key = dir.join("fir.key");

    let out = mlrl()
        .args(["gen", "FIR", "--seed", "5", "-o", design.to_str().unwrap()])
        .output()
        .expect("run gen");
    assert_success(&out, "gen");

    let out = mlrl()
        .args([
            "lock",
            design.to_str().unwrap(),
            "--scheme",
            "era",
            "--budget",
            "0.5",
            "--seed",
            "9",
            "-o",
            locked.to_str().unwrap(),
            "--key-out",
            key.to_str().unwrap(),
        ])
        .output()
        .expect("run lock");
    assert_success(&out, "lock");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("M_g_sec"), "lock report missing: {stderr}");

    let out = mlrl()
        .args([
            "verify",
            design.to_str().unwrap(),
            locked.to_str().unwrap(),
            "--key",
            key.to_str().unwrap(),
        ])
        .output()
        .expect("run verify");
    assert_success(&out, "verify");
    assert!(String::from_utf8_lossy(&out.stdout).contains("EQUIVALENT"));

    let out = mlrl()
        .args([
            "attack",
            locked.to_str().unwrap(),
            "--relocks",
            "15",
            "--key",
            key.to_str().unwrap(),
        ])
        .output()
        .expect("run attack");
    assert_success(&out, "attack");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("KPA:"),
        "attack output missing KPA: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_rejects_wrong_key() {
    let dir = tmpdir("wrongkey");
    let design = dir.join("iir.v");
    let locked = dir.join("iir_locked.v");
    let key = dir.join("iir.key");

    assert_success(
        &mlrl()
            .args(["gen", "IIR", "-o", design.to_str().unwrap()])
            .output()
            .expect("gen"),
        "gen",
    );
    assert_success(
        &mlrl()
            .args([
                "lock",
                design.to_str().unwrap(),
                "--scheme",
                "assure",
                "-o",
                locked.to_str().unwrap(),
                "--key-out",
                key.to_str().unwrap(),
            ])
            .output()
            .expect("lock"),
        "lock",
    );
    // Flip the first key bit.
    let bits = std::fs::read_to_string(&key).expect("read key");
    let flipped: String = bits
        .trim()
        .chars()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                if c == '0' {
                    '1'
                } else {
                    '0'
                }
            } else {
                c
            }
        })
        .collect();
    std::fs::write(&key, flipped).expect("write flipped key");

    let out = mlrl()
        .args([
            "verify",
            design.to_str().unwrap(),
            locked.to_str().unwrap(),
            "--key",
            key.to_str().unwrap(),
        ])
        .output()
        .expect("verify");
    assert!(!out.status.success(), "wrong key must fail verification");
    assert!(String::from_utf8_lossy(&out.stderr).contains("MISMATCH"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_reports_imbalance() {
    let dir = tmpdir("stats");
    let design = dir.join("md5.v");
    assert_success(
        &mlrl()
            .args(["gen", "MD5", "-o", design.to_str().unwrap()])
            .output()
            .expect("gen"),
        "gen",
    );
    let out = mlrl()
        .args(["stats", design.to_str().unwrap()])
        .output()
        .expect("stats");
    assert_success(&out, "stats");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("op mix"));
    assert!(stdout.contains("imbalance"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flatten_subcommand_inlines_hierarchy() {
    let dir = tmpdir("flatten");
    let hier = dir.join("hier.v");
    std::fs::write(
        &hier,
        "module leaf(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a + 1;\nendmodule\nmodule top(x, z);\n input [7:0] x;\n output [7:0] z;\n leaf u0 (.a(x), .y(z));\nendmodule\n",
    )
    .expect("write hier");
    let flat = dir.join("flat.v");
    let out = mlrl()
        .args([
            "flatten",
            hier.to_str().unwrap(),
            "-o",
            flat.to_str().unwrap(),
        ])
        .output()
        .expect("run flatten");
    assert_success(&out, "flatten");
    let text = std::fs::read_to_string(&flat).expect("read flat");
    assert!(text.contains("u0__y"), "flattened signals missing: {text}");
    assert!(!text.contains("leaf u0"), "instance not inlined: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = mlrl().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_benchmark_is_reported() {
    let out = mlrl().args(["gen", "NOPE"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn campaign_runs_spec_files_end_to_end() {
    let dir = tmpdir("campaign");
    let spec = dir.join("c.spec");
    let jsonl = dir.join("out.jsonl");
    std::fs::write(
        &spec,
        "benchmarks = FIR\nschemes = assure era\nbudgets = 0.5\nseeds = 3\n\
         attacks = kpa-model\nrelock_rounds = 4\nthreads = 2\n",
    )
    .expect("write spec");

    // Human table + JSONL sidecar.
    let out = mlrl()
        .args([
            "campaign",
            spec.to_str().unwrap(),
            "--jsonl",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .expect("run campaign");
    assert_success(&out, "campaign");
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("era"), "table missing scheme rows: {table}");
    let sidecar = std::fs::read_to_string(&jsonl).expect("jsonl written");
    assert!(
        sidecar.contains("\"cache_hit_rate\""),
        "summary line missing: {sidecar}"
    );

    // Boolean --canonical must not swallow the spec path, wherever it sits.
    let canonical_first = mlrl()
        .args(["campaign", "--canonical", spec.to_str().unwrap()])
        .output()
        .expect("run campaign --canonical");
    assert_success(&canonical_first, "campaign --canonical <spec>");
    let canonical_last = mlrl()
        .args(["campaign", spec.to_str().unwrap(), "--canonical"])
        .output()
        .expect("run campaign <spec> --canonical");
    assert_success(&canonical_last, "campaign <spec> --canonical");
    assert_eq!(
        canonical_first.stdout, canonical_last.stdout,
        "canonical output must not depend on flag position"
    );
    assert!(String::from_utf8_lossy(&canonical_first.stdout).starts_with("{\"campaign\":"));

    // --threads override and spec errors.
    let out = mlrl()
        .args([
            "campaign",
            spec.to_str().unwrap(),
            "--threads",
            "1",
            "--canonical",
        ])
        .output()
        .expect("run campaign --threads 1");
    assert_success(&out, "campaign --threads 1");
    assert_eq!(
        out.stdout, canonical_first.stdout,
        "canonical output must not depend on thread count"
    );
    std::fs::write(&spec, "schemes = era\n").expect("write bad spec");
    let out = mlrl()
        .args(["campaign", spec.to_str().unwrap()])
        .output()
        .expect("run campaign on bad spec");
    assert!(!out.status.success(), "empty-grid spec must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no benchmarks"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_campaigns_merge_to_the_unsharded_bytes() {
    let dir = tmpdir("shard");
    let spec = dir.join("c.spec");
    std::fs::write(
        &spec,
        "benchmarks = FIR\nschemes = assure era\nbudgets = 0.25 0.5\nseeds = 3\n\
         attacks = kpa-model none\nrelock_rounds = 4\nthreads = 2\n",
    )
    .expect("write spec");

    let canonical = |extra: &[&str]| {
        let mut args = vec!["campaign", spec.to_str().unwrap(), "--canonical"];
        args.extend_from_slice(extra);
        let out = mlrl().args(&args).output().expect("run campaign");
        assert_success(&out, "campaign");
        out.stdout
    };
    let full = canonical(&[]);
    let shard_files: Vec<std::path::PathBuf> = (0..3)
        .map(|i| {
            let bytes = canonical(&["--shard", &format!("{i}/3")]);
            let path = dir.join(format!("s{i}.jsonl"));
            std::fs::write(&path, bytes).expect("write shard");
            path
        })
        .collect();

    let mut args = vec!["merge".to_owned()];
    args.extend(shard_files.iter().map(|p| p.to_str().unwrap().to_owned()));
    let out = mlrl().args(&args).output().expect("run merge");
    assert_success(&out, "merge");
    assert_eq!(
        out.stdout, full,
        "merged shard output must be byte-identical to the unsharded run"
    );

    // A bad shard selector fails loudly.
    let out = mlrl()
        .args(["campaign", spec.to_str().unwrap(), "--shard", "3/3"])
        .output()
        .expect("run campaign with bad shard");
    assert!(!out.status.success(), "out-of-range shard must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    std::fs::remove_dir_all(&dir).ok();
}
