//! Integration: the hierarchical flow end to end — parse a multi-module
//! design, flatten, lock with each scheme, verify function, attack.

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::rtl::equiv::{check_equiv, EquivConfig};
use mlrl::rtl::parser::parse_design;
use mlrl::rtl::{emit, parser, visit};

/// A hierarchy with repeated instantiation of an imbalanced leaf: four
/// `mac` instances contribute 4 muls + 4 adds.
const SOC: &str = "
module mac(a, b, c, y);
  input [15:0] a, b, c;
  output [15:0] y;
  wire [15:0] p;
  assign p = a * b;
  assign y = p + c;
endmodule
module lane(x0, x1, out);
  input [15:0] x0, x1;
  output [15:0] out;
  wire [15:0] s0;
  mac m0 (.a(x0), .b(x1), .c(x0), .y(s0));
  mac m1 (.a(s0), .b(x0), .c(x1), .y(out));
endmodule
module soc(i0, i1, i2, o0, o1);
  input [15:0] i0, i1, i2;
  output [15:0] o0, o1;
  lane l0 (.x0(i0), .x1(i1), .out(o0));
  lane l1 (.x0(i1), .x1(i2), .out(o1));
endmodule";

#[test]
fn flatten_then_lock_preserves_hierarchy_function() {
    let design = parse_design(SOC).expect("parse");
    assert_eq!(design.tops(), vec!["soc"]);
    let flat = design.flatten("soc").expect("flatten");
    assert_eq!(visit::binary_ops(&flat).len(), 8, "4 macs x (mul + add)");

    for scheme in ["assure", "era"] {
        let mut locked = flat.clone();
        let key = match scheme {
            "assure" => lock_operations(&mut locked, &AssureConfig::serial(6, 3)).expect("lock"),
            _ => {
                era_lock(&mut locked, &EraConfig::new(6, 3))
                    .expect("lock")
                    .key
            }
        };
        let r = check_equiv(&flat, &locked, &[], key.as_bits(), &EquivConfig::default())
            .expect("equiv");
        assert!(r.is_equivalent(), "{scheme}: {r:?}");
    }
}

#[test]
fn flattened_locked_design_round_trips_and_attacks() {
    let design = parse_design(SOC).expect("parse");
    let flat = design.flatten("soc").expect("flatten");
    let mut locked = flat.clone();
    let total = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total, 5)).expect("lock");

    // Emit -> parse round trip of the flattened locked design.
    let text = emit::emit_verilog(&locked).expect("emit");
    let back = parser::parse_verilog(&text).expect("reparse");
    assert_eq!(visit::op_census(&back), visit::op_census(&locked));
    assert_eq!(back.key_width(), locked.key_width());

    // The attack runs on the reparsed artifact (the attacker's view).
    let cfg = AttackConfig {
        relock: RelockConfig {
            rounds: 15,
            budget_fraction: 0.75,
            seed: 7,
        },
        ..Default::default()
    };
    let report = snapshot_attack(&back, &outcome.key, &cfg).expect("localities");
    assert_eq!(report.attacked_bits, outcome.key.len());
}

#[test]
fn instance_emission_round_trips_unflattened() {
    let design = parse_design(SOC).expect("parse");
    let lane = design.module("lane").expect("lane exists");
    let text = emit::emit_verilog(lane).expect("emit");
    assert!(
        text.contains("mac m0 (.a(x0), .b(x1), .c(x0), .y(s0));"),
        "{text}"
    );
    let back = parser::parse_verilog(&text).expect("reparse");
    assert_eq!(back.instances().len(), 2);
    assert_eq!(back.instances()[0].module_name, "mac");
}

#[test]
fn simulator_refuses_unflattened_modules() {
    let design = parse_design(SOC).expect("parse");
    let soc = design.module("soc").expect("soc exists");
    let err = mlrl::rtl::sim::Simulator::new(soc).unwrap_err();
    assert!(matches!(err, mlrl::rtl::RtlError::Hierarchy(_)), "{err:?}");
}
