//! Cross-crate integration tests: locking correctness end to end.
//!
//! Every scheme must (a) preserve the locked design's function under the
//! correct key, (b) corrupt outputs under wrong keys, (c) produce locked
//! RTL that survives an emit → parse round trip with identical operation
//! census and localities (the attacker-visible artifact).

use mlrl::attack::extract_localities;
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::locking::key::Key;
use mlrl::rtl::ast::PortDir;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
use mlrl::rtl::sim::Simulator;
use mlrl::rtl::{emit, parser, visit, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn digest(module: &Module, key: &[bool], salt: u64) -> u64 {
    let mut sim = Simulator::new(module).expect("simulatable");
    for (i, p) in module.ports().iter().enumerate() {
        if p.dir == PortDir::Input && p.name != "clk" {
            sim.set_input(
                &p.name,
                (i as u64 + 3).wrapping_mul(0x517c_c1b7_2722_0a95) ^ salt,
            )
            .expect("input");
        }
    }
    sim.set_key(key).expect("key fits");
    sim.settle().expect("settles");
    sim.outputs_digest().expect("digest")
}

fn lock_with(scheme: &str, module: &mut Module, budget: usize, seed: u64) -> Key {
    match scheme {
        "assure" => lock_operations(module, &AssureConfig::serial(budget, seed)).expect("lock"),
        "hra" => {
            hra_lock(module, &HraConfig::new(budget, seed))
                .expect("lock")
                .key
        }
        "era" => {
            era_lock(module, &EraConfig::new(budget, seed))
                .expect("lock")
                .key
        }
        other => panic!("unknown scheme {other}"),
    }
}

#[test]
fn every_scheme_preserves_function_under_correct_key() {
    for bench in ["FIR", "RSA", "SASC"] {
        let spec = benchmark_by_name(bench).expect("paper benchmark");
        let original = generate(&spec, 11);
        let total = visit::binary_ops(&original).len();
        for scheme in ["assure", "hra", "era"] {
            let mut locked = original.clone();
            let key = lock_with(scheme, &mut locked, total / 2, 5);
            for salt in 0..5 {
                assert_eq!(
                    digest(&locked, key.as_bits(), salt),
                    digest(&original, &[], salt),
                    "{bench}/{scheme} salt {salt}"
                );
            }
        }
    }
}

#[test]
fn every_scheme_corrupts_under_wrong_keys() {
    let spec = benchmark_by_name("MD5").expect("paper benchmark");
    let original = generate(&spec, 13);
    let total = visit::binary_ops(&original).len();
    let mut rng = StdRng::seed_from_u64(3);
    for scheme in ["assure", "hra", "era"] {
        let mut locked = original.clone();
        let key = lock_with(scheme, &mut locked, total / 2, 7);
        let mut corrupted = 0;
        let trials = 10;
        for _ in 0..trials {
            let wrong = key.random_wrong_key(&mut rng);
            for salt in 0..3 {
                if digest(&locked, &wrong, salt) != digest(&locked, key.as_bits(), salt) {
                    corrupted += 1;
                    break;
                }
            }
        }
        assert!(
            corrupted >= trials * 7 / 10,
            "{scheme}: only {corrupted}/{trials} wrong keys corrupted outputs"
        );
    }
}

#[test]
fn locked_designs_round_trip_through_verilog() {
    for bench in ["SIM_SPI", "IIR"] {
        let spec = benchmark_by_name(bench).expect("paper benchmark");
        let mut locked = generate(&spec, 17);
        let total = visit::binary_ops(&locked).len();
        let _key = lock_with("era", &mut locked, total / 2, 19);
        let text = emit::emit_verilog(&locked).expect("emit");
        let reparsed = parser::parse_verilog(&text).expect("parse back");
        assert_eq!(
            visit::op_census(&reparsed),
            visit::op_census(&locked),
            "{bench}: census changed across round trip"
        );
        assert_eq!(
            extract_localities(&reparsed),
            extract_localities(&locked),
            "{bench}: attacker-visible localities changed across round trip"
        );
        assert_eq!(reparsed.key_width(), locked.key_width());
    }
}

#[test]
fn relocking_builds_fig3b_nested_trees() {
    let spec = benchmark_by_name("FIR").expect("paper benchmark");
    let mut locked = generate(&spec, 23);
    let total = visit::binary_ops(&locked).len();
    // Lock every op, then relock: nesting is guaranteed.
    let k1 = lock_operations(&mut locked, &AssureConfig::serial(total, 1)).expect("lock");
    let k2 = lock_operations(&mut locked, &AssureConfig::random(total, 2)).expect("relock");
    let locs = extract_localities(&locked);
    assert_eq!(locs.len(), k1.len() + k2.len());
    let nested = locs
        .iter()
        .filter(|l| l.c1 == mlrl::rtl::op::MUX_CODE || l.c2 == mlrl::rtl::op::MUX_CODE)
        .count();
    assert!(nested > 0, "relocking must produce nested mux localities");
    // Function still intact with the concatenated key.
    let original = generate(&spec, 23);
    let full: Vec<bool> = k1.as_bits().iter().chain(k2.as_bits()).copied().collect();
    for salt in 0..3 {
        assert_eq!(digest(&locked, &full, salt), digest(&original, &[], salt));
    }
}

#[test]
fn era_exceeds_budget_only_when_needed_and_stays_balanced() {
    use mlrl::locking::odt::Odt;
    use mlrl::locking::pairs::PairTable;
    for bench in ["DES3", "SHA256", "N_1023"] {
        let spec = benchmark_by_name(bench).expect("paper benchmark");
        let mut locked = generate(&spec, 29);
        let total = visit::binary_ops(&locked).len();
        let outcome = era_lock(&mut locked, &EraConfig::new(total * 3 / 4, 33)).expect("lock");
        // Every pair that ERA touched is balanced in the final design; for
        // these benchmarks with a 75% budget every present pair is touched.
        let odt = Odt::load(&locked, PairTable::fixed());
        assert!(odt.is_balanced(), "{bench}: ODT not balanced after ERA");
        assert_eq!(outcome.key.len(), outcome.bits_used);
    }
}

#[test]
fn key_width_tracks_key_length_for_all_schemes() {
    let spec = benchmark_by_name("USB_PHY").expect("paper benchmark");
    for (scheme, seed) in [("assure", 1u64), ("hra", 2), ("era", 3)] {
        let mut locked = generate(&spec, 37);
        let total = visit::binary_ops(&locked).len();
        let key = lock_with(scheme, &mut locked, total / 2, seed);
        assert_eq!(locked.key_width() as usize, key.len(), "{scheme}");
        assert_eq!(visit::key_mux_count(&locked), key.len(), "{scheme}");
    }
}
