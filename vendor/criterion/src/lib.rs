//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the `mlrl-bench` benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`
//! — backed by a small wall-clock harness: per benchmark it warms up once,
//! takes `sample_size` timed samples, and prints min/median/max. No
//! statistics beyond that, no plots, no CLI filtering.
//!
//! One extension over upstream: `--bench-json <path>` on the bench
//! binary's command line writes a machine-readable `BENCH.json`
//! (`{"benches":{"group/label":{"median_ns":..,...}}}`) summarizing
//! every benchmark the run executed — the baseline format `mlrl
//! bench-diff` consumes. The flag is handled inside [`criterion_main!`]
//! so individual benches need no changes.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Sorted per-benchmark samples collected over the whole process, keyed
/// by `group/label` — the source [`write_bench_json`] summarizes.
fn results() -> &'static Mutex<BTreeMap<String, Vec<Duration>>> {
    static RESULTS: OnceLock<Mutex<BTreeMap<String, Vec<Duration>>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{group}/{label}: median {median:?} (min {:?}, max {:?}, n={})",
        samples.first().expect("non-empty"),
        samples.last().expect("non-empty"),
        samples.len()
    );
    let key = if label.is_empty() {
        group.to_owned()
    } else {
        format!("{group}/{label}")
    };
    if let Ok(mut map) = results().lock() {
        map.entry(key).or_default().extend_from_slice(samples);
    }
}

/// Render every benchmark this process has run as a `BENCH.json`
/// baseline line: `{"benches":{"name":{"median_ns":N,"min_ns":N,
/// "max_ns":N,"samples":N},...}}`. Keys are escaped minimally (quotes
/// and backslashes); bench names are code-controlled identifiers.
pub fn bench_json() -> String {
    let map = match results().lock() {
        Ok(m) => m,
        Err(p) => p.into_inner(),
    };
    let mut out = String::from("{\"benches\":{");
    for (i, (name, samples)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let ns = |d: &Duration| d.as_nanos() as u64;
        out.push_str(&format!(
            "\"{}\":{{\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
            name.replace('\\', "\\\\").replace('"', "\\\""),
            ns(&sorted[sorted.len() / 2]),
            ns(&sorted[0]),
            ns(&sorted[sorted.len() - 1]),
            sorted.len()
        ));
    }
    out.push_str("}}");
    out
}

/// Write [`bench_json`] to `path`. Called by [`criterion_main!`] when
/// the bench binary's argv carries `--bench-json <path>`.
pub fn write_bench_json(path: &str) {
    let payload = format!("{}\n", bench_json());
    if let Err(e) = std::fs::write(path, payload) {
        eprintln!("bench-json: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("bench-json: wrote {path}");
}

/// The `--bench-json` operand from `args`, if present.
pub fn bench_json_path(mut args: impl Iterator<Item = String>) -> Option<String> {
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            return args.next();
        }
    }
    None
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's lower bound of
    /// 10 is not enforced here; small is the point of the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with the default sample size (5).
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 5,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("", routine);
        self
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each `criterion_group!`, then honouring
/// `--bench-json <path>` from the command line.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            if let Some(path) = $crate::bench_json_path(std::env::args()) {
                $crate::write_bench_json(&path);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_json_summarizes_recorded_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("jsonshim");
        group.sample_size(3);
        group.bench_function("fast", |b| b.iter(|| 1 + 1));
        group.finish();
        let text = bench_json();
        assert!(text.starts_with("{\"benches\":{"));
        assert!(text.contains("\"jsonshim/fast\":{\"median_ns\":"));
        assert!(text.contains("\"samples\":3"));
    }

    #[test]
    fn bench_json_path_parses_argv() {
        let args = ["bin", "--quick", "--bench-json", "out.json"];
        let found = bench_json_path(args.iter().map(|s| s.to_string()));
        assert_eq!(found.as_deref(), Some("out.json"));
        let none = bench_json_path(["bin", "--quick"].iter().map(|s| s.to_string()));
        assert_eq!(none, None);
    }
}
