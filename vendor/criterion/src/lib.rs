//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the `mlrl-bench` benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`
//! — backed by a small wall-clock harness: per benchmark it warms up once,
//! takes `sample_size` timed samples, and prints min/median/max. No
//! statistics beyond that, no plots, no CLI filtering.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{group}/{label}: median {median:?} (min {:?}, max {:?}, n={})",
        samples.first().expect("non-empty"),
        samples.last().expect("non-empty"),
        samples.len()
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's lower bound of
    /// 10 is not enforced here; small is the point of the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&self.name, &id.to_string(), &mut b.samples);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with the default sample size (5).
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 5,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("", routine);
        self
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }
}
