//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the mlrl test suite uses: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, [`strategy::Just`],
//! `any::<T>()`, ranges and tuples as strategies, `prop_oneof!`,
//! [`collection::vec`], [`sample::select`], [`array::uniform3`],
//! [`string::string_regex`] (a small regex *generator* subset), and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and panics as-is), generation is driven by a xoshiro-based RNG
//! seeded from the test name (deterministic across runs), and regex
//! generation supports only `atom{m,n}` / `atom*` / `atom+` / `atom?`
//! sequences where `atom` is a literal, `.`, or a `[...]` class.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config and failure plumbing for generated test fns.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config with `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs out; try another case.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failing variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejecting variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod rng {
    //! Self-contained deterministic generator (xoshiro256++), so the shim
    //! has no dependency on the workspace's `rand` stand-in.

    /// Deterministic test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a 64-bit value via SplitMix64.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over a string — used to derive per-test seeds from names.
    pub fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::rng::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into branches, up to `depth`
        /// levels. (`desired_size` and `expected_branch_size` only shape
        /// the branch probability here.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let make: Rc<RecurseFn<Self::Value>> =
                Rc::new(move |inner: BoxedStrategy<Self::Value>| recurse(inner).boxed());
            Recursive {
                base: self.boxed(),
                make,
                depth,
            }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    type RecurseFn<T> = dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>;

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        make: Rc<RecurseFn<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                make: Rc::clone(&self.make),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            if self.depth == 0 || rng.unit_f64() < 0.25 {
                return self.base.generate(rng);
            }
            let inner = Recursive {
                base: self.base.clone(),
                make: Rc::clone(&self.make),
                depth: self.depth - 1,
            }
            .boxed();
            (self.make)(inner).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32 - 30) as f64;
            mantissa * exp.exp2()
        }
    }

    /// Strategy form of [`Arbitrary`]; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    impl Strategy for &'static str {
        type Value = String;

        /// A string literal is a generation *regex* (proptest semantics).
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_regex(self, rng)
                .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Uniformly selects one element of `items` per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty collection");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Generates `[T; N]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Generic constructor behind the `uniformN` helpers.
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray { element }
    }

    macro_rules! uniform_n {
        ($($fn_name:ident => $n:literal),*) => {$(
            /// Generates a fixed-size array from one element strategy.
            pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                uniform(element)
            }
        )*};
    }

    uniform_n!(uniform2 => 2, uniform3 => 3, uniform4 => 4);
}

pub mod string {
    //! Regex-shaped string *generation* (subset).

    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Strategy generating strings matching a regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        pattern: String,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_regex(&self.pattern, rng)
                .unwrap_or_else(|e| panic!("invalid regex strategy `{}`: {e}", self.pattern))
        }
    }

    /// Compiles `pattern` into a generation strategy.
    ///
    /// Supported: sequences of atoms with optional quantifiers, where an
    /// atom is a literal character, an escape, `.` (printable ASCII), or a
    /// `[...]` class of characters/ranges, and a quantifier is `{m,n}`,
    /// `{n}`, `*`, `+` or `?`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        // Validate once so errors surface at construction.
        parse(pattern)?;
        Ok(RegexStrategy {
            pattern: pattern.to_owned(),
        })
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Inclusive character ranges.
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_escape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Result<Vec<Piece>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Class(vec![(' ', '~')])
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            parse_escape(*chars.get(i).ok_or("dangling escape")?)
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                parse_escape(*chars.get(i).ok_or("dangling escape")?)
                            } else {
                                chars[i]
                            };
                            i += 1;
                            if hi < lo {
                                return Err(format!("inverted class range {lo:?}-{hi:?}"));
                            }
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated character class".to_owned());
                    }
                    i += 1; // consume ']'
                    if ranges.is_empty() {
                        return Err("empty character class".to_owned());
                    }
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).ok_or("dangling escape")?;
                    i += 1;
                    Atom::Literal(parse_escape(c))
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let mut body = String::new();
                    while i < chars.len() && chars[i] != '}' {
                        body.push(chars[i]);
                        i += 1;
                    }
                    if i >= chars.len() {
                        return Err("unterminated {..} quantifier".to_owned());
                    }
                    i += 1; // consume '}'
                    let parts: Vec<&str> = body.split(',').collect();
                    match parts.as_slice() {
                        [n] => {
                            let n: usize =
                                n.trim().parse().map_err(|e| format!("bad {{n}}: {e}"))?;
                            (n, n)
                        }
                        [m, n] => {
                            let m: usize =
                                m.trim().parse().map_err(|e| format!("bad {{m,n}}: {e}"))?;
                            let n: usize =
                                n.trim().parse().map_err(|e| format!("bad {{m,n}}: {e}"))?;
                            if n < m {
                                return Err(format!("inverted quantifier {{{m},{n}}}"));
                            }
                            (m, n)
                        }
                        _ => return Err(format!("unsupported quantifier {{{body}}}")),
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(pieces)
    }

    pub(crate) fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
        let pieces = parse(pattern)?;
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = *hi as u64 - *lo as u64 + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (does not count towards `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::rng::TestRng::seed_from_u64(
                    $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let case = (|rng: &mut $crate::rng::TestRng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strategy), rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok::<(), $crate::test_runner::TestCaseError>(())
                    })(&mut rng);
                    match case {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "{}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "{} failed after {passed} passing case(s): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=6), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = c;
        }

        #[test]
        fn recursive_depth_is_bounded(
            t in Just(Tree::Leaf(0)).prop_map(|t| t).boxed().prop_recursive(
                3, 8, 2,
                |inner| (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ),
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} too deep", depth(&t));
        }

        #[test]
        fn oneof_vec_select_cover(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..4),
            s in crate::sample::select(vec!["x", "y"]),
            arr in crate::array::uniform3(any::<u64>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
            prop_assert!(s == "x" || s == "y");
            let _ = arr;
        }

        #[test]
        fn assume_rejects_dont_count(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn regex_subset_generates_matching(src in "[ -~\\n]{0,20}") {
            prop_assert!(src.len() <= 20);
            prop_assert!(src.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn string_regex_rejects_garbage() {
        assert!(crate::string::string_regex("[unterminated").is_err());
        assert!(crate::string::string_regex(".{0,120}").is_ok());
    }
}
