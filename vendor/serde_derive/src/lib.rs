//! No-op `#[derive(Serialize)]` for the vendored serde shim.
//!
//! The workspace builds offline; the result structs in `mlrl-bench` carry
//! `#[derive(Serialize)]` as documentation of intent, and the vendored
//! `serde` crate's blanket impl makes every type `Serialize`. This derive
//! therefore only needs to accept the input and emit nothing.

use proc_macro::TokenStream;

/// Accepts any item and emits no code (the shim's blanket impl covers it).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any item and emits no code, mirroring `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
