//! Offline stand-in for `serde`.
//!
//! The mlrl workspace only uses serde as a *marker* — result structs in
//! `mlrl-bench` derive `Serialize` so a future exporter can stream them —
//! and the build environment has no crates.io access. This shim keeps the
//! derive compiling: [`Serialize`] is a blanket-implemented marker trait,
//! and the re-exported derive macro emits no code. All actual JSON output
//! in the workspace is hand-rolled (see `mlrl-engine`'s report module).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; blanket-implemented so the
/// no-op derive is always satisfied.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}
