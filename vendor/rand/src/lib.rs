//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand 0.8` API that the mlrl
//! crates actually call: [`rngs::StdRng`] (here a xoshiro256++ generator
//! seeded via SplitMix64 — deterministic, but *not* bit-compatible with
//! upstream `StdRng`), [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! and [`seq::SliceRandom::shuffle`].

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (`rand`'s
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                start + (end - start) * unit as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed, but not bit-compatible with the
    /// upstream `rand::rngs::StdRng` (which is ChaCha12).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place shuffling (`rand`'s
    /// `SliceRandom`, shuffle-and-choose subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-0.8..0.8);
            assert!((-0.8..0.8).contains(&f));
            let u = rng.gen_range(0u64..64);
            assert!(u < 64);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
