//! # mlrl — ML-resilient logic locking at register-transfer level
//!
//! Umbrella crate of the reproduction of *"Designing ML-Resilient Locking
//! at Register-Transfer Level"* (DAC 2022). It re-exports the six
//! component crates:
//!
//! - [`rtl`] — RTL IR, Verilog front end, simulator, benchmark generators,
//! - [`locking`] — ASSURE locking, ODT metrics, ERA/HRA algorithms,
//! - [`ml`] — classifiers and the auto-ml search,
//! - [`attack`] — SnapShot-RTL, gate-level SnapShot, and pair-analysis
//!   attacks,
//! - [`netlist`] — gate-level netlists: bit-blasting lowering ("synthesis"),
//!   simulation, and traditional gate-level locking,
//! - [`sat`] — CNF, a CDCL solver, Tseitin encoding, and the oracle-guided
//!   SAT attack,
//! - [`engine`] — the parallel experiment-campaign engine with
//!   content-addressed artifact caching (`mlrl campaign` runs its spec
//!   files end to end),
//! - [`orchestrate`] — the multi-process campaign orchestrator: plans
//!   cost-balanced worker assignments, spawns and supervises worker
//!   processes over a line protocol, journals completed cells for
//!   checkpoint/resume, and merges the canonical report in-process
//!   (`mlrl orchestrate`),
//! - [`obs`] — run telemetry: span timers, counters, gauges, and the
//!   Chrome trace / `metrics.json` exporters behind `--trace-out` and
//!   `--metrics-out` (a pure side channel; canonical bytes never change).
//!
//! See `examples/quickstart.rs` for an end-to-end lock → attack → score
//! walkthrough, and the `mlrl-bench` binaries for the paper's figures.
//!
//! ```
//! use mlrl::locking::era::{era_lock, EraConfig};
//! use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
//!
//! let spec = benchmark_by_name("FIR").expect("known benchmark");
//! let mut module = generate(&spec, 42);
//! let outcome = era_lock(&mut module, &EraConfig::new(47, 7))?;
//! assert!(outcome.key.len() >= 47);
//! # Ok::<(), mlrl::locking::LockError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mlrl_attack as attack;
pub use mlrl_engine as engine;
pub use mlrl_locking as locking;
pub use mlrl_ml as ml;
pub use mlrl_netlist as netlist;
pub use mlrl_obs as obs;
pub use mlrl_orchestrate as orchestrate;
pub use mlrl_rtl as rtl;
pub use mlrl_sat as sat;
