//! `mlrl` — command-line front end for file-based locking workflows.
//!
//! ```text
//! mlrl gen     <benchmark> [--seed N] [-o design.v]
//! mlrl flatten <hier.v> --top NAME [-o flat.v]
//! mlrl stats  <design.v>
//! mlrl lock   <design.v> --scheme assure|hra|era [--budget F] [--seed N]
//!             [-o locked.v] [--key-out key.txt]
//! mlrl verify <original.v> <locked.v> --key key.txt [--patterns N]
//! mlrl attack <locked.v> [--relocks N] [--key key.txt] [--seed N]
//! mlrl synth  <design.v> [-o netlist.v]
//! mlrl gatelock <design.v> --scheme xor|mux --bits N [--seed N]
//!             [-o locked.v] [--key-out key.txt]
//! mlrl sat-attack <locked.v> --key key.txt [--max-dips N]
//! mlrl campaign <spec.txt> [--threads N] [--jsonl out.jsonl]
//!             [--cache-dir DIR] [--canonical] [--shard I/N]
//! mlrl merge  <shard.jsonl>... [-o merged.jsonl]
//! ```
//!
//! Keys are stored as plain bit strings, `K[0]` first. Campaign spec
//! files use the `key = value` format of `mlrl_engine::spec` (see
//! `examples/campaign.spec`). `--shard I/N` runs the I-th of N
//! deterministic partitions of the job list (run every shard — on as
//! many processes or machines as you like — then `mlrl merge` their
//! `--canonical` outputs back into the byte stream an unsharded run
//! would print).

use std::fs;
use std::process::ExitCode;

use mlrl::attack::freq_table::freq_table_attack;
use mlrl::attack::relock::RelockConfig;
use mlrl::engine::job::ShardSpec;
use mlrl::engine::report::merge_canonical_streams;
use mlrl::engine::run::Engine;
use mlrl::engine::spec::CampaignSpec;
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::locking::key::{Key, KeyBitKind};
use mlrl::locking::pairs::PairTable;
use mlrl::locking::report::LockingReport;
use mlrl::netlist::emit::emit_structural_verilog;
use mlrl::netlist::lock::{lock_netlist, GateLockScheme};
use mlrl::netlist::lower::lower_module;
use mlrl::netlist::stats::NetlistStats;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate, paper_benchmarks};
use mlrl::rtl::emit::emit_verilog;
use mlrl::rtl::equiv::{check_equiv, EquivConfig, EquivResult};
use mlrl::rtl::parser::{parse_design, parse_verilog};
use mlrl::rtl::stats::DesignStats;
use mlrl::rtl::{visit, Module};
use mlrl::sat::attack::{sat_attack_with_sim_oracle, SatAttackConfig};

/// Flags that take no value; the parser must not consume the next token
/// as their argument (`mlrl campaign --canonical spec.txt`).
const BOOLEAN_FLAGS: &[&str] = &["canonical"];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&name) {
                    None
                } else {
                    let value = it
                        .peek()
                        .filter(|v| !v.starts_with("--"))
                        .map(|v| (*v).clone());
                    if value.is_some() {
                        it.next();
                    }
                    value
                };
                flags.push((name.to_owned(), value));
            } else if let Some(name) = a.strip_prefix('-') {
                let value = it.next().cloned();
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Self { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flag(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn load_module(path: &str) -> Result<Module, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_verilog(&src).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn key_to_string(key: &[bool]) -> String {
    key.iter().map(|b| if *b { '1' } else { '0' }).collect()
}

fn key_from_string(s: &str) -> Result<Vec<bool>, String> {
    s.trim()
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid key character `{other}`")),
        })
        .collect()
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let name = args.positional.get(1).ok_or_else(|| {
        format!(
            "usage: mlrl gen <benchmark>\nbenchmarks: {}",
            paper_benchmarks()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(" ")
        )
    })?;
    let spec = benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let module = generate(&spec, args.num("seed", 2022u64));
    let text = emit_verilog(&module).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {path} ({} ops)", spec.total_ops());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_flatten(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl flatten <hier.v> --top NAME [-o flat.v]")?;
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let design = parse_design(&src).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let top = match args.flag("top") {
        Some(t) => t.to_owned(),
        None => {
            let tops = design.tops();
            if tops.len() == 1 {
                tops[0].to_owned()
            } else {
                return Err(format!(
                    "ambiguous top (candidates: {}); pass --top",
                    tops.join(", ")
                ));
            }
        }
    };
    let flat = design.flatten(&top).map_err(|e| e.to_string())?;
    eprintln!("{}", DesignStats::of(&flat));
    let text = emit_verilog(&flat).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl stats <design.v>")?;
    let module = load_module(path)?;
    println!("{}", DesignStats::of(&module));
    let odt = mlrl::locking::odt::Odt::load(&module, PairTable::fixed());
    println!(
        "  imbalance: {} ({} ops => ERA needs >= {} bits for Def. 1)",
        odt.total_imbalance(),
        visit::binary_ops(&module).len(),
        odt.total_imbalance()
    );
    Ok(())
}

fn cmd_lock(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl lock <design.v> --scheme era")?;
    let original = load_module(path)?;
    let mut locked = original.clone();
    let total = visit::binary_ops(&locked).len();
    let fraction: f64 = args.num("budget", 0.75);
    let budget = ((total as f64) * fraction).round().max(1.0) as usize;
    let seed: u64 = args.num("seed", 2022);
    let scheme = args.flag("scheme").unwrap_or("era");
    let key: Key = match scheme {
        "assure" => lock_operations(&mut locked, &AssureConfig::serial(budget, seed))
            .map_err(|e| e.to_string())?,
        "assure-random" => lock_operations(&mut locked, &AssureConfig::random(budget, seed))
            .map_err(|e| e.to_string())?,
        "hra" => {
            hra_lock(&mut locked, &HraConfig::new(budget, seed))
                .map_err(|e| e.to_string())?
                .key
        }
        "era" => {
            era_lock(&mut locked, &EraConfig::new(budget, seed))
                .map_err(|e| e.to_string())?
                .key
        }
        other => {
            return Err(format!(
                "unknown scheme `{other}` (assure|assure-random|hra|era)"
            ))
        }
    };
    let report = LockingReport::build(scheme, &original, &locked, &key, &PairTable::fixed());
    eprintln!("{report}");
    let text = emit_verilog(&locked).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    if let Some(key_out) = args.flag("key-out") {
        fs::write(key_out, key_to_string(key.as_bits())).map_err(|e| e.to_string())?;
        eprintln!("wrote {key_out} ({} bits)", key.len());
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let original = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl verify <original.v> <locked.v> --key k.txt")?,
    )?;
    let locked = load_module(
        args.positional
            .get(2)
            .ok_or("usage: mlrl verify <original.v> <locked.v> --key k.txt")?,
    )?;
    let key_path = args.flag("key").ok_or("missing --key <file>")?;
    let key = key_from_string(&fs::read_to_string(key_path).map_err(|e| e.to_string())?)?;
    let cfg = EquivConfig {
        patterns: args.num("patterns", 64usize),
        ticks: 2,
        seed: 7,
    };
    match check_equiv(&original, &locked, &[], &key, &cfg).map_err(|e| e.to_string())? {
        EquivResult::Equivalent { patterns } => {
            println!("EQUIVALENT over {patterns} random patterns");
            Ok(())
        }
        EquivResult::Mismatch {
            pattern,
            output,
            left,
            right,
        } => Err(format!(
            "MISMATCH at pattern {pattern}: output `{output}` original={left:#x} locked={right:#x}"
        )),
    }
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let locked = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl attack <locked.v> [--key key.txt]")?,
    )?;
    let relock = RelockConfig {
        rounds: args.num("relocks", 60usize),
        budget_fraction: 0.75,
        seed: args.num("seed", 7u64),
    };
    // Build a scoring key: the real one if provided, else zeros (KPA then
    // meaningless and suppressed).
    let (score_key, have_key) = match args.flag("key") {
        Some(path) => {
            let bits = key_from_string(&fs::read_to_string(path).map_err(|e| e.to_string())?)?;
            let mut k = Key::new();
            for b in bits {
                k.push(b, KeyBitKind::Operation);
            }
            (k, true)
        }
        None => {
            let mut k = Key::new();
            for _ in 0..locked.key_width() {
                k.push(false, KeyBitKind::Operation);
            }
            (k, false)
        }
    };
    let report = freq_table_attack(&locked, &score_key, &relock)
        .ok_or("design exposes no key-controlled localities")?;
    println!("attacked bits: {}", report.attacked_bits);
    let predicted: Vec<bool> = {
        let mut bits = vec![false; locked.key_width() as usize];
        for (bit, v) in &report.predictions {
            if let Some(slot) = bits.get_mut(*bit as usize) {
                *slot = *v;
            }
        }
        bits
    };
    println!("predicted key: {}", key_to_string(&predicted));
    if have_key {
        println!("KPA: {:.2}% (50% = random guess)", report.kpa);
    }
    Ok(())
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    let module = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl synth <design.v> [-o netlist.v]")?,
    )?;
    let mut netlist = lower_module(&module).map_err(|e| e.to_string())?;
    let removed = netlist.sweep();
    let stats = NetlistStats::of(&netlist);
    eprintln!(
        "synthesized `{}`: {stats}({removed} dead gates swept)",
        netlist.name()
    );
    let text = emit_structural_verilog(&netlist).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, text).map_err(|e| e.to_string())?;
            println!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_gatelock(args: &Args) -> Result<(), String> {
    let module = load_module(args.positional.get(1).ok_or(
        "usage: mlrl gatelock <design.v> --scheme xor|mux --bits N [--seed N] [-o locked.v] [--key-out k.txt]",
    )?)?;
    let mut netlist = lower_module(&module).map_err(|e| e.to_string())?;
    netlist.sweep();
    let bits = args.num("bits", 32usize);
    let seed = args.num("seed", 7u64);
    let scheme = match args.flag("scheme").unwrap_or("xor") {
        "xor" => GateLockScheme::XorXnor,
        "mux" => GateLockScheme::Mux,
        other => return Err(format!("unknown gate scheme `{other}` (xor|mux)")),
    };
    let key = lock_netlist(&mut netlist, scheme, bits, seed).map_err(|e| e.to_string())?;
    eprintln!(
        "gate-locked `{}` with {} key bits ({} gates)",
        netlist.name(),
        key.len(),
        netlist.gates().len()
    );
    if let Some(path) = args.flag("key-out") {
        fs::write(path, key_to_string(key.bits())).map_err(|e| e.to_string())?;
        eprintln!("wrote key to {path}");
    }
    let text = emit_structural_verilog(&netlist).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, text).map_err(|e| e.to_string())?;
            println!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_sat_attack(args: &Args) -> Result<(), String> {
    let locked = load_module(args.positional.get(1).ok_or(
        "usage: mlrl sat-attack <locked.v> --key key.txt [--max-dips N] (key plays the oracle chip)",
    )?)?;
    let key_path = args
        .flag("key")
        .ok_or("missing --key <file> (the oracle's key)")?;
    let key = key_from_string(&fs::read_to_string(key_path).map_err(|e| e.to_string())?)?;
    let mut netlist = lower_module(&locked)
        .map_err(|e| e.to_string())?
        .to_scan_view();
    netlist.sweep();
    eprintln!(
        "attacking `{}`: {} gates, {} key bits (scan view)",
        netlist.name(),
        netlist.gates().len(),
        netlist.key_width()
    );
    let cfg = SatAttackConfig {
        max_dips: args.num("max-dips", 512usize),
        ..Default::default()
    };
    let (report, correct) =
        sat_attack_with_sim_oracle(&netlist, &key, &cfg).map_err(|e| e.to_string())?;
    println!("DIPs (oracle queries): {}", report.dips);
    println!("UNSAT proof:           {}", report.proved);
    println!("recovered key:         {}", key_to_string(&report.key));
    println!("functionally correct:  {correct}");
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or(
        "usage: mlrl campaign <spec.txt> [--threads N] [--jsonl out.jsonl] [--cache-dir DIR] [--canonical] [--shard I/N]",
    )?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spec = CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(threads) = args.flag("threads") {
        spec.threads = threads.parse().map_err(|e| format!("bad --threads: {e}"))?;
    }
    let shard = args.flag("shard").map(ShardSpec::parse).transpose()?;
    let mut engine = Engine::new();
    if let Some(dir) = args.flag("cache-dir") {
        engine = engine.with_cache_dir(dir);
    }
    eprintln!(
        "campaign `{}`: {} cells ({} benchmarks x {} levels x {} schemes x {} budgets x {} seeds x {} attacks, level-incompatible combos skipped){}",
        spec.name,
        spec.cells(),
        spec.benchmarks.len(),
        spec.levels.len(),
        spec.schemes.len(),
        spec.budgets.len(),
        spec.seeds.len(),
        spec.attacks.len(),
        match shard {
            Some(s) => format!("; running shard {s}"),
            None => String::new(),
        },
    );
    let report = engine.run_shard(&spec, shard);
    if args.has("canonical") {
        print!("{}", report.canonical_jsonl());
    } else {
        print!("{}", report.human_table());
        eprintln!("{}", report.summary());
    }
    if let Some(out) = args.flag("jsonl") {
        fs::write(out, report.jsonl()).map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
    }
    if report.failed_count() > 0 {
        return Err(format!("{} job(s) failed", report.failed_count()));
    }
    Ok(())
}

fn cmd_merge(args: &Args) -> Result<(), String> {
    let paths = &args.positional[1..];
    if paths.is_empty() {
        return Err("usage: mlrl merge <shard.jsonl>... [-o merged.jsonl]".to_owned());
    }
    let streams: Vec<String> = paths
        .iter()
        .map(|p| fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}")))
        .collect::<Result<_, _>>()?;
    let merged = merge_canonical_streams(&streams)?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &merged).map_err(|e| e.to_string())?;
            eprintln!("wrote {out} ({} shard file(s) merged)", paths.len());
        }
        None => print!("{merged}"),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("flatten") => cmd_flatten(&args),
        Some("stats") => cmd_stats(&args),
        Some("lock") => cmd_lock(&args),
        Some("verify") => cmd_verify(&args),
        Some("attack") => cmd_attack(&args),
        Some("synth") => cmd_synth(&args),
        Some("gatelock") => cmd_gatelock(&args),
        Some("sat-attack") => cmd_sat_attack(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("merge") => cmd_merge(&args),
        _ => Err(
            "usage: mlrl <gen|flatten|stats|lock|verify|attack|synth|gatelock|sat-attack|campaign|merge> ...\nsee `src/bin/mlrl.rs` docs"
                .to_owned(),
        ),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
