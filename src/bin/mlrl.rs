//! `mlrl` — command-line front end for file-based locking workflows.
//!
//! ```text
//! mlrl gen     <benchmark> [--seed N] [-o design.v]
//! mlrl flatten <hier.v> --top NAME [-o flat.v]
//! mlrl stats  <design.v>
//! mlrl lock   <design.v> --scheme assure|hra|era [--budget F] [--seed N]
//!             [-o locked.v] [--key-out key.txt]
//! mlrl verify <original.v> <locked.v> --key key.txt [--patterns N]
//! mlrl attack <locked.v> [--relocks N] [--key key.txt] [--seed N]
//! mlrl synth  <design.v> [-o netlist.v]
//! mlrl gatelock <design.v> --scheme xor|mux --bits N [--seed N]
//!             [-o locked.v] [--key-out key.txt]
//! mlrl sat-attack <locked.v> --key key.txt [--max-dips N]
//! mlrl campaign <spec.txt> [--threads N] [--opt-level o0|o1|o2]
//!             [--jsonl out.jsonl]
//!             [--cache-dir DIR] [--cache-cap BYTES] [--canonical]
//!             [--shard I/N] [--trace-out FILE] [--metrics-out FILE]
//!             [--trace-sample N]
//! mlrl merge  <shard.jsonl>... [-o merged.jsonl]
//! mlrl orchestrate <spec.txt> [--workers N] [--run-dir DIR | --resume DIR]
//!             [--cache-dir DIR] [--cache-cap BYTES] [--worker-threads N]
//!             [--opt-level o0|o1|o2] [--wedge-timeout SECS]
//!             [--max-restarts N] [--canonical]
//!             [--jsonl out.jsonl] [--quick]
//!             [--trace-out FILE] [--metrics-out FILE] [--trace-sample N]
//! mlrl worker <spec.txt> --cells 0,2,5 [--threads N] [--opt-level o0|o1|o2]
//!             [--cache-dir DIR]
//!             [--cache-cap BYTES] [--heartbeat-ms MS] [--telemetry]
//!             [--trace-sample N]
//! mlrl top    <run-dir> [--once] [--refresh-ms MS] [--stale-ms MS] [--top N]
//! mlrl report <run-dir> [--trace FILE] [--top N] [--folded-out FILE]
//! mlrl bench-diff <old.json> <new.json> [--threshold PCT]
//! ```
//!
//! Keys are stored as plain bit strings, `K[0]` first. Campaign spec
//! files use the `key = value` format of `mlrl_engine::spec` (see
//! `examples/campaign.spec`). `--shard I/N` runs the I-th of N
//! deterministic partitions of the job list (run every shard — on as
//! many processes or machines as you like — then `mlrl merge` their
//! `--canonical` outputs back into the byte stream an unsharded run
//! would print). `orchestrate` drives that whole flow on one machine:
//! it spawns `--workers` worker processes over cost-balanced cell
//! assignments, shares one content-addressed cache dir, journals every
//! completed cell under the run dir (so a killed orchestration resumes
//! with `--resume <dir>`), restarts crashed or wedged workers, and
//! merges the canonical unsharded bytes in-process. `worker` is the
//! internal per-process mode `orchestrate` spawns; it streams the
//! line protocol of `mlrl_orchestrate::protocol` on stdout.
//!
//! `--trace-out FILE` / `--metrics-out FILE` (on `campaign` and
//! `orchestrate`) arm the `mlrl_obs` telemetry sink and export a Chrome
//! trace-event JSON (load in Perfetto or `chrome://tracing`) and a
//! metrics rollup after the run. Telemetry is a pure side channel:
//! canonical output bytes are identical with it on or off. Under
//! `orchestrate`, workers run with `--telemetry` and stream cumulative
//! rollups *and incremental trace chunks* over the line protocol; the
//! supervisor aggregates the fleet into `<run-dir>/metrics.json` and
//! merges every worker's spans onto one skew-corrected timeline in
//! `<run-dir>/trace.json` (worker lanes namespaced `w<slot>/`,
//! supervisor-synthesized lanes `orch/`). `--trace-sample N` keeps
//! 1-in-N hot-class spans (phase and cell spans always kept; aggregate
//! stats stay exact) to bound trace volume on long runs.
//!
//! `top` is the live fleet console: it tails a run directory's
//! `journal.jsonl` / `fleet.json` / `metrics.json` and renders
//! campaign progress with ETA, per-worker state, heartbeat age and
//! utilization (stale workers flagged), p50/p90/p99 cell latency,
//! cache hit rates, and process memory. `--once` prints a single
//! plain snapshot for scripts and CI.
//!
//! `report` analyzes those artifacts offline: phase-time breakdown,
//! latency percentiles from the histogram rollup, cache hit rates,
//! per-worker utilization with straggler ranking, the top-N slowest
//! cells, and (with `--folded-out`) folded stacks for flamegraph
//! tooling. `bench-diff` compares two `BENCH.json` baselines (emitted
//! by the bench bins' `--bench-json` flag) under a noise threshold
//! (default 10%) and exits nonzero when any benchmark regressed past
//! it — the regression gate CI runs advisorily.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mlrl::attack::freq_table::freq_table_attack;
use mlrl::attack::relock::RelockConfig;
use mlrl::engine::cache::parse_byte_size;
use mlrl::engine::job::ShardSpec;
use mlrl::engine::report::merge_canonical_streams;
use mlrl::engine::run::{Engine, JobEvent};
use mlrl::engine::spec::{CampaignSpec, OptLevel};
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::locking::key::{Key, KeyBitKind};
use mlrl::locking::pairs::PairTable;
use mlrl::locking::report::LockingReport;
use mlrl::netlist::emit::emit_structural_verilog;
use mlrl::netlist::lock::{lock_netlist, GateLockScheme};
use mlrl::netlist::lower::lower_module;
use mlrl::netlist::stats::NetlistStats;
use mlrl::orchestrate::protocol;
use mlrl::orchestrate::supervise::{orchestrate, OrchestratorConfig};
use mlrl::rtl::bench_designs::{benchmark_by_name, generate, paper_benchmarks};
use mlrl::rtl::emit::emit_verilog;
use mlrl::rtl::equiv::{check_equiv, EquivConfig, EquivResult};
use mlrl::rtl::parser::{parse_design, parse_verilog};
use mlrl::rtl::stats::DesignStats;
use mlrl::rtl::{visit, Module};
use mlrl::sat::attack::{sat_attack_with_sim_oracle, SatAttackConfig};

/// Flags that take no value; the parser must not consume the next token
/// as their argument (`mlrl campaign --canonical spec.txt`).
const BOOLEAN_FLAGS: &[&str] = &["canonical", "quick", "telemetry", "once"];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&name) {
                    None
                } else {
                    let value = it
                        .peek()
                        .filter(|v| !v.starts_with("--"))
                        .map(|v| (*v).clone());
                    if value.is_some() {
                        it.next();
                    }
                    value
                };
                flags.push((name.to_owned(), value));
            } else if let Some(name) = a.strip_prefix('-') {
                let value = it.next().cloned();
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Self { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flag(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn load_module(path: &str) -> Result<Module, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_verilog(&src).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn key_to_string(key: &[bool]) -> String {
    key.iter().map(|b| if *b { '1' } else { '0' }).collect()
}

fn key_from_string(s: &str) -> Result<Vec<bool>, String> {
    s.trim()
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid key character `{other}`")),
        })
        .collect()
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let name = args.positional.get(1).ok_or_else(|| {
        format!(
            "usage: mlrl gen <benchmark>\nbenchmarks: {}",
            paper_benchmarks()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(" ")
        )
    })?;
    let spec = benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let module = generate(&spec, args.num("seed", 2022u64));
    let text = emit_verilog(&module).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {path} ({} ops)", spec.total_ops());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_flatten(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl flatten <hier.v> --top NAME [-o flat.v]")?;
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let design = parse_design(&src).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let top = match args.flag("top") {
        Some(t) => t.to_owned(),
        None => {
            let tops = design.tops();
            if tops.len() == 1 {
                tops[0].to_owned()
            } else {
                return Err(format!(
                    "ambiguous top (candidates: {}); pass --top",
                    tops.join(", ")
                ));
            }
        }
    };
    let flat = design.flatten(&top).map_err(|e| e.to_string())?;
    eprintln!("{}", DesignStats::of(&flat));
    let text = emit_verilog(&flat).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl stats <design.v>")?;
    let module = load_module(path)?;
    println!("{}", DesignStats::of(&module));
    let odt = mlrl::locking::odt::Odt::load(&module, PairTable::fixed());
    println!(
        "  imbalance: {} ({} ops => ERA needs >= {} bits for Def. 1)",
        odt.total_imbalance(),
        visit::binary_ops(&module).len(),
        odt.total_imbalance()
    );
    Ok(())
}

fn cmd_lock(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: mlrl lock <design.v> --scheme era")?;
    let original = load_module(path)?;
    let mut locked = original.clone();
    let total = visit::binary_ops(&locked).len();
    let fraction: f64 = args.num("budget", 0.75);
    let budget = ((total as f64) * fraction).round().max(1.0) as usize;
    let seed: u64 = args.num("seed", 2022);
    let scheme = args.flag("scheme").unwrap_or("era");
    let key: Key = match scheme {
        "assure" => lock_operations(&mut locked, &AssureConfig::serial(budget, seed))
            .map_err(|e| e.to_string())?,
        "assure-random" => lock_operations(&mut locked, &AssureConfig::random(budget, seed))
            .map_err(|e| e.to_string())?,
        "hra" => {
            hra_lock(&mut locked, &HraConfig::new(budget, seed))
                .map_err(|e| e.to_string())?
                .key
        }
        "era" => {
            era_lock(&mut locked, &EraConfig::new(budget, seed))
                .map_err(|e| e.to_string())?
                .key
        }
        other => {
            return Err(format!(
                "unknown scheme `{other}` (assure|assure-random|hra|era)"
            ))
        }
    };
    let report = LockingReport::build(scheme, &original, &locked, &key, &PairTable::fixed());
    eprintln!("{report}");
    let text = emit_verilog(&locked).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    if let Some(key_out) = args.flag("key-out") {
        fs::write(key_out, key_to_string(key.as_bits())).map_err(|e| e.to_string())?;
        eprintln!("wrote {key_out} ({} bits)", key.len());
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let original = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl verify <original.v> <locked.v> --key k.txt")?,
    )?;
    let locked = load_module(
        args.positional
            .get(2)
            .ok_or("usage: mlrl verify <original.v> <locked.v> --key k.txt")?,
    )?;
    let key_path = args.flag("key").ok_or("missing --key <file>")?;
    let key = key_from_string(&fs::read_to_string(key_path).map_err(|e| e.to_string())?)?;
    let cfg = EquivConfig {
        patterns: args.num("patterns", 64usize),
        ticks: 2,
        seed: 7,
    };
    match check_equiv(&original, &locked, &[], &key, &cfg).map_err(|e| e.to_string())? {
        EquivResult::Equivalent { patterns } => {
            println!("EQUIVALENT over {patterns} random patterns");
            Ok(())
        }
        EquivResult::Mismatch {
            pattern,
            output,
            left,
            right,
        } => Err(format!(
            "MISMATCH at pattern {pattern}: output `{output}` original={left:#x} locked={right:#x}"
        )),
    }
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let locked = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl attack <locked.v> [--key key.txt]")?,
    )?;
    let relock = RelockConfig {
        rounds: args.num("relocks", 60usize),
        budget_fraction: 0.75,
        seed: args.num("seed", 7u64),
    };
    // Build a scoring key: the real one if provided, else zeros (KPA then
    // meaningless and suppressed).
    let (score_key, have_key) = match args.flag("key") {
        Some(path) => {
            let bits = key_from_string(&fs::read_to_string(path).map_err(|e| e.to_string())?)?;
            let mut k = Key::new();
            for b in bits {
                k.push(b, KeyBitKind::Operation);
            }
            (k, true)
        }
        None => {
            let mut k = Key::new();
            for _ in 0..locked.key_width() {
                k.push(false, KeyBitKind::Operation);
            }
            (k, false)
        }
    };
    let report = freq_table_attack(&locked, &score_key, &relock)
        .ok_or("design exposes no key-controlled localities")?;
    println!("attacked bits: {}", report.attacked_bits);
    let predicted: Vec<bool> = {
        let mut bits = vec![false; locked.key_width() as usize];
        for (bit, v) in &report.predictions {
            if let Some(slot) = bits.get_mut(*bit as usize) {
                *slot = *v;
            }
        }
        bits
    };
    println!("predicted key: {}", key_to_string(&predicted));
    if have_key {
        println!("KPA: {:.2}% (50% = random guess)", report.kpa);
    }
    Ok(())
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    let module = load_module(
        args.positional
            .get(1)
            .ok_or("usage: mlrl synth <design.v> [-o netlist.v]")?,
    )?;
    let mut netlist = lower_module(&module).map_err(|e| e.to_string())?;
    let removed = netlist.sweep();
    let stats = NetlistStats::of(&netlist);
    eprintln!(
        "synthesized `{}`: {stats}({removed} dead gates swept)",
        netlist.name()
    );
    let text = emit_structural_verilog(&netlist).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, text).map_err(|e| e.to_string())?;
            println!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_gatelock(args: &Args) -> Result<(), String> {
    let module = load_module(args.positional.get(1).ok_or(
        "usage: mlrl gatelock <design.v> --scheme xor|mux --bits N [--seed N] [-o locked.v] [--key-out k.txt]",
    )?)?;
    let mut netlist = lower_module(&module).map_err(|e| e.to_string())?;
    netlist.sweep();
    let bits = args.num("bits", 32usize);
    let seed = args.num("seed", 7u64);
    let scheme = match args.flag("scheme").unwrap_or("xor") {
        "xor" => GateLockScheme::XorXnor,
        "mux" => GateLockScheme::Mux,
        other => return Err(format!("unknown gate scheme `{other}` (xor|mux)")),
    };
    let key = lock_netlist(&mut netlist, scheme, bits, seed).map_err(|e| e.to_string())?;
    eprintln!(
        "gate-locked `{}` with {} key bits ({} gates)",
        netlist.name(),
        key.len(),
        netlist.gates().len()
    );
    if let Some(path) = args.flag("key-out") {
        fs::write(path, key_to_string(key.bits())).map_err(|e| e.to_string())?;
        eprintln!("wrote key to {path}");
    }
    let text = emit_structural_verilog(&netlist).map_err(|e| e.to_string())?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, text).map_err(|e| e.to_string())?;
            println!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_sat_attack(args: &Args) -> Result<(), String> {
    let locked = load_module(args.positional.get(1).ok_or(
        "usage: mlrl sat-attack <locked.v> --key key.txt [--max-dips N] (key plays the oracle chip)",
    )?)?;
    let key_path = args
        .flag("key")
        .ok_or("missing --key <file> (the oracle's key)")?;
    let key = key_from_string(&fs::read_to_string(key_path).map_err(|e| e.to_string())?)?;
    let mut netlist = lower_module(&locked)
        .map_err(|e| e.to_string())?
        .to_scan_view();
    netlist.sweep();
    eprintln!(
        "attacking `{}`: {} gates, {} key bits (scan view)",
        netlist.name(),
        netlist.gates().len(),
        netlist.key_width()
    );
    let cfg = SatAttackConfig {
        max_dips: args.num("max-dips", 512usize),
        ..Default::default()
    };
    let (report, correct) =
        sat_attack_with_sim_oracle(&netlist, &key, &cfg).map_err(|e| e.to_string())?;
    println!("DIPs (oracle queries): {}", report.dips);
    println!("UNSAT proof:           {}", report.proved);
    println!("recovered key:         {}", key_to_string(&report.key));
    println!("functionally correct:  {correct}");
    Ok(())
}

/// Builds an engine honouring the shared `--cache-dir` / `--cache-cap`
/// flags (`--cache-cap` without a dir is meaningless and rejected).
fn engine_from_cache_flags(args: &Args) -> Result<Engine, String> {
    Engine::from_cache_flags(args.flag("cache-dir"), args.flag("cache-cap"))
}

/// Arms the telemetry sink when `--trace-out` or `--metrics-out` was
/// passed; returns whether it did. Telemetry is a pure side channel —
/// canonical output bytes are identical either way.
fn arm_telemetry(args: &Args) -> bool {
    let wanted = args.flag("trace-out").is_some() || args.flag("metrics-out").is_some();
    if wanted {
        mlrl::obs::enable();
    }
    wanted
}

/// Applies the trace-overhead controls once the sink is armed:
/// `--trace-sample N` keeps 1-in-N hot-class spans (phase and cell
/// spans always kept; aggregate stats stay exact), and a background
/// `/proc/self` sampler exports `proc.rss_bytes` / `proc.cpu_ms`
/// gauges so process memory shows up in metrics, baselines, and
/// `mlrl top`.
fn arm_trace_overhead_controls(args: &Args) {
    if let Some(n) = args.flag("trace-sample").and_then(|v| v.parse().ok()) {
        mlrl::obs::set_span_sample(n);
    }
    mlrl::obs::proc::start_sampler(Duration::from_millis(200));
}

/// Writes the telemetry artifacts the run asked for: a Chrome
/// trace-event JSON (`--trace-out`, Perfetto-loadable) and a metrics
/// rollup (`--metrics-out`). `metrics_json` overrides the local sink's
/// snapshot (the orchestrator passes its fleet-wide aggregate).
fn write_telemetry_artifacts(args: &Args, metrics_json: Option<&str>) -> Result<(), String> {
    if let Some(path) = args.flag("trace-out") {
        mlrl::obs::write_trace_json(std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.flag("metrics-out") {
        let json = match metrics_json {
            Some(json) => json.to_owned(),
            None => mlrl::obs::snapshot().to_json(),
        };
        fs::write(path, format!("{json}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or(
        "usage: mlrl campaign <spec.txt> [--threads N] [--opt-level o0|o1|o2] [--jsonl out.jsonl] [--cache-dir DIR] [--cache-cap BYTES] [--canonical] [--shard I/N] [--trace-out FILE] [--metrics-out FILE]",
    )?;
    if arm_telemetry(args) {
        arm_trace_overhead_controls(args);
    }
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spec = CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(threads) = args.flag("threads") {
        spec.threads = threads.parse().map_err(|e| format!("bad --threads: {e}"))?;
    }
    if let Some(level) = args.flag("opt-level") {
        spec.opt_level = OptLevel::parse(level).map_err(|e| format!("bad --opt-level: {e}"))?;
    }
    let shard = args.flag("shard").map(ShardSpec::parse).transpose()?;
    let engine = engine_from_cache_flags(args)?;
    eprintln!(
        "campaign `{}`: {} cells ({} benchmarks x {} levels x {} schemes x {} budgets x {} seeds x {} attacks, level-incompatible combos skipped){}",
        spec.name,
        spec.cells(),
        spec.benchmarks.len(),
        spec.levels.len(),
        spec.schemes.len(),
        spec.budgets.len(),
        spec.seeds.len(),
        spec.attacks.len(),
        match shard {
            Some(s) => format!("; running shard {s}"),
            None => String::new(),
        },
    );
    let report = engine.run_shard(&spec, shard);
    if args.has("canonical") {
        print!("{}", report.canonical_jsonl());
    } else {
        print!("{}", report.human_table());
        eprintln!("{}", report.summary());
    }
    if let Some(out) = args.flag("jsonl") {
        fs::write(out, report.jsonl()).map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
    }
    write_telemetry_artifacts(args, None)?;
    if report.failed_count() > 0 {
        return Err(format!("{} job(s) failed", report.failed_count()));
    }
    Ok(())
}

fn cmd_merge(args: &Args) -> Result<(), String> {
    let paths = &args.positional[1..];
    if paths.is_empty() {
        return Err("usage: mlrl merge <shard.jsonl>... [-o merged.jsonl]".to_owned());
    }
    let streams: Vec<String> = paths
        .iter()
        .map(|p| fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}")))
        .collect::<Result<_, _>>()?;
    let merged = merge_canonical_streams(&streams)?;
    match args.flag("o") {
        Some(out) => {
            fs::write(out, &merged).map_err(|e| e.to_string())?;
            eprintln!("wrote {out} ({} shard file(s) merged)", paths.len());
        }
        None => print!("{merged}"),
    }
    Ok(())
}

/// Writes one worker-protocol line to stdout, flushed immediately so the
/// supervisor (and the crash journal behind it) sees every completion
/// the instant it happens.
fn emit_protocol_line(line: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Internal worker mode spawned by `mlrl orchestrate`: runs exactly the
/// grid cells listed in `--cells`, streaming the line protocol of
/// `mlrl_orchestrate::protocol` on stdout.
///
/// Fault injection for crash-recovery tests: with `MLRL_FAULT_CELL=<i>`
/// in the environment, the worker aborts right before executing cell
/// `i`. When `MLRL_FAULT_FLAG=<path>` is also set, the abort is
/// one-shot — the flag file is created first, and a worker that finds
/// it existing runs normally (so the restarted/resumed worker gets
/// through). `MLRL_FAULT_TRACE=1` turns a telemetry worker hostile for
/// protocol-compat tests: after every completion it interleaves an
/// unknown verb, a truncated trace chunk, and a non-JSON trace payload
/// with the real stream — none of which may corrupt canonical output
/// or the supervisor's merged trace.
fn cmd_worker(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or(
        "usage: mlrl worker <spec.txt> --cells 0,2,5 [--threads N] [--opt-level o0|o1|o2] [--cache-dir DIR] [--cache-cap BYTES] [--heartbeat-ms MS] [--telemetry] [--trace-sample N]",
    )?;
    let telemetry = args.has("telemetry");
    if telemetry {
        mlrl::obs::enable();
        arm_trace_overhead_controls(args);
    }
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut spec = CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    spec.threads = args.num("threads", 1usize);
    if let Some(level) = args.flag("opt-level") {
        spec.opt_level = OptLevel::parse(level).map_err(|e| format!("bad --opt-level: {e}"))?;
    }
    let cells: Vec<usize> = args
        .flag("cells")
        .ok_or("missing --cells <i,j,...>")?
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|e| format!("bad cell index `{t}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let total = spec.cells();
    if let Some(bad) = cells.iter().find(|&&i| i >= total) {
        return Err(format!("cell index {bad} out of range ({total} cells)"));
    }

    // The epoch-bearing hello only flows under --telemetry: it hands
    // the supervisor this worker's wall clock at trace-epoch time so
    // streamed spans can be skew-corrected onto one fleet timeline.
    // Readers predating the field drop the whole hello otherwise.
    if telemetry {
        emit_protocol_line(&protocol::hello_line_with_epoch(
            cells.len(),
            mlrl::obs::epoch_unix_micros(),
        ));
    } else {
        emit_protocol_line(&protocol::hello_line(cells.len()));
    }

    // Heartbeats flow between cell events so the supervisor can tell a
    // wedged worker from one grinding through an expensive cell.
    let finished = Arc::new(AtomicBool::new(false));
    {
        let finished = Arc::clone(&finished);
        let interval = Duration::from_millis(args.num("heartbeat-ms", 1000u64).max(10));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if finished.load(Ordering::Relaxed) {
                break;
            }
            emit_protocol_line(&protocol::heartbeat_line());
        });
    }

    let fault_cell: Option<usize> = std::env::var("MLRL_FAULT_CELL")
        .ok()
        .and_then(|v| v.parse().ok());
    let fault_flag: Option<PathBuf> = std::env::var("MLRL_FAULT_FLAG").ok().map(PathBuf::from);
    let fault_trace = telemetry && std::env::var("MLRL_FAULT_TRACE").is_ok();

    let emitted = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let emitted_by_observer = Arc::clone(&emitted);
    let engine = engine_from_cache_flags(args)?.with_observer(Arc::new(move |event| {
        match event {
            JobEvent::Started { index } => {
                if Some(index) == fault_cell {
                    let fire = match &fault_flag {
                        Some(flag) if flag.exists() => false, // already fired once
                        Some(flag) => {
                            let _ = fs::write(flag, "fault");
                            true
                        }
                        None => true,
                    };
                    if fire {
                        // Simulated hard crash: no unwinding, no events.
                        std::process::abort();
                    }
                }
                emit_protocol_line(&protocol::started_line(index));
            }
            JobEvent::Finished { record } => {
                emit_protocol_line(&protocol::done_line(record.index, &record.canonical_line()));
                // Stream the cumulative rollup and the buffered trace
                // events after every completion so a crash loses at
                // most the in-flight cell's telemetry.
                if telemetry {
                    emit_protocol_line(&protocol::metrics_line(&mlrl::obs::snapshot().to_json()));
                    if fault_trace {
                        // Hostile-stream injection: an unknown verb, a
                        // truncated chunk, and a non-JSON payload, all
                        // interleaved with the real traffic.
                        emit_protocol_line("zorp 42");
                        emit_protocol_line("trace {\"lanes\":[\"main\"");
                        emit_protocol_line(&protocol::trace_line("not json at all"));
                    }
                    if let Some(chunk) = mlrl::obs::drain_trace_chunk() {
                        emit_protocol_line(&protocol::trace_line(&chunk));
                    }
                }
                emitted_by_observer
                    .lock()
                    .expect("emitted set poisoned")
                    .insert(record.index);
            }
        }
    }));

    let report = engine.run_cells(&spec, &cells);
    finished.store(true, Ordering::Relaxed);
    // Cells that panicked escape the observer; their Failed records only
    // materialize in the report, so stream the stragglers now.
    let emitted = emitted.lock().expect("emitted set poisoned");
    for record in &report.records {
        if !emitted.contains(&record.index) {
            emit_protocol_line(&protocol::done_line(record.index, &record.canonical_line()));
        }
    }
    // The payload-carrying bye only flows under --telemetry: readers
    // predating the payload would drop the whole line otherwise. The
    // final trace flush goes first so spans recorded after the last
    // cell (teardown, stragglers) still reach the merged timeline.
    if telemetry {
        if fault_trace {
            emit_protocol_line("trace {\"lanes\":[\"main\"],\"ev");
        }
        if let Some(chunk) = mlrl::obs::drain_trace_chunk() {
            emit_protocol_line(&protocol::trace_line(&chunk));
        }
        emit_protocol_line(&protocol::bye_line_with_metrics(
            report.records.len(),
            &mlrl::obs::snapshot().to_json(),
        ));
    } else {
        emit_protocol_line(&protocol::bye_line(report.records.len()));
    }
    Ok(())
}

fn cmd_orchestrate(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or(
        "usage: mlrl orchestrate <spec.txt> [--workers N] [--run-dir DIR | --resume DIR] \
         [--cache-dir DIR] [--cache-cap BYTES] [--worker-threads N] [--opt-level o0|o1|o2] \
         [--wedge-timeout SECS] [--max-restarts N] [--canonical] [--jsonl out.jsonl] [--quick] \
         [--trace-out FILE] [--metrics-out FILE] [--trace-sample N]",
    )?;
    let telemetry = arm_telemetry(args);
    if telemetry {
        // The supervisor samples its own /proc too, so the fleet
        // metrics include the orchestrator's footprint.
        arm_trace_overhead_controls(args);
    }
    let (run_dir, resume) = match args.flag("resume") {
        Some(dir) => (PathBuf::from(dir), true),
        None => (
            PathBuf::from(args.flag("run-dir").unwrap_or("mlrl-run")),
            false,
        ),
    };
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;

    let mut cfg = OrchestratorConfig::new(path, &run_dir);
    cfg.resume = resume;
    cfg.workers = args.num("workers", 2usize).max(1);
    cfg.worker_cmd = vec![exe.to_string_lossy().into_owned(), "worker".to_owned()];
    cfg.cache_dir = args.flag("cache-dir").map(PathBuf::from);
    cfg.cache_cap = args
        .flag("cache-cap")
        .map(parse_byte_size)
        .transpose()
        .map_err(|e| format!("bad --cache-cap: {e}"))?;
    cfg.worker_threads = args.num("worker-threads", 1usize).max(1);
    if let Some(level) = args.flag("opt-level") {
        // Validate here; workers receive the token verbatim.
        OptLevel::parse(level).map_err(|e| format!("bad --opt-level: {e}"))?;
        cfg.opt_level = Some(level.to_owned());
    }
    cfg.wedge_timeout = Duration::from_secs(args.num("wedge-timeout", 30u64).max(1));
    cfg.max_restarts = args.num("max-restarts", 3usize);
    cfg.telemetry = telemetry;
    cfg.trace_sample = args.flag("trace-sample").and_then(|v| v.parse().ok());
    if args.has("quick") {
        // Smoke-test timing: tight heartbeats and wedge detection so a
        // small campaign's supervision overhead stays negligible. Never
        // touches the science — output bytes are unaffected. An explicit
        // --wedge-timeout still wins.
        cfg.heartbeat_ms = 200;
        if args.flag("wedge-timeout").is_none() {
            cfg.wedge_timeout = Duration::from_secs(10);
        }
    }

    let outcome = orchestrate(&cfg)?;

    let merged_path = run_dir.join("merged.jsonl");
    fs::write(&merged_path, &outcome.canonical)
        .map_err(|e| format!("cannot write {}: {e}", merged_path.display()))?;
    if let Some(out) = args.flag("jsonl") {
        fs::write(out, &outcome.canonical).map_err(|e| e.to_string())?;
    }
    if args.has("canonical") {
        print!("{}", outcome.canonical);
    }
    write_telemetry_artifacts(args, outcome.metrics_json.as_deref())?;
    eprintln!(
        "orchestrated `{}`: {} cells ({} resumed, {} executed, {} failed) on {} worker process(es), {} restart(s), {} ms; merged -> {}",
        outcome.campaign,
        outcome.cells,
        outcome.resumed_cells,
        outcome.executed_cells,
        outcome.failed_cells,
        outcome.workers_spawned,
        outcome.restarts,
        outcome.wall.as_millis(),
        merged_path.display(),
    );
    if outcome.failed_cells > 0 {
        return Err(format!("{} cell(s) failed", outcome.failed_cells));
    }
    Ok(())
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let run_dir = args
        .positional
        .get(1)
        .ok_or("usage: mlrl top <run-dir> [--once] [--refresh-ms MS] [--stale-ms MS] [--top N]")?;
    let opts = mlrl::orchestrate::TopOptions {
        refresh_ms: args.num("refresh-ms", 1000u64),
        stale_ms: args.num("stale-ms", 5000u64),
        top_k: args.num("top", 3usize),
    };
    mlrl::orchestrate::run_top(std::path::Path::new(run_dir), &opts, args.has("once"))
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let run_dir = args
        .positional
        .get(1)
        .ok_or("usage: mlrl report <run-dir> [--trace FILE] [--top N] [--folded-out FILE]")?;
    let opts = mlrl::orchestrate::ReportOptions {
        top: args.num("top", 10usize),
        trace: args.flag("trace").map(PathBuf::from),
        folded_out: args.flag("folded-out").map(PathBuf::from),
    };
    let text = mlrl::orchestrate::render_report(std::path::Path::new(run_dir), &opts)?;
    print!("{text}");
    Ok(())
}

fn cmd_bench_diff(args: &Args) -> Result<(), String> {
    let usage = "usage: mlrl bench-diff <old.json> <new.json> [--threshold PCT]";
    let old_path = args.positional.get(1).ok_or(usage)?;
    let new_path = args.positional.get(2).ok_or(usage)?;
    let load = |path: &str| -> Result<mlrl::obs::baseline::BenchBaseline, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        mlrl::obs::baseline::BenchBaseline::parse(&text)
            .ok_or_else(|| format!("{path} is not a BENCH.json baseline"))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let diff = mlrl::obs::baseline::diff(&old, &new, args.num("threshold", 10.0f64));
    print!("{}", diff.render());
    if diff.has_regressions() {
        return Err(format!(
            "{} benchmark(s) regressed past the threshold",
            diff.regressions.len()
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("flatten") => cmd_flatten(&args),
        Some("stats") => cmd_stats(&args),
        Some("lock") => cmd_lock(&args),
        Some("verify") => cmd_verify(&args),
        Some("attack") => cmd_attack(&args),
        Some("synth") => cmd_synth(&args),
        Some("gatelock") => cmd_gatelock(&args),
        Some("sat-attack") => cmd_sat_attack(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("merge") => cmd_merge(&args),
        Some("orchestrate") => cmd_orchestrate(&args),
        Some("worker") => cmd_worker(&args),
        Some("top") => cmd_top(&args),
        Some("report") => cmd_report(&args),
        Some("bench-diff") => cmd_bench_diff(&args),
        _ => Err(
            "usage: mlrl <gen|flatten|stats|lock|verify|attack|synth|gatelock|sat-attack|campaign|merge|orchestrate|worker|top|report|bench-diff> ...\nsee `src/bin/mlrl.rs` docs"
                .to_owned(),
        ),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
