//! File-level workflow: parse a Verilog design from text, lock it, write
//! the locked Verilog plus the key, re-read both, and prove equivalence —
//! the library equivalent of what the `mlrl` CLI does.
//!
//! Run with: `cargo run --release --example verilog_io`

use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::pairs::PairTable;
use mlrl::locking::report::LockingReport;
use mlrl::rtl::emit::emit_verilog;
use mlrl::rtl::equiv::{check_equiv, EquivConfig};
use mlrl::rtl::parser::parse_verilog;
use mlrl::rtl::stats::DesignStats;

const USER_DESIGN: &str = "
// A small mixed datapath a user might hand us.
module mixer(a, b, c, y, flag);
  input [15:0] a, b, c;
  output [15:0] y;
  output flag;
  wire [15:0] prod, sum, blend, masked;
  assign prod = a * b;
  assign sum = prod + c;
  assign blend = sum ^ (a & 16'hff00);
  assign masked = blend % 251;
  assign flag = masked > b;
  assign y = masked;
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse.
    let original = parse_verilog(USER_DESIGN)?;
    println!("parsed design:\n{}\n", DesignStats::of(&original));

    // Lock with ERA (full balance).
    let mut locked = original.clone();
    let ops = mlrl::rtl::visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(ops, 42))?;
    let report = LockingReport::build("ERA", &original, &locked, &outcome.key, &PairTable::fixed());
    println!("{report}");

    // Round trip through files.
    let dir = std::env::temp_dir().join(format!("mlrl-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let v_path = dir.join("mixer_locked.v");
    let k_path = dir.join("mixer.key");
    std::fs::write(&v_path, emit_verilog(&locked)?)?;
    let key_text: String = outcome
        .key
        .as_bits()
        .iter()
        .map(|b| if *b { '1' } else { '0' })
        .collect();
    std::fs::write(&k_path, &key_text)?;
    println!(
        "wrote {} and {} ({} bits)",
        v_path.display(),
        k_path.display(),
        key_text.len()
    );

    // Read back and verify equivalence under the stored key.
    let reloaded = parse_verilog(&std::fs::read_to_string(&v_path)?)?;
    let key: Vec<bool> = std::fs::read_to_string(&k_path)?
        .trim()
        .chars()
        .map(|c| c == '1')
        .collect();
    let result = check_equiv(&original, &reloaded, &[], &key, &EquivConfig::default())?;
    println!("equivalence under stored key: {result:?}");
    assert!(result.is_equivalent());

    // And show a wrong key failing.
    let mut wrong = key.clone();
    wrong[0] = !wrong[0];
    let result = check_equiv(&original, &reloaded, &[], &wrong, &EquivConfig::default())?;
    println!("equivalence under flipped bit: {result:?}");
    assert!(!result.is_equivalent());

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
