//! Metric-guided locking design (§4.4): watch `M_g_sec` and `M_r_sec`
//! evolve as ERA, HRA and Greedy traverse the search space of the paper's
//! working example (`|ODT[(+,-)]| = 25`, `|ODT[(<<,>>)]| = 10`) — the
//! narrative of Fig. 5 as a terminal plot.
//!
//! Run with: `cargo run --release --example metric_guided_design`

use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::locking::odt::Odt;
use mlrl::locking::pairs::PairTable;
use mlrl::rtl::bench_designs::DesignSpec;
use mlrl::rtl::op::BinaryOp;

fn spec() -> DesignSpec {
    DesignSpec {
        name: "FIG5",
        op_mix: vec![(BinaryOp::Add, 25), (BinaryOp::Shl, 10)],
        control: false,
        description: "working example of §4.4",
    }
}

fn ascii_plot(name: &str, trace: &[(usize, f64)], width: usize) {
    println!("\n{name}: M_g_sec over key bits");
    let max_bits = trace.last().map(|(n, _)| *n).unwrap_or(1).max(1);
    for row in (0..=4).rev() {
        let level = row as f64 * 25.0;
        let mut line = String::new();
        for col in 0..width {
            let bits = col * max_bits / width.max(1);
            let m = trace
                .iter()
                .take_while(|(n, _)| *n <= bits.max(1))
                .last()
                .map(|(_, m)| *m)
                .unwrap_or(0.0);
            line.push(if m >= level { '#' } else { ' ' });
        }
        println!("{level:>5.0} |{line}");
    }
    println!("      +{}", "-".repeat(width));
    println!(
        "       0{:>width$}",
        format!("{max_bits} bits"),
        width = width - 1
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec();
    let module = mlrl::rtl::bench_designs::generate(&spec, 1);
    let odt = Odt::load(&module, PairTable::fixed());
    println!(
        "initial ODT: |(+,-)| = {}, |(<<,>>)| = {}",
        odt.get(BinaryOp::Add),
        odt.get(BinaryOp::Shl)
    );
    println!(
        "total imbalance = {} => minimum {} balancing bits",
        odt.total_imbalance(),
        odt.total_imbalance()
    );

    // ERA: jumps along the edges, may exceed the budget.
    let mut m = mlrl::rtl::bench_designs::generate(&spec, 1);
    let era = era_lock(&mut m, &EraConfig::new(35, 5))?;
    ascii_plot(
        "ERA",
        &era.trace
            .iter()
            .map(|(n, g, _)| (*n, *g))
            .collect::<Vec<_>>(),
        60,
    );

    // Greedy: steepest path, fewest bits to 100, but reversible.
    let mut m = mlrl::rtl::bench_designs::generate(&spec, 1);
    let greedy = hra_lock(&mut m, &HraConfig::greedy(160, 5))?;
    ascii_plot(
        "Greedy",
        &greedy
            .trace
            .iter()
            .map(|(n, g, _)| (*n, *g))
            .collect::<Vec<_>>(),
        60,
    );

    // HRA: random detours thwart reversibility at extra key-bit cost.
    let mut m = mlrl::rtl::bench_designs::generate(&spec, 1);
    let hra = hra_lock(&mut m, &HraConfig::new(160, 5))?;
    ascii_plot(
        "HRA",
        &hra.trace
            .iter()
            .map(|(n, g, _)| (*n, *g))
            .collect::<Vec<_>>(),
        60,
    );

    let to_100 = |trace: &[(usize, f64, f64)]| {
        trace
            .iter()
            .find(|(_, g, _)| *g >= 100.0 - 1e-9)
            .map(|(n, _, _)| n.to_string())
            .unwrap_or_else(|| "not reached".into())
    };
    println!("\nkey bits to M_g_sec = 100:");
    println!("  ERA    {}", to_100(&era.trace));
    println!("  Greedy {}", to_100(&greedy.trace));
    println!("  HRA    {}", to_100(&hra.trace));
    println!("\npaper (Fig. 5b): greedy is most bit-efficient but reversible; HRA");
    println!("pays extra bits for an unpredictable trajectory; ERA forces each");
    println!("selected pair to zero immediately.");
    Ok(())
}
