//! The §5 open question, demonstrated: the oracle-guided SAT attack breaks
//! learning-resilient locking. ERA holds SnapShot at a coin flip, yet once
//! the attacker has a working chip (an oracle) the SAT attack recovers a
//! correct key in a handful of distinguishing input patterns.
//!
//! Run with: `cargo run --release --example sat_attack_demo`

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::netlist::equiv::check_netlists;
use mlrl::netlist::lower::lower_module;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width};
use mlrl::rtl::visit;
use mlrl::sat::attack::{sat_attack, SatAttackConfig, SimOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. ERA-lock a small design (8-bit signals keep the CNF small).
    let spec = benchmark_by_name("SIM_SPI").expect("SIM_SPI is a paper benchmark");
    let mut locked = generate_with_width(&spec, 42, 8);
    let total_ops = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total_ops * 3 / 4, 7))?;
    let key: Vec<bool> = (0..locked.key_width())
        .map(|i| outcome.key.bit(i).unwrap_or(false))
        .collect();
    println!("SIM_SPI @8 bit, ERA-locked with {} key bits", key.len());

    // 2. The oracle-less ML attack is held at the coin-flip floor.
    let snap_cfg = AttackConfig {
        relock: RelockConfig {
            rounds: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Some(report) = snapshot_attack(&locked, &outcome.key, &snap_cfg) {
        println!(
            "SnapShot-RTL (oracle-less): KPA = {:.1}% (~50% = chance)",
            report.kpa
        );
    }

    // 3. Lower to gates — the attacker's netlist — and switch threat models:
    //    now the attacker owns a working chip (the oracle).
    //    (Scan view: oracle-guided attacks assume scan-chain access, which
    //    exposes flip-flop state as pseudo-I/O and reduces the circuit to
    //    its combinational core.)
    let mut netlist = lower_module(&locked)?.to_scan_view();
    netlist.sweep();
    println!(
        "lowered: {} gates, {} key bits",
        netlist.gates().len(),
        netlist.key_width()
    );
    let mut oracle = SimOracle::new(&netlist, &key)?;
    let report = sat_attack(&netlist, &mut oracle, &SatAttackConfig::default())?;
    println!(
        "SAT attack: {} DIPs (oracle queries), UNSAT proof = {}",
        report.dips, report.proved
    );

    // 4. The recovered key is functionally correct — the design is unlocked.
    let check = check_netlists(&netlist, &netlist, &key, &report.key, 300, 5)?;
    println!(
        "recovered key unlocks the design: {} ({}/{} vectors agree)",
        check.is_equivalent(),
        check.samples - check.mismatches,
        check.samples
    );
    assert!(report.proved && check.is_equivalent());
    println!("\nlearning resilience and SAT resistance are orthogonal objectives —");
    println!("exactly why the paper defers SAT resistance to Karfa et al. [3].");
    Ok(())
}
