//! Head-to-head: SnapShot-RTL against ASSURE, HRA and ERA on one
//! benchmark — a single column of Fig. 6a, with the full attack pipeline
//! visible (relock counts, training-set size, auto-ml leaderboard winner).
//!
//! Run with: `cargo run --release --example attack_demo [benchmark]`

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::assure::{lock_operations, AssureConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::hra::{hra_lock, HraConfig};
use mlrl::locking::key::Key;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
use mlrl::rtl::{visit, Module};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SHA256".to_owned());
    let spec = benchmark_by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}` — see Fig. 6a for names"));
    println!("benchmark {} — {}", spec.name, spec.description);
    println!("operation mix: {:?}", spec.op_mix);

    type Locker = Box<dyn Fn(&mut Module, usize) -> Key>;
    let lockers: Vec<(&str, Locker)> = vec![
        (
            "ASSURE",
            Box::new(|m: &mut Module, budget| {
                lock_operations(m, &AssureConfig::serial(budget, 11)).expect("lockable")
            }),
        ),
        (
            "HRA",
            Box::new(|m: &mut Module, budget| {
                hra_lock(m, &HraConfig::new(budget, 11))
                    .expect("lockable")
                    .key
            }),
        ),
        (
            "ERA",
            Box::new(|m: &mut Module, budget| {
                era_lock(m, &EraConfig::new(budget, 11))
                    .expect("lockable")
                    .key
            }),
        ),
    ];

    println!();
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>8}  winner",
        "scheme", "bits", "train", "attacked", "KPA"
    );
    for (label, lock) in lockers {
        let mut module = generate(&spec, 2022);
        let total = visit::binary_ops(&module).len();
        let key = lock(&mut module, total * 3 / 4);
        let cfg = AttackConfig {
            relock: RelockConfig {
                rounds: 50,
                budget_fraction: 0.75,
                seed: 77,
            },
            ..Default::default()
        };
        let report = snapshot_attack(&module, &key, &cfg).expect("localities exist");
        println!(
            "{label:<8} {:>8} {:>10} {:>12} {:>7.1}%  {}",
            key.len(),
            report.training_samples,
            report.attacked_bits,
            report.kpa,
            report.model_name
        );
    }
    println!();
    println!("expected shape (paper Fig. 6): ASSURE and HRA leak well above the");
    println!("50% random-guess line; ERA pins the attack to ~50%.");
    Ok(())
}
