//! Gate-level flow: lock at RTL, "synthesize" (bit-blast) to a gate-level
//! netlist, verify cross-level equivalence, measure gate-level cost, and
//! show what the attacker of the paper's threat model actually receives.
//!
//! Run with: `cargo run --release --example gate_level_flow`

use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::netlist::emit::emit_structural_verilog;
use mlrl::netlist::equiv::check_module_vs_netlist;
use mlrl::netlist::lower::lower_module;
use mlrl::netlist::stats::NetlistStats;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate_with_width};
use mlrl::rtl::visit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The designer's view: RTL, locked with ERA.
    let spec = benchmark_by_name("SASC").expect("SASC is a paper benchmark");
    let original = generate_with_width(&spec, 42, 16);
    let total_ops = visit::binary_ops(&original).len();
    let mut locked = original.clone();
    let outcome = era_lock(&mut locked, &EraConfig::new(total_ops * 3 / 4, 7))?;
    let key: Vec<bool> = (0..locked.key_width())
        .map(|i| outcome.key.bit(i).unwrap_or(false))
        .collect();
    println!(
        "SASC @16 bit: {total_ops} ops, ERA key = {} bits",
        key.len()
    );

    // 2. "Synthesis": bit-blast both views to gates.
    let base_netlist = lower_module(&original)?;
    let mut locked_netlist = lower_module(&locked)?;
    locked_netlist.sweep();
    let base_stats = NetlistStats::of(&base_netlist);
    let locked_stats = NetlistStats::of(&locked_netlist);
    println!("\nunlocked netlist: {base_stats}");
    println!("locked netlist:   {locked_stats}");
    let overhead = locked_stats.overhead_vs(&base_stats);
    println!(
        "locking overhead: +{} gates ({:.1} per key bit), +{} depth, area x{:.2}",
        overhead.extra_gates,
        overhead.gates_per_key_bit(),
        overhead.extra_depth,
        overhead.area_factor
    );

    // 3. Cross-level equivalence: locked RTL and locked gates agree under
    //    the correct key on random stimulus (2 clock ticks per vector so
    //    the control process is exercised too).
    let check = check_module_vs_netlist(&locked, &locked_netlist, &key, 200, 2, 11)?;
    println!(
        "\ncross-level check (correct key): {}/{} vectors agree",
        check.samples - check.mismatches,
        check.samples
    );
    assert!(check.is_equivalent());

    // 4. A wrong key corrupts the gate-level outputs too (the all-flipped
    //    key picks every dummy operation).
    let wrong: Vec<bool> = key.iter().map(|b| !b).collect();
    let corrupted = check_module_vs_netlist(&original, &locked_netlist, &wrong, 200, 2, 13)?;
    println!(
        "cross-level check (wrong key):   {}/{} vectors corrupted",
        corrupted.mismatches, corrupted.samples
    );
    assert!(!corrupted.is_equivalent());

    // 5. What the foundry/attacker receives: structural Verilog.
    let text = emit_structural_verilog(&locked_netlist)?;
    println!("\nstructural Verilog preview (what the attacker reverse engineers):");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());
    Ok(())
}
