//! Hierarchical flow: parse a multi-module design, flatten it, lock the
//! flat netlist with ERA, and attack it — the way locking meets real RTL
//! that arrives as a module hierarchy.
//!
//! Run with: `cargo run --release --example hierarchy`

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::locking::pairs::PairTable;
use mlrl::locking::report::LockingReport;
use mlrl::rtl::equiv::{check_equiv, EquivConfig};
use mlrl::rtl::parser::parse_design;
use mlrl::rtl::stats::DesignStats;
use mlrl::rtl::visit;

const HIER_DESIGN: &str = "
// A two-stage MAC pipeline built from reusable blocks.
module mac(a, b, acc, y);
  input [15:0] a, b, acc;
  output [15:0] y;
  wire [15:0] prod;
  assign prod = a * b;
  assign y = prod + acc;
endmodule

module scale(x, k, y);
  input [15:0] x, k;
  output [15:0] y;
  wire [15:0] shifted;
  assign shifted = x << 2;
  assign y = shifted ^ k;
endmodule

module pipeline(in0, in1, in2, coeff, out);
  input [15:0] in0, in1, in2, coeff;
  output [15:0] out;
  wire [15:0] stage1, stage2;
  mac m0 (.a(in0), .b(in1), .acc(in2), .y(stage1));
  scale s0 (.x(stage1), .k(coeff), .y(stage2));
  mac m1 (.a(stage2), .b(in0), .acc(in1), .y(out));
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = parse_design(HIER_DESIGN)?;
    println!(
        "modules: {:?}, tops: {:?}",
        design.module_names(),
        design.tops()
    );

    // Flatten the hierarchy: instances inline with prefixed signals.
    let flat = design.flatten("pipeline")?;
    println!("\nflattened:\n{}", DesignStats::of(&flat));
    println!(
        "ops after flattening: {} (mac ×2 contributes 2 muls + 2 adds)",
        visit::binary_ops(&flat).len()
    );

    // Lock the flat netlist.
    let mut locked = flat.clone();
    let total = visit::binary_ops(&locked).len();
    let outcome = era_lock(&mut locked, &EraConfig::new(total, 11))?;
    let report = LockingReport::build("ERA", &flat, &locked, &outcome.key, &PairTable::fixed());
    println!("\n{report}");

    // Prove the locked flat design still matches the hierarchy's function.
    let result = check_equiv(
        &flat,
        &locked,
        &[],
        outcome.key.as_bits(),
        &EquivConfig::default(),
    )?;
    println!("equivalence: {result:?}");
    assert!(result.is_equivalent());

    // Attack it.
    let cfg = AttackConfig {
        relock: RelockConfig {
            rounds: 40,
            budget_fraction: 0.75,
            seed: 13,
        },
        ..Default::default()
    };
    let attack = snapshot_attack(&locked, &outcome.key, &cfg).expect("localities exist");
    println!(
        "\nSnapShot-RTL on the ERA-locked flat pipeline: KPA = {:.1}% over {} bits",
        attack.kpa, attack.attacked_bits
    );
    Ok(())
}
