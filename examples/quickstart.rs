//! Quickstart: generate a design, lock it with ERA, verify functional
//! correctness under the right/wrong key, and run the SnapShot-RTL attack.
//!
//! Run with: `cargo run --release --example quickstart`

use mlrl::attack::relock::RelockConfig;
use mlrl::attack::snapshot::{snapshot_attack, AttackConfig};
use mlrl::locking::era::{era_lock, EraConfig};
use mlrl::rtl::ast::PortDir;
use mlrl::rtl::bench_designs::{benchmark_by_name, generate};
use mlrl::rtl::sim::Simulator;
use mlrl::rtl::{emit, visit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the FIR benchmark (32 multiplies, 31 adds).
    let spec = benchmark_by_name("FIR").expect("FIR is a paper benchmark");
    let original = generate(&spec, 42);
    let total_ops = visit::binary_ops(&original).len();
    println!("FIR: {total_ops} lockable operations");

    // 2. Lock with ERA at a 75% key budget.
    let mut locked = original.clone();
    let outcome = era_lock(&mut locked, &EraConfig::new(total_ops * 3 / 4, 7))?;
    println!(
        "ERA used {} key bits (budget exceeded: {})",
        outcome.bits_used, outcome.exceeded_budget
    );

    // 3. The locked design is plain Verilog.
    let verilog = emit::emit_verilog(&locked)?;
    println!("locked RTL preview:");
    for line in verilog.lines().take(6) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", verilog.lines().count());

    // 4. Correct key => functionally equivalent; wrong key => corrupted.
    let inputs: Vec<String> = original
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input)
        .map(|p| p.name.clone())
        .collect();
    let run = |module: &mlrl::rtl::Module, key: &[bool], salt: u64| -> u64 {
        let mut sim = Simulator::new(module).expect("simulatable");
        for (i, name) in inputs.iter().enumerate() {
            sim.set_input(name, (i as u64 + 1) * 31 + salt)
                .expect("input exists");
        }
        sim.set_key(key).expect("key fits");
        sim.settle().expect("settles");
        sim.outputs_digest().expect("outputs digest")
    };
    let golden = run(&original, &[], 3);
    assert_eq!(run(&locked, outcome.key.as_bits(), 3), golden);
    println!("correct key: outputs match the original (digest {golden:#018x})");
    let mut rng = StdRng::seed_from_u64(1);
    let wrong = outcome.key.random_wrong_key(&mut rng);
    let corrupted = run(&locked, &wrong, 3);
    println!(
        "wrong key:   digest {corrupted:#018x} (corrupted: {})",
        corrupted != golden
    );

    // 5. Attack it with SnapShot-RTL.
    let cfg = AttackConfig {
        relock: RelockConfig {
            rounds: 40,
            budget_fraction: 0.75,
            seed: 9,
        },
        ..Default::default()
    };
    let report = snapshot_attack(&locked, &outcome.key, &cfg).expect("localities exist");
    println!(
        "SnapShot-RTL vs ERA: KPA = {:.1}% over {} bits (50% = random guess; model: {})",
        report.kpa, report.attacked_bits, report.model_name
    );
    Ok(())
}
