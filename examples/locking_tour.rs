//! A tour of the three ASSURE obfuscation techniques (§2.3, Fig. 3) on a
//! small hand-written controller: operation, branch, and constant locking,
//! plus relocking (the nested multiplexer tree of Fig. 3b).
//!
//! Run with: `cargo run --release --example locking_tour`

use mlrl::locking::assure::{lock_branches, lock_constants, lock_operations, AssureConfig};
use mlrl::rtl::emit::emit_verilog;
use mlrl::rtl::parser::parse_verilog;
use mlrl::rtl::sim::Simulator;

const DESIGN: &str = "
module thermo(clk, temp, limit, heat, duty);
  input clk;
  input [7:0] temp;
  input [7:0] limit;
  output heat;
  output [7:0] duty;
  reg on;
  wire [7:0] margin;
  assign margin = limit - temp;
  assign duty = margin * 4'd3;
  assign heat = on;
  always @(posedge clk) begin
    if (temp > limit) begin
      on <= 0;
    end else begin
      on <= 1;
    end
  end
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = parse_verilog(DESIGN)?;
    println!("original design:\n{}", emit_verilog(&original)?);

    // --- Operation obfuscation (Fig. 3a) --------------------------------
    let mut locked = original.clone();
    let op_key = lock_operations(&mut locked, &AssureConfig::serial(2, 1))?;
    println!("after operation locking ({} bits):", op_key.len());
    println!("{}", emit_verilog(&locked)?);

    // --- Relocking: nested multiplexers (Fig. 3b) -----------------------
    let relock_key = lock_operations(&mut locked, &AssureConfig::random(2, 2))?;
    println!(
        "after relocking ({} more bits, nested ternaries):",
        relock_key.len()
    );
    for line in emit_verilog(&locked)?.lines().filter(|l| l.contains('?')) {
        println!("  {}", line.trim());
    }

    // --- Branch obfuscation ---------------------------------------------
    let branch_key = lock_branches(&mut locked, 3)?;
    println!(
        "\nafter branch locking ({} bit): the paper's",
        branch_key.len()
    );
    println!("`a > b` -> `(a <= b) ^ K` transformation:");
    for line in emit_verilog(&locked)?
        .lines()
        .filter(|l| l.contains("if ("))
    {
        println!("  {}", line.trim());
    }

    // --- Constant obfuscation -------------------------------------------
    let const_key = lock_constants(&mut locked, 2)?;
    println!(
        "\nafter constant locking ({} bits): 4'd3 became a key slice:",
        const_key.len()
    );
    for line in emit_verilog(&locked)?
        .lines()
        .filter(|l| l.contains("duty ="))
    {
        println!("  {}", line.trim());
    }

    // --- Functional check with the complete key --------------------------
    let full_key: Vec<bool> = op_key
        .as_bits()
        .iter()
        .chain(relock_key.as_bits())
        .chain(branch_key.as_bits())
        .chain(const_key.as_bits())
        .copied()
        .collect();
    for (temp, limit) in [(20u64, 25u64), (30, 25), (25, 25)] {
        let mut s0 = Simulator::new(&original)?;
        s0.set_input("temp", temp)?;
        s0.set_input("limit", limit)?;
        s0.tick()?;
        let mut s1 = Simulator::new(&locked)?;
        s1.set_input("temp", temp)?;
        s1.set_input("limit", limit)?;
        s1.set_key(&full_key)?;
        s1.tick()?;
        assert_eq!(s0.get("heat")?, s1.get("heat")?);
        assert_eq!(s0.get("duty")?, s1.get("duty")?);
        println!(
            "temp={temp:>2} limit={limit:>2}: heat={} duty={} (locked == original)",
            s1.get("heat")?,
            s1.get("duty")?
        );
    }
    println!("\ntotal key: {} bits", full_key.len());
    Ok(())
}
