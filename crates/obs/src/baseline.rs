//! Bench baselines: the `BENCH.json` format and the regression diff.
//!
//! A [`BenchBaseline`] is what every bench bin emits under
//! `--bench-json`: per-benchmark timing summaries plus an optional
//! [`Metrics`] snapshot (so histogram percentiles of the instrumented
//! hot paths ride along with the wall-clock numbers). [`diff`] compares
//! two baselines under a noise threshold and classifies every shared
//! benchmark as regressed, improved, or unchanged — the engine behind
//! `mlrl bench-diff` and the advisory CI gate.
//!
//! The serialized form is a single JSON line, parsed back with
//! [`crate::json`]; a baseline without a `"metrics"` section (as the
//! vendored criterion shim writes) parses fine.

use std::collections::BTreeMap;

use crate::{json, json_string, Metrics};

/// Timing summary for one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BenchTiming {
    /// Median sample.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of timed samples behind the summary.
    pub samples: u64,
}

impl BenchTiming {
    /// Summarizes raw per-sample durations (need not be sorted).
    pub fn from_samples_ns(samples_ns: &[u64]) -> Option<BenchTiming> {
        if samples_ns.is_empty() {
            return None;
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        Some(BenchTiming {
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            samples: sorted.len() as u64,
        })
    }
}

/// A machine-readable bench run: timings plus an optional metrics
/// rollup. See the module docs for the role it plays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchBaseline {
    /// Per-benchmark timing summaries, keyed by `group/label`.
    pub benches: BTreeMap<String, BenchTiming>,
    /// Telemetry rollup captured during the run; empty when the
    /// producer records no metrics.
    pub metrics: Metrics,
}

impl BenchBaseline {
    /// Records one benchmark's samples under `name` (silently skipped
    /// when `samples_ns` is empty).
    pub fn record(&mut self, name: &str, samples_ns: &[u64]) {
        if let Some(t) = BenchTiming::from_samples_ns(samples_ns) {
            self.benches.insert(name.to_owned(), t);
        }
    }

    /// Serialize as a single JSON line. The `"metrics"` section is
    /// omitted when empty so shim-produced baselines stay minimal.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"benches\":{");
        for (i, (name, t)) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
                json_string(name),
                t.median_ns,
                t.min_ns,
                t.max_ns,
                t.samples
            ));
        }
        out.push('}');
        if !self.metrics.is_empty() {
            out.push_str(",\"metrics\":");
            out.push_str(&self.metrics.to_json());
        }
        out.push('}');
        out
    }

    /// Parse a payload produced by [`BenchBaseline::to_json`]. `None`
    /// on malformed input; a missing `"metrics"` section yields empty
    /// metrics.
    pub fn parse(text: &str) -> Option<BenchBaseline> {
        let value = json::parse(text.trim())?;
        let obj = value.as_object()?;
        let mut baseline = BenchBaseline::default();
        for (name, v) in obj.get("benches")?.as_object()? {
            let t = v.as_object()?;
            let field = |key: &str| t.get(key)?.as_f64().map(|n| n as u64);
            baseline.benches.insert(
                name.clone(),
                BenchTiming {
                    median_ns: field("median_ns")?,
                    min_ns: field("min_ns")?,
                    max_ns: field("max_ns")?,
                    samples: field("samples")?,
                },
            );
        }
        if let Some(metrics) = obj.get("metrics") {
            // Re-serialize the subtree for Metrics::parse; the rollup
            // grammar is a subset of what `json` accepts.
            baseline.metrics = Metrics::parse(&render(metrics))?;
        }
        Some(baseline)
    }
}

/// Minimal JSON renderer for re-serializing a parsed subtree (only the
/// shapes [`Metrics::parse`] consumes).
fn render(value: &json::Value) -> String {
    match value {
        json::Value::Null => "null".to_owned(),
        json::Value::Bool(b) => b.to_string(),
        json::Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        json::Value::String(s) => json_string(s),
        json::Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        json::Value::Object(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Human-scale byte formatting for the memory advisory line.
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1 << 10 {
        format!("{:.1}kB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// One benchmark whose median moved past the noise threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Benchmark name (`group/label`).
    pub name: String,
    /// Old median, nanoseconds.
    pub old_ns: u64,
    /// New median, nanoseconds.
    pub new_ns: u64,
    /// Signed percent change of the median (positive = slower).
    pub pct: f64,
}

/// The outcome of comparing two baselines; see [`diff`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineDiff {
    /// Benchmarks slower by more than the threshold, worst first.
    pub regressions: Vec<DiffEntry>,
    /// Benchmarks faster by more than the threshold, best first.
    pub improvements: Vec<DiffEntry>,
    /// Shared benchmarks within the threshold either way.
    pub unchanged: usize,
    /// Present only in the new baseline.
    pub added: Vec<String>,
    /// Present only in the old baseline.
    pub removed: Vec<String>,
    /// The noise threshold the classification used, percent.
    pub threshold_pct: f64,
    /// Peak RSS comparison `(old_bytes, new_bytes)` when both baselines
    /// carry the `/proc` sampler's `proc.rss_bytes.peak` gauge.
    /// Advisory only — memory never trips [`Self::has_regressions`].
    pub memory: Option<(u64, u64)>,
}

impl BaselineDiff {
    /// True when at least one benchmark regressed past the threshold —
    /// the condition under which `mlrl bench-diff` exits nonzero.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Render a human-readable report (deterministic for fixed inputs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-diff: threshold ±{:.1}%\n",
            self.threshold_pct
        ));
        for e in &self.regressions {
            out.push_str(&format!(
                "  REGRESSED  {}: {} ns -> {} ns (+{:.1}%)\n",
                e.name, e.old_ns, e.new_ns, e.pct
            ));
        }
        for e in &self.improvements {
            out.push_str(&format!(
                "  improved   {}: {} ns -> {} ns ({:.1}%)\n",
                e.name, e.old_ns, e.new_ns, e.pct
            ));
        }
        for name in &self.added {
            out.push_str(&format!("  added      {name}\n"));
        }
        for name in &self.removed {
            out.push_str(&format!("  removed    {name}\n"));
        }
        if let Some((o, n)) = self.memory {
            let pct = if o == 0 {
                0.0
            } else {
                (n as f64 - o as f64) / o as f64 * 100.0
            };
            out.push_str(&format!(
                "  memory     peak rss {} -> {} ({pct:+.1}%, advisory — never gates)\n",
                fmt_bytes(o),
                fmt_bytes(n),
            ));
        }
        out.push_str(&format!(
            "  {} regressed, {} improved, {} unchanged\n",
            self.regressions.len(),
            self.improvements.len(),
            self.unchanged
        ));
        out
    }
}

/// Compare two baselines. A shared benchmark counts as regressed (or
/// improved) only when its median moved *strictly* more than
/// `threshold_pct` percent — at the threshold exactly it is noise. A
/// zero old median with a nonzero new one is treated as a 100% move so
/// a dead benchmark coming alive cannot divide by zero.
pub fn diff(old: &BenchBaseline, new: &BenchBaseline, threshold_pct: f64) -> BaselineDiff {
    let threshold_pct = threshold_pct.max(0.0);
    let mut out = BaselineDiff {
        threshold_pct,
        ..BaselineDiff::default()
    };
    for (name, old_t) in &old.benches {
        let Some(new_t) = new.benches.get(name) else {
            out.removed.push(name.clone());
            continue;
        };
        let (o, n) = (old_t.median_ns, new_t.median_ns);
        let pct = if o == 0 && n == 0 {
            0.0
        } else if o == 0 {
            100.0
        } else {
            (n as f64 - o as f64) / o as f64 * 100.0
        };
        let entry = DiffEntry {
            name: name.clone(),
            old_ns: o,
            new_ns: n,
            pct,
        };
        if pct > threshold_pct {
            out.regressions.push(entry);
        } else if pct < -threshold_pct {
            out.improvements.push(entry);
        } else {
            out.unchanged += 1;
        }
    }
    for name in new.benches.keys() {
        if !old.benches.contains_key(name) {
            out.added.push(name.clone());
        }
    }
    // Peak-RSS comparison when both runs sampled /proc: advisory
    // context for the report, never part of the gate.
    let peak = |b: &BenchBaseline| {
        b.metrics
            .gauges
            .get("proc.rss_bytes.peak")
            .map(|v| *v as u64)
    };
    if let (Some(o), Some(n)) = (peak(old), peak(new)) {
        out.memory = Some((o, n));
    }
    // Worst regression first; best improvement first. Ties break by
    // name so the report is deterministic.
    out.regressions
        .sort_by(|a, b| b.pct.total_cmp(&a.pct).then_with(|| a.name.cmp(&b.name)));
    out.improvements
        .sort_by(|a, b| a.pct.total_cmp(&b.pct).then_with(|| a.name.cmp(&b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(median: u64) -> BenchTiming {
        BenchTiming {
            median_ns: median,
            min_ns: median.saturating_sub(1),
            max_ns: median + 1,
            samples: 5,
        }
    }

    #[test]
    fn baseline_round_trips_with_and_without_metrics() {
        let mut b = BenchBaseline::default();
        b.record("sim/64-lane", &[30, 10, 20]);
        assert_eq!(
            b.benches["sim/64-lane"],
            BenchTiming {
                median_ns: 20,
                min_ns: 10,
                max_ns: 30,
                samples: 3
            }
        );
        let parsed = BenchBaseline::parse(&b.to_json()).expect("parses");
        assert_eq!(parsed, b);

        b.metrics.counters.insert("cache.hits".into(), 7);
        b.metrics.gauges.insert("u".into(), 0.5);
        b.metrics
            .hists
            .entry("sat.dip".into())
            .or_default()
            .record(120);
        let parsed = BenchBaseline::parse(&b.to_json()).expect("parses with metrics");
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_samples_record_nothing() {
        let mut b = BenchBaseline::default();
        b.record("noop", &[]);
        assert!(b.benches.is_empty());
    }

    #[test]
    fn diff_classifies_pass_regress_and_threshold_edge() {
        let mut old = BenchBaseline::default();
        old.benches.insert("a".into(), timing(1_000));
        old.benches.insert("b".into(), timing(1_000));
        old.benches.insert("edge".into(), timing(1_000));
        old.benches.insert("gone".into(), timing(50));
        let mut new = BenchBaseline::default();
        new.benches.insert("a".into(), timing(1_200)); // +20% → regressed
        new.benches.insert("b".into(), timing(850)); // −15% → improved
        new.benches.insert("edge".into(), timing(1_100)); // exactly +10% → noise
        new.benches.insert("fresh".into(), timing(10));

        let d = diff(&old, &new, 10.0);
        assert!(d.has_regressions());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].name, "a");
        assert!((d.regressions[0].pct - 20.0).abs() < 1e-9);
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].name, "b");
        assert_eq!(d.unchanged, 1, "threshold-edge move counts as noise");
        assert_eq!(d.added, vec!["fresh".to_owned()]);
        assert_eq!(d.removed, vec!["gone".to_owned()]);

        // A tighter threshold flips the edge case into a regression.
        let tight = diff(&old, &new, 9.0);
        assert_eq!(tight.regressions.len(), 2);
        assert_eq!(tight.regressions[0].name, "a", "worst first");
        assert_eq!(tight.regressions[1].name, "edge");

        // Identical baselines never regress.
        let same = diff(&old, &old, 0.0);
        assert!(!same.has_regressions());
        assert_eq!(same.unchanged, old.benches.len());
    }

    #[test]
    fn diff_handles_zero_medians_without_dividing() {
        let mut old = BenchBaseline::default();
        old.benches.insert("z".into(), timing(0));
        let mut new = BenchBaseline::default();
        new.benches.insert("z".into(), timing(500));
        let d = diff(&old, &new, 10.0);
        assert_eq!(d.regressions.len(), 1);
        assert!((d.regressions[0].pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_comparison_is_advisory_and_needs_both_sides() {
        let mut old = BenchBaseline::default();
        old.benches.insert("a".into(), timing(100));
        let mut new = old.clone();
        // Only one side sampled /proc → no memory line at all.
        new.metrics
            .gauges
            .insert("proc.rss_bytes.peak".into(), 64.0 * 1024.0 * 1024.0);
        let half = diff(&old, &new, 10.0);
        assert_eq!(half.memory, None);
        assert!(!half.render().contains("memory"));

        // Both sides sampled → advisory line, but a 3x blow-up still
        // does not count as a regression.
        old.metrics
            .gauges
            .insert("proc.rss_bytes.peak".into(), 20.0 * 1024.0 * 1024.0);
        let both = diff(&old, &new, 10.0);
        assert_eq!(
            both.memory,
            Some((20 * 1024 * 1024, 64 * 1024 * 1024)),
            "peak gauges compared bytewise"
        );
        assert!(!both.has_regressions(), "memory never gates");
        let text = both.render();
        assert!(
            text.contains("memory     peak rss 20.0MB -> 64.0MB (+220.0%, advisory"),
            "got: {text}"
        );
        assert!(text.contains("0 regressed"));
    }

    #[test]
    fn render_is_deterministic_and_mentions_every_class() {
        let mut old = BenchBaseline::default();
        old.benches.insert("slow".into(), timing(100));
        old.benches.insert("fast".into(), timing(100));
        let mut new = BenchBaseline::default();
        new.benches.insert("slow".into(), timing(200));
        new.benches.insert("fast".into(), timing(40));
        let d = diff(&old, &new, 10.0);
        let text = d.render();
        assert_eq!(text, d.render());
        assert!(text.contains("REGRESSED  slow: 100 ns -> 200 ns (+100.0%)"));
        assert!(text.contains("improved   fast: 100 ns -> 40 ns (-60.0%)"));
        assert!(text.contains("1 regressed, 1 improved, 0 unchanged"));
    }
}
