//! `/proc/self` sampler: a background thread exporting process memory
//! and CPU usage as gauges — `proc.rss_bytes` (current),
//! `proc.rss_bytes.peak` (running maximum), and `proc.cpu_ms`
//! (user+system) — so memory blowups are visible live in `mlrl top`,
//! post-hoc in `mlrl report`, and across commits in bench baselines.
//! The data source is Linux `/proc`; on other platforms (or when a
//! read fails) the sampler silently records nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STARTED: AtomicBool = AtomicBool::new(false);

/// One `/proc/self` reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcSample {
    /// Resident set size, bytes.
    pub rss_bytes: u64,
    /// User + system CPU time, milliseconds.
    pub cpu_ms: u64,
}

/// Read `/proc/self/status` (VmRSS) and `/proc/self/stat`
/// (utime+stime). `None` when either is unreadable or unparsable
/// (non-Linux platforms).
pub fn sample() -> Option<ProcSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rss_kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // utime/stime are fields 14/15 overall; count from after the
    // parenthesized comm, which may itself contain spaces.
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration we target, so one
    // tick is 10ms. (Good enough for a trend gauge.)
    Some(ProcSample {
        rss_bytes: rss_kb * 1024,
        cpu_ms: (utime + stime) * 10,
    })
}

/// Export one reading into the global sink.
pub fn record(s: ProcSample) {
    crate::gauge_set("proc.rss_bytes", s.rss_bytes as f64);
    crate::gauge_max("proc.rss_bytes.peak", s.rss_bytes as f64);
    crate::gauge_set("proc.cpu_ms", s.cpu_ms as f64);
}

/// Take one sample immediately, then start a background thread that
/// re-samples every `interval`. Idempotent — later calls (even with a
/// different interval) only refresh the immediate sample. The thread
/// holds no resources and dies with the process; while the sink is
/// disabled it records nothing.
pub fn start_sampler(interval: Duration) {
    if let Some(s) = sample() {
        record(s);
    }
    if STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = std::thread::Builder::new()
        .name("obs-proc-sampler".to_owned())
        .spawn(move || loop {
            std::thread::sleep(interval);
            if !crate::enabled() {
                continue;
            }
            if let Some(s) = sample() {
                record(s);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_sample_reads_positive_rss_on_linux() {
        // On the Linux CI/dev machines this must produce a real
        // reading; elsewhere `None` is the documented behavior.
        if let Some(s) = sample() {
            assert!(s.rss_bytes > 0, "resident set should be non-zero");
        }
    }
}
