//! Log-bucketed duration histograms (HDR-style).
//!
//! A [`Histogram`] keeps a sparse map of logarithmic buckets — eight
//! sub-buckets per power of two, so every recorded value lands in a
//! bucket whose width is at most 12.5% of its magnitude — plus exact
//! `count`/`sum`/`min`/`max`. That is enough to answer percentile
//! queries (p50/p90/p99) with bounded relative error while staying
//! cheap to record (one `BTreeMap` bump) and cheap to merge
//! (bucket-wise addition, which is associative and commutative — the
//! property the orchestrator's fleet fold relies on).
//!
//! Values are plain `u64`s; the sink records span durations in
//! microseconds, but nothing here assumes a unit.

use std::collections::BTreeMap;

/// log2 of the sub-buckets per octave: 8 sub-buckets ⇒ bucket width ≤
/// 1/8th of the value's magnitude (≤ 12.5% relative error).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave; values below this are bucketed exactly.
const SUB: u64 = 1 << SUB_BITS;

/// Sparse bucket index of `value`: identity below [`SUB`], then
/// `(exponent, mantissa)` packed so indices stay contiguous and
/// monotone in `value`.
fn bucket_index(value: u64) -> u32 {
    if value < SUB {
        return value as u32;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = (value >> (exp - SUB_BITS)) as u32; // in [SUB, 2·SUB)
    ((exp - SUB_BITS) << SUB_BITS) + mantissa
}

/// Largest value mapping to bucket `index` (inverse of
/// [`bucket_index`]; used as the percentile's reported value, in the
/// HDR "highest equivalent value" convention).
fn bucket_high(index: u32) -> u64 {
    if u64::from(index) < SUB {
        return u64::from(index);
    }
    let e = (index - SUB as u32) >> SUB_BITS;
    let m = u128::from((index - SUB as u32) & (SUB as u32 - 1)) + u128::from(SUB);
    // The top bucket's high edge is 2^64, one past u64::MAX: saturate.
    u64::try_from(((m + 1) << e) - 1).unwrap_or(u64::MAX)
}

/// A mergeable log-bucketed histogram; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sparse `bucket index → sample count`.
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
    }

    /// Folds `other` into `self` bucket-wise. Associative and
    /// commutative: any merge order over a set of histograms produces
    /// the same result, so shard/worker rollups are order-independent.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, rounded down; `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The `p`-th percentile (`p` clamped to 0..=100): the highest value
    /// equivalent to the bucket holding the `⌈count·p/100⌉`-th smallest
    /// sample, clamped into `[min, max]` so every answer is a value the
    /// histogram could actually have seen. `None` when empty.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = u64::from(p.min(100));
        let rank = (self.count * p).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_high(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median ([`Histogram::percentile`] at 50).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99)
    }

    /// Serializes as a JSON object fragment:
    /// `{"count":N,"sum":N,"min":N,"max":N,"buckets":[[i,n],...]}`.
    /// Empty histograms write zero min/max so the form is stable.
    pub(crate) fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, self.min, self.max
        );
        for (i, (&index, &n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{index},{n}]"));
        }
        out.push_str("]}");
        out
    }

    /// Rebuilds a histogram from a parsed [`crate::json::Value`]
    /// produced by [`Histogram::to_json`]; `None` on shape mismatch.
    pub(crate) fn from_json(value: &crate::json::Value) -> Option<Histogram> {
        let obj = value.as_object()?;
        let field = |name: &str| obj.get(name)?.as_f64().map(|v| v as u64);
        let mut hist = Histogram {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            buckets: BTreeMap::new(),
        };
        for pair in obj.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let index = pair[0].as_f64()? as u32;
            let n = pair[1].as_f64()? as u64;
            hist.buckets.insert(index, n);
        }
        Some(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0u32;
        for v in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let index = bucket_index(v);
            assert!(index >= last, "index must not decrease at {v}");
            last = index;
            let high = bucket_high(index);
            assert!(high >= v, "bucket high {high} must cover {v}");
            // Relative error of reporting the bucket's high edge.
            if v >= SUB && high != u64::MAX {
                assert!(
                    (high - v) as f64 <= v as f64 / SUB as f64,
                    "error bound at {v} (high {high})"
                );
            }
        }
    }

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..SUB {
            assert_eq!(bucket_high(bucket_index(v)), v);
        }
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        let p50 = h.p50().unwrap();
        assert!((45..=56).contains(&p50), "p50 {p50}");
        let p99 = h.p99().unwrap();
        assert!((90..=100).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(0), Some(1));
        assert_eq!(h.percentile(100), Some(100));
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
    }
}
