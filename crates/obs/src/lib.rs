//! # mlrl-obs — run telemetry for campaigns and orchestrations
//!
//! A std-only telemetry sink (the build environment has no crates.io
//! access) shared by the engine, the SAT attack, and the orchestrator.
//! Three primitives cover the instrumentation the workspace needs:
//!
//! - **spans** — RAII wall-clock timers ([`span`] / [`span_with`]) that
//!   aggregate per-name statistics *and* append Chrome trace events,
//! - **counters** — monotonic `u64` event counts ([`counter_add`]),
//! - **gauges** — last-written `f64` levels ([`gauge_set`]),
//! - **histograms** — log-bucketed duration distributions
//!   ([`hist::Histogram`]), recorded automatically per span name and
//!   on demand via [`hist_record`], with p50/p90/p99 accessors.
//!
//! The sink is process-global (like the `log` facade) so deep call
//! chains — engine → attack → solver — need no handle threading. It is
//! disabled by default; every entry point starts with one relaxed
//! atomic load, so instrumented hot paths cost nothing measurable when
//! telemetry is off. [`enable`] arms it for a run, [`snapshot`] returns
//! a mergeable [`Metrics`] rollup, and [`write_trace_json`] exports a
//! `chrome://tracing` / Perfetto-loadable trace with one lane per pool
//! worker or supervised process.
//!
//! Telemetry is a **pure side channel**: nothing recorded here may leak
//! into canonical campaign output. The integration suites prove the
//! canonical JSONL bytes are identical with tracing on, off, sharded,
//! and orchestrated.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod hist;
pub mod proc;

pub use hist::Histogram;

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Default cap on the in-memory trace ring; see [`set_trace_cap`].
const MAX_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by [`reset`] so threads drop stale cached lane ids.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Ring capacity for buffered trace events; see [`set_trace_cap`].
static TRACE_CAP: AtomicUsize = AtomicUsize::new(MAX_EVENTS);
/// Keep 1-in-N hot-class trace events; see [`set_span_sample`].
static SPAN_SAMPLE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cached `(generation, lane)` for the current thread.
    static THREAD_LANE: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

fn epoch_pair() -> (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros() as u64;
        (Instant::now(), wall)
    })
}

fn epoch() -> Instant {
    epoch_pair().0
}

/// Wall-clock UNIX time (microseconds) at which this process's
/// telemetry epoch was fixed. Workers report it in their `hello`
/// handshake so the supervisor can shift per-process trace timestamps
/// onto one shared timeline.
pub fn epoch_unix_micros() -> u64 {
    epoch_pair().1
}

/// Microseconds between the process telemetry epoch and `t` (zero when
/// `t` predates the epoch, which cannot happen for spans opened while
/// telemetry is enabled).
pub fn micros_since_epoch(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .unwrap_or_default()
        .as_micros() as u64
}

#[derive(Debug)]
struct TraceEvent {
    name: String,
    /// `'X'` complete span or `'i'` instant.
    ph: char,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

/// Aggregated wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans under this name.
    pub count: u64,
    /// Total wall time across those spans, in microseconds.
    pub total_us: u64,
}

#[derive(Default)]
struct State {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Per-stat sequence numbers driving 1-in-N span sampling.
    sample_seq: BTreeMap<String, u64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanStat>,
    /// Duration distributions, recorded alongside the sum-only `spans`.
    hists: BTreeMap<String, Histogram>,
    /// Lane labels; the lane id (Chrome `tid`) is the index.
    lanes: Vec<String>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let mut guard = match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Arm the global sink. Also fixes the trace epoch if this is the first
/// telemetry call in the process.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Disarm the global sink; subsequent telemetry calls are no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the sink is currently armed. One relaxed atomic load — cheap
/// enough for per-iteration hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all recorded events, counters, gauges, spans, and lanes, and
/// restore the default trace-ring capacity and span sampling rate.
/// Threads re-acquire lanes lazily on their next recording.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    TRACE_CAP.store(MAX_EVENTS, Ordering::Relaxed);
    SPAN_SAMPLE.store(1, Ordering::Relaxed);
    with_state(|s| *s = State::default());
}

/// Bound the in-memory trace ring to `cap` events. When full, the
/// *oldest* event is evicted and the `obs.trace.dropped` counter bumps
/// — long runs keep their most recent window instead of growing
/// without bound. Statistics, counters, gauges, and histograms are
/// unaffected. `0` is clamped to `1`. [`reset`] restores the default.
pub fn set_trace_cap(cap: usize) {
    TRACE_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// Keep only 1-in-`n` trace events for hot span classes (`sat.dip`,
/// cache traffic, optimizer passes). Phase spans (`phase.*`) and cell
/// spans always keep their events, and aggregate span statistics and
/// histograms stay exact regardless of sampling — only the per-event
/// trace stream thins. `0` and `1` both mean "keep everything".
/// [`reset`] restores the default.
pub fn set_span_sample(n: u64) {
    SPAN_SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Span classes whose trace events are never sampled away: campaign
/// phases and per-cell spans, the backbone of the merged timeline.
fn always_traced(stat: &str) -> bool {
    stat.starts_with("phase.") || stat == "cell"
}

fn lane_in(s: &mut State, label: &str) -> u64 {
    if let Some(i) = s.lanes.iter().position(|l| l == label) {
        return i as u64;
    }
    s.lanes.push(label.to_owned());
    (s.lanes.len() - 1) as u64
}

/// Look up (or allocate) the lane with the given label, returning its
/// id. Lanes render as named threads in the Chrome trace viewer.
pub fn lane(label: &str) -> u64 {
    with_state(|s| lane_in(s, label))
}

fn current_lane(s: &mut State) -> u64 {
    let generation = GENERATION.load(Ordering::Relaxed);
    if let Some((gen_cached, lane)) = THREAD_LANE.with(|c| c.get()) {
        if gen_cached == generation {
            return lane;
        }
    }
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{}", s.lanes.len()));
    let lane = lane_in(s, &label);
    THREAD_LANE.with(|c| c.set(Some((generation, lane))));
    lane
}

/// Bind the current thread's trace lane to `label` (allocating the lane
/// if needed). Pool workers use this to render as `pool-worker-N`.
pub fn set_thread_lane(label: &str) {
    if !enabled() {
        return;
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let lane = lane(label);
    THREAD_LANE.with(|c| c.set(Some((generation, lane))));
}

fn push_event(s: &mut State, ev: TraceEvent) {
    let cap = TRACE_CAP.load(Ordering::Relaxed).max(1);
    while s.events.len() >= cap {
        s.events.pop_front();
        s.dropped += 1;
        *s.counters
            .entry("obs.trace.dropped".to_owned())
            .or_insert(0) += 1;
    }
    s.events.push_back(ev);
}

/// RAII span timer: created by [`span`] / [`span_with`], records a
/// trace event and a [`SpanStat`] sample when dropped. A guard created
/// while the sink is disabled is a free no-op.
#[must_use = "a span measures the scope it is held for"]
pub struct SpanGuard(Option<SpanInner>);

struct SpanInner {
    stat: &'static str,
    label: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        if !enabled() {
            return;
        }
        let dur_us = inner.start.elapsed().as_micros() as u64;
        let ts_us = micros_since_epoch(inner.start);
        let sample = SPAN_SAMPLE.load(Ordering::Relaxed);
        with_state(|s| {
            let keep_event = if sample <= 1 || always_traced(inner.stat) {
                true
            } else {
                let seq = s.sample_seq.entry(inner.stat.to_owned()).or_insert(0);
                *seq += 1;
                (*seq - 1) % sample == 0
            };
            if keep_event {
                let tid = current_lane(s);
                push_event(
                    s,
                    TraceEvent {
                        name: inner.label,
                        ph: 'X',
                        ts_us,
                        dur_us,
                        tid,
                    },
                );
            }
            let st = s.spans.entry(inner.stat.to_owned()).or_default();
            st.count += 1;
            st.total_us += dur_us;
            s.hists
                .entry(inner.stat.to_owned())
                .or_default()
                .record(dur_us);
        });
    }
}

/// Open a span named `name`; the returned guard closes it on drop.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(SpanInner {
        stat: name,
        label: name.to_owned(),
        start: Instant::now(),
    }))
}

/// Open a span whose statistics aggregate under `stat` while the trace
/// event carries the (possibly per-item) label produced by `label` —
/// e.g. stats under `"cell"`, trace label `"cell 17"`. The closure only
/// runs when the sink is enabled, so hot callers pay no formatting cost
/// when telemetry is off.
pub fn span_with(stat: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(SpanInner {
        stat,
        label: label(),
        start: Instant::now(),
    }))
}

/// Record an already-measured span on an explicit lane — used by the
/// supervisor to synthesize worker-process spans from protocol
/// timestamps it observed.
pub fn record_complete(name: impl Into<String>, lane: u64, start: Instant, dur: Duration) {
    if !enabled() {
        return;
    }
    let ev = TraceEvent {
        name: name.into(),
        ph: 'X',
        ts_us: micros_since_epoch(start),
        dur_us: dur.as_micros() as u64,
        tid: lane,
    };
    with_state(|s| push_event(s, ev));
}

/// Record an instant event (a zero-width marker) on an explicit lane.
pub fn instant(name: impl Into<String>, lane: u64) {
    if !enabled() {
        return;
    }
    instant_at(name, lane, micros_since_epoch(Instant::now()));
}

/// Record a span with explicit trace-clock timestamps — used by the
/// supervisor when injecting worker-streamed spans, already shifted
/// onto its own timeline, into the merged trace.
pub fn record_span_at(name: impl Into<String>, lane: u64, ts_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    let ev = TraceEvent {
        name: name.into(),
        ph: 'X',
        ts_us,
        dur_us,
        tid: lane,
    };
    with_state(|s| push_event(s, ev));
}

/// Record an instant event with an explicit trace-clock timestamp.
pub fn instant_at(name: impl Into<String>, lane: u64, ts_us: u64) {
    if !enabled() {
        return;
    }
    let ev = TraceEvent {
        name: name.into(),
        ph: 'i',
        ts_us,
        dur_us: 0,
        tid: lane,
    };
    with_state(|s| push_event(s, ev));
}

/// Drain the buffered trace events into a compact self-contained JSON
/// chunk: `{"lanes":[..],"events":[[name,ph,ts_us,dur_us,tid],..]}`.
/// The full lane table rides along (lanes only grow, and `tid` indexes
/// it), so every chunk decodes without its predecessors. Returns
/// `None` when nothing is buffered. Workers call this after each cell
/// to stream their trace to the supervisor over the line protocol —
/// which also keeps worker-side trace memory flat.
pub fn drain_trace_chunk() -> Option<String> {
    if !enabled() {
        return None;
    }
    with_state(|s| {
        if s.events.is_empty() {
            return None;
        }
        let mut out = String::from("{\"lanes\":[");
        for (i, label) in s.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(label));
        }
        out.push_str("],\"events\":[");
        for (i, ev) in s.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},\"{}\",{},{},{}]",
                json_string(&ev.name),
                ev.ph,
                ev.ts_us,
                ev.dur_us,
                ev.tid
            ));
        }
        out.push_str("]}");
        s.events.clear();
        Some(out)
    })
}

/// Merge a worker-streamed [`drain_trace_chunk`] payload into this
/// process's sink: every lane label gains `lane_prefix`, every
/// timestamp shifts by `offset_us` (the worker's epoch offset on the
/// receiving timeline; shifted timestamps clamp at zero). Returns
/// `false` on a malformed chunk, leaving the sink untouched — a
/// garbled or truncated flush from a dying worker must never corrupt
/// the merged trace.
pub fn merge_trace_chunk(chunk: &str, lane_prefix: &str, offset_us: i64) -> bool {
    if !enabled() {
        return false;
    }
    let Some(doc) = json::parse(chunk) else {
        return false;
    };
    let Some(obj) = doc.as_object() else {
        return false;
    };
    let (Some(lanes), Some(events)) = (
        obj.get("lanes").and_then(json::Value::as_array),
        obj.get("events").and_then(json::Value::as_array),
    ) else {
        return false;
    };
    let mut labels = Vec::with_capacity(lanes.len());
    for l in lanes {
        let Some(label) = l.as_str() else {
            return false;
        };
        labels.push(format!("{lane_prefix}{label}"));
    }
    // Decode fully before touching the sink so a bad trailing record
    // cannot leave a half-merged chunk behind.
    let mut decoded = Vec::with_capacity(events.len());
    for ev in events {
        let Some(fields) = ev.as_array() else {
            return false;
        };
        if fields.len() != 5 {
            return false;
        }
        let (Some(name), Some(ph), Some(ts), Some(dur), Some(tid)) = (
            fields[0].as_str(),
            fields[1].as_str(),
            fields[2].as_f64(),
            fields[3].as_f64(),
            fields[4].as_f64(),
        ) else {
            return false;
        };
        let ph = match ph {
            "X" => 'X',
            "i" => 'i',
            _ => return false,
        };
        let tid = tid as usize;
        if tid >= labels.len() {
            return false;
        }
        decoded.push((
            name.to_owned(),
            ph,
            (ts as i64 + offset_us).max(0) as u64,
            dur as u64,
            tid,
        ));
    }
    with_state(|s| {
        let lane_ids: Vec<u64> = labels.iter().map(|l| lane_in(s, l)).collect();
        for (name, ph, ts_us, dur_us, tid) in decoded {
            push_event(
                s,
                TraceEvent {
                    name,
                    ph,
                    ts_us,
                    dur_us,
                    tid: lane_ids[tid],
                },
            );
        }
    });
    true
}

/// Add `n` to the monotonic counter `name`.
pub fn counter_add(name: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_state(|s| match s.counters.get_mut(name) {
        Some(v) => *v += n,
        None => {
            s.counters.insert(name.to_owned(), n);
        }
    });
}

/// Set the gauge `name` to `value` (last write wins). Non-finite values
/// are dropped — they have no JSON representation.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() || !value.is_finite() {
        return;
    }
    with_state(|s| {
        s.gauges.insert(name.to_owned(), value);
    });
}

/// Raise the gauge `name` to `value` if `value` is larger (a no-op
/// otherwise) — peak-tracking writes like `proc.rss_bytes.peak`.
pub fn gauge_max(name: &str, value: f64) {
    if !enabled() || !value.is_finite() {
        return;
    }
    with_state(|s| {
        let slot = s.gauges.entry(name.to_owned()).or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    });
}

/// Record one sample into the histogram `name` — for values that are
/// not span durations (the supervisor's protocol-observed cell wall
/// times, batch sizes, queue depths). Span durations are recorded
/// automatically under the span's stat name.
pub fn hist_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_state(|s| {
        s.hists.entry(name.to_owned()).or_default().record(value);
    });
}

/// A mergeable rollup of counters, gauges, and span statistics — the
/// `metrics.json` payload, and the unit workers stream to the
/// supervisor over the line protocol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-written levels.
    pub gauges: BTreeMap<String, f64>,
    /// Wall-clock statistics per span name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Duration distributions per span/histogram name.
    pub hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.hists.is_empty()
    }

    /// Fold `other` into `self`: counters and span stats add, histograms
    /// add bucket-wise, gauges keep the maximum (the conservative
    /// fleet-wide reading for levels like utilization or heartbeat
    /// gaps).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (k, v) in &other.spans {
            let slot = self.spans.entry(k.clone()).or_default();
            slot.count += v.count;
            slot.total_us += v.total_us;
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Serialize as a single-line JSON object with sorted keys:
    /// `{"counters":{..},"gauges":{..},"spans":{..},"hists":{..}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (k, v) in &self.gauges {
            if !v.is_finite() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", json_string(k), json_number(*v)));
        }
        out.push_str("},\"spans\":{");
        for (i, (k, v)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_us\":{}}}",
                json_string(k),
                v.count,
                v.total_us
            ));
        }
        out.push_str("},\"hists\":{");
        for (i, (k, v)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), v.to_json()));
        }
        out.push_str("}}");
        out
    }

    /// Parse a payload produced by [`Metrics::to_json`]. Returns `None`
    /// on malformed input; unknown keys inside the three sections are
    /// skipped, so older readers tolerate newer payloads.
    pub fn parse(text: &str) -> Option<Metrics> {
        let value = json::parse(text)?;
        let obj = value.as_object()?;
        let mut metrics = Metrics::default();
        if let Some(counters) = obj.get("counters").and_then(json::Value::as_object) {
            for (k, v) in counters {
                if let Some(n) = v.as_f64() {
                    metrics.counters.insert(k.clone(), n as u64);
                }
            }
        }
        if let Some(gauges) = obj.get("gauges").and_then(json::Value::as_object) {
            for (k, v) in gauges {
                if let Some(n) = v.as_f64() {
                    metrics.gauges.insert(k.clone(), n);
                }
            }
        }
        if let Some(spans) = obj.get("spans").and_then(json::Value::as_object) {
            for (k, v) in spans {
                let span = v.as_object()?;
                let count = span.get("count")?.as_f64()? as u64;
                let total_us = span.get("total_us")?.as_f64()? as u64;
                metrics
                    .spans
                    .insert(k.clone(), SpanStat { count, total_us });
            }
        }
        // Absent in payloads from pre-histogram writers; tolerated.
        if let Some(hists) = obj.get("hists").and_then(json::Value::as_object) {
            for (k, v) in hists {
                metrics.hists.insert(k.clone(), Histogram::from_json(v)?);
            }
        }
        Some(metrics)
    }
}

/// Snapshot the sink's current counters, gauges, span statistics, and
/// histograms.
pub fn snapshot() -> Metrics {
    with_state(|s| Metrics {
        counters: s.counters.clone(),
        gauges: s.gauges.clone(),
        spans: s.spans.clone(),
        hists: s.hists.clone(),
    })
}

/// Render the recorded events as Chrome trace-event JSON
/// (`{"traceEvents":[...]}` — load in Perfetto or `chrome://tracing`).
/// One `thread_name` metadata record labels each lane.
pub fn trace_json() -> String {
    with_state(|s| {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |piece: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&piece);
        };
        for (tid, label) in s.lanes.iter().enumerate() {
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(label)
                ),
                &mut first,
            );
        }
        for ev in &s.events {
            let piece = match ev.ph {
                'X' => format!(
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    json_string(&ev.name),
                    ev.ts_us,
                    ev.dur_us,
                    ev.tid
                ),
                _ => format!(
                    "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                    json_string(&ev.name),
                    ev.ts_us,
                    ev.tid
                ),
            };
            push(piece, &mut first);
        }
        if s.dropped > 0 {
            push(
                format!(
                    "{{\"name\":\"obs.events.dropped {}\",\"ph\":\"i\",\"ts\":0,\
                     \"pid\":1,\"tid\":0,\"s\":\"t\"}}",
                    s.dropped
                ),
                &mut first,
            );
        }
        out.push_str("]}");
        out
    })
}

/// Write [`trace_json`] to `path` (parent directories must exist).
pub fn write_trace_json(path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace_json().as_bytes())?;
    writeln!(file)
}

/// Escape `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a finite `f64` as a JSON number (round-trippable shortest
/// form; integral values keep a `.0` so they read back as written).
fn json_number(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A deliberately small JSON reader: objects, arrays, strings, numbers,
/// booleans, null — just enough to parse [`Metrics::to_json`] payloads
/// and validate exported artifacts in tests. Std-only, recursive
/// descent, no error detail.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as `f64`.
        Number(f64),
        /// A string literal.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; key order is not preserved.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The object map, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Parse `text` as one JSON value (trailing whitespace allowed).
    /// Returns `None` on any syntax error.
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b'{' => parse_object(b, pos),
            b'[' => parse_array(b, pos),
            b'"' => parse_string(b, pos).map(Value::String),
            b't' => parse_lit(b, pos, "true", Value::Bool(true)),
            b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
            b'n' => parse_lit(b, pos, "null", Value::Null),
            _ => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Option<Value> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Option<Value> {
        *pos += 1; // '{'
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if *b.get(*pos)? == b'}' {
            *pos += 1;
            return Some(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if *b.get(*pos)? != b':' {
                return None;
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            map.insert(key, value);
            skip_ws(b, pos);
            match *b.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(Value::Object(map));
                }
                _ => return None,
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Option<Value> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if *b.get(*pos)? == b']' {
            *pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match *b.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
        if *b.get(*pos)? != b'"' {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match *b.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match *b.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*pos + 1..*pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Option<Value> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        if start == *pos {
            return None;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Value::Number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-sink tests must not interleave: one mutex serializes them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        match GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = lock();
        disable();
        reset();
        counter_add("c", 3);
        gauge_set("g", 1.5);
        drop(span("s"));
        assert!(snapshot().is_empty());
    }

    #[test]
    fn spans_counters_and_gauges_round_trip_through_json() {
        let _g = lock();
        reset();
        enable();
        counter_add("cache.hits", 2);
        counter_add("cache.hits", 3);
        gauge_set("pool.worker0.utilization", 0.75);
        gauge_set("dropme", f64::NAN);
        {
            let _s = span_with("cell", || "cell 7".to_owned());
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = snapshot();
        disable();

        assert_eq!(snap.counters["cache.hits"], 5);
        assert!((snap.gauges["pool.worker0.utilization"] - 0.75).abs() < 1e-12);
        assert!(!snap.gauges.contains_key("dropme"));
        assert_eq!(snap.spans["cell"].count, 1);
        assert!(snap.spans["cell"].total_us >= 1_000);

        let parsed = Metrics::parse(&snap.to_json()).expect("self-parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn merge_sums_counts_and_keeps_max_gauges() {
        let mut a = Metrics::default();
        a.counters.insert("n".into(), 2);
        a.gauges.insert("u".into(), 0.4);
        a.spans.insert(
            "s".into(),
            SpanStat {
                count: 1,
                total_us: 10,
            },
        );
        let mut b = Metrics::default();
        b.counters.insert("n".into(), 5);
        b.gauges.insert("u".into(), 0.9);
        b.spans.insert(
            "s".into(),
            SpanStat {
                count: 2,
                total_us: 30,
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["n"], 7);
        assert!((a.gauges["u"] - 0.9).abs() < 1e-12);
        assert_eq!(
            a.spans["s"],
            SpanStat {
                count: 3,
                total_us: 40
            }
        );
    }

    #[test]
    fn trace_export_is_wellformed_and_labels_lanes() {
        let _g = lock();
        reset();
        enable();
        set_thread_lane("pool-worker-0");
        drop(span("phase"));
        let worker = lane("worker-1");
        instant("restart", worker);
        record_complete("cell 3", worker, Instant::now(), Duration::from_millis(4));
        let text = trace_json();
        disable();

        let value = json::parse(&text).expect("trace parses");
        let events = value
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_object()?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"thread_name"), "lane metadata present");
        assert!(names.contains(&"phase"));
        assert!(names.contains(&"restart"));
        assert!(names.contains(&"cell 3"));
        // The two explicit lanes carry distinct tids.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.as_object()?.get("tid")?.as_f64())
            .map(|t| t as u64)
            .collect();
        assert!(tids.len() >= 2);
    }

    #[test]
    fn json_reader_handles_nesting_strings_and_escapes() {
        let v = json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"\\\n","d":true,"e":null}}"#)
            .expect("parses");
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        let inner = obj["b"].as_object().unwrap();
        assert_eq!(inner["c"].as_str(), Some("x\"\\\n"));
        assert_eq!(inner["d"], json::Value::Bool(true));
        assert!(json::parse("{\"a\":}").is_none());
        assert!(json::parse("[1,2,]").is_none());
    }

    #[test]
    fn spans_record_duration_histograms_alongside_stats() {
        let _g = lock();
        reset();
        enable();
        for _ in 0..3 {
            let _s = span("h.span");
            std::thread::sleep(Duration::from_millis(1));
        }
        hist_record("h.manual", 42);
        let snap = snapshot();
        disable();

        let h = snap.hists.get("h.span").expect("span histogram");
        assert_eq!(h.count(), 3);
        assert_eq!(h.count(), snap.spans["h.span"].count);
        assert!(h.min().unwrap() >= 1_000, "slept ≥1ms: {:?}", h.min());
        assert!(h.p50().unwrap() <= h.max().unwrap());
        assert_eq!(snap.hists["h.manual"].sum(), 42);

        let parsed = Metrics::parse(&snap.to_json()).expect("reparses");
        assert_eq!(parsed, snap, "histograms round-trip in the rollup");
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mut parts = Vec::new();
        for seed in 1u64..=3 {
            let mut h = Histogram::default();
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..50 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.record(x % 1_000_000);
            }
            parts.push(h);
        }
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(ab, ba, "merge must be commutative");

        // Empty is the identity on both sides.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::default());
        assert_eq!(&with_empty, a);
        let mut from_empty = Histogram::default();
        from_empty.merge(a);
        assert_eq!(&from_empty, a);
    }

    #[test]
    fn percentiles_stay_within_recorded_extremes() {
        let mut h = Histogram::default();
        let mut x = 0xdead_beefu64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        for p in [0u8, 1, 50, 90, 99, 100] {
            let v = h.percentile(p).unwrap();
            assert!(v >= min && v <= max, "p{p}={v} outside [{min},{max}]");
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99, "percentiles must be monotone");
    }

    #[test]
    fn empty_histogram_rollup_is_stable() {
        let mut m = Metrics::default();
        m.hists
            .insert("never.recorded".into(), Histogram::default());
        let json = m.to_json();
        let parsed = Metrics::parse(&json).expect("parses");
        assert_eq!(parsed, m);
        // Serialization is a fixed point: parse ∘ to_json = id implies
        // to_json(parse(to_json(m))) == to_json(m).
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn hostile_labels_and_keys_survive_json_round_trips() {
        let _g = lock();
        reset();
        enable();
        // Quotes, backslashes, newlines, and raw control characters —
        // the shapes cell names and file paths can smuggle in.
        let hostile = "cell \"N_2046\"\\path\nwith\tctrl\u{1}";
        drop(span_with("stat \"with\\quotes\"", || hostile.to_owned()));
        counter_add("count \"q\"\\k", 2);
        gauge_set("gauge \"q\"\\k", 1.5);
        hist_record("hist \"q\"\\k", 7);
        let trace = trace_json();
        let snap = snapshot();
        disable();

        // The trace parses and carries the label byte-for-byte.
        let doc = json::parse(&trace).expect("escaped trace parses");
        let names: Vec<String> = doc
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(json::Value::as_array)
            .expect("traceEvents")
            .iter()
            .filter_map(|e| Some(e.as_object()?.get("name")?.as_str()?.to_owned()))
            .collect();
        assert!(
            names.iter().any(|n| n == hostile),
            "label intact: {names:?}"
        );

        // The rollup parses and every hostile key round-trips.
        let parsed = Metrics::parse(&snap.to_json()).expect("escaped rollup parses");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.counters["count \"q\"\\k"], 2);
        assert_eq!(parsed.spans["stat \"with\\quotes\""].count, 1);
        assert_eq!(parsed.hists["hist \"q\"\\k"].sum(), 7);
    }

    #[test]
    fn trace_ring_drops_oldest_and_counts_drops() {
        let _g = lock();
        reset();
        enable();
        set_trace_cap(3);
        let l = lane("ring");
        for i in 0..5 {
            instant(format!("ev{i}"), l);
        }
        let text = trace_json();
        let snap = snapshot();
        set_trace_cap(MAX_EVENTS);
        disable();

        // Newest three survive; the two oldest were evicted.
        assert!(!text.contains("\"ev0\"") && !text.contains("\"ev1\""));
        for kept in ["\"ev2\"", "\"ev3\"", "\"ev4\""] {
            assert!(text.contains(kept), "missing {kept} in {text}");
        }
        assert_eq!(snap.counters["obs.trace.dropped"], 2);
    }

    #[test]
    fn sampling_thins_hot_spans_but_keeps_phases_and_exact_stats() {
        let _g = lock();
        reset();
        enable();
        set_span_sample(4);
        for _ in 0..8 {
            drop(span("sat.dip"));
        }
        drop(span("phase.attack"));
        drop(span_with("cell", || "cell 0".to_owned()));
        let text = trace_json();
        let snap = snapshot();
        set_span_sample(1);
        disable();

        // 1-in-4 of the hot spans kept; phases and cells always kept;
        // the aggregate stats stay exact either way.
        assert_eq!(text.matches("\"sat.dip\"").count(), 2, "{text}");
        assert!(text.contains("\"phase.attack\""));
        assert!(text.contains("\"cell 0\""));
        assert_eq!(snap.spans["sat.dip"].count, 8);
        assert_eq!(snap.hists["sat.dip"].count(), 8);
    }

    #[test]
    fn drained_chunks_merge_back_with_prefix_and_offset() {
        let _g = lock();
        reset();
        enable();
        set_thread_lane("main");
        drop(span("phase.lock"));
        instant("marker", lane("aux"));
        let chunk = drain_trace_chunk().expect("chunk with events");
        // The drain emptied the ring …
        assert!(drain_trace_chunk().is_none());

        // … and the chunk re-injects under a slot prefix with a shift.
        assert!(merge_trace_chunk(&chunk, "w3/", 1_000_000));
        let text = trace_json();
        let snap = snapshot();
        disable();

        assert!(text.contains("\"w3/main\""), "{text}");
        assert!(text.contains("\"w3/aux\""), "{text}");
        assert!(text.contains("\"phase.lock\""));
        assert!(text.contains("\"marker\""));
        let doc = json::parse(&text).expect("merged trace parses");
        let min_ts = doc
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(json::Value::as_array)
            .unwrap()
            .iter()
            .filter_map(|e| {
                let o = e.as_object()?;
                if o.get("ph")?.as_str()? == "M" {
                    return None;
                }
                o.get("ts")?.as_f64()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(min_ts >= 1_000_000.0, "offset applied: {min_ts}");
        // Span stats were recorded at drain time and survive the merge.
        assert_eq!(snap.spans["phase.lock"].count, 1);
    }

    #[test]
    fn malformed_chunks_are_rejected_without_corrupting_the_sink() {
        let _g = lock();
        reset();
        enable();
        let before = trace_json();
        for bad in [
            "",
            "not json",
            "{\"lanes\":[\"a\"]}",
            "{\"lanes\":[\"a\"],\"events\":[[\"x\",\"X\",0,0]]}",
            "{\"lanes\":[\"a\"],\"events\":[[\"x\",\"X\",0,0,9]]}",
            "{\"lanes\":[\"a\"],\"events\":[[\"x\",\"Q\",0,0,0]]}",
            "{\"lanes\":[\"a\"],\"events\":[[\"x\",\"X\",0,0,0]",
        ] {
            assert!(!merge_trace_chunk(bad, "w0/", 0), "accepted: {bad}");
        }
        assert_eq!(trace_json(), before, "sink untouched by bad chunks");
        disable();
    }

    #[test]
    fn epoch_unix_micros_is_fixed_and_plausible() {
        // 2020-01-01 in UNIX micros — any sane clock is past this.
        let us = epoch_unix_micros();
        assert!(us > 1_577_836_800_000_000, "epoch wall clock: {us}");
        assert_eq!(us, epoch_unix_micros(), "stable across calls");
    }

    #[test]
    fn gauge_max_only_raises() {
        let _g = lock();
        reset();
        enable();
        gauge_max("peak", 10.0);
        gauge_max("peak", 4.0);
        gauge_max("peak", 12.0);
        let snap = snapshot();
        disable();
        assert!((snap.gauges["peak"] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_and_reassigns_lanes() {
        let _g = lock();
        reset();
        enable();
        counter_add("x", 1);
        set_thread_lane("before");
        drop(span("s"));
        reset();
        assert!(snapshot().is_empty());
        // After reset the thread re-acquires a lane lazily.
        drop(span("t"));
        let text = trace_json();
        disable();
        assert!(text.contains("\"t\""));
        assert!(!text.contains("before"));
    }
}
