//! # mlrl-orchestrate — the multi-process campaign shard driver
//!
//! `mlrl campaign --shard i/n` + `mlrl merge` made sharded campaigns
//! *possible*; this crate makes them *operable*. One `mlrl orchestrate`
//! invocation owns the whole process lifecycle of a sharded run:
//!
//! - [`plan`] — journal-aware worker assignments: the engine's
//!   cache-aware schedule minus already-completed cells, cut into
//!   cost-balanced contiguous chunks (`partition_by_cost`), one per
//!   worker process,
//! - [`protocol`] — the line-delimited stdout protocol worker processes
//!   speak (`hello` / `start` / `done <record>` / `heartbeat` / `bye`),
//! - [`journal`] — an append-only JSONL checkpoint of completed cells
//!   under the run directory; a killed orchestration resumes from it
//!   without recomputing finished cells (warm `--cache-dir` artifacts
//!   make the rest near-free),
//! - [`progress`] — the live terminal progress line (cells done/total,
//!   per-worker state, cost-model ETA),
//! - [`report`] — the offline analyzer behind `mlrl report`: renders
//!   phase breakdowns, latency percentiles, cache rates, worker
//!   straggler rankings, and folded stacks from a run directory's
//!   artifacts,
//! - [`supervise`] — the supervisor: spawns `--workers N` processes
//!   pointed at one shared content-addressed cache dir, restarts a
//!   crashed or wedged worker with its remaining cells, journals every
//!   completion, merges each worker's streamed trace chunks onto one
//!   skew-corrected timeline, and on success merges the canonical
//!   unsharded byte stream in-process,
//! - [`top`] — the live fleet console behind `mlrl top`: tails the run
//!   directory's journal, `fleet.json`, and `metrics.json` to render
//!   per-worker state, latency percentiles, and memory while (or
//!   after) the run executes.
//!
//! The determinism contract is inherited from the engine: every cell
//! record is a pure function of the spec, so the orchestrated output is
//! byte-identical to `mlrl campaign <spec> --canonical` on one process —
//! including across crash-restart and kill-resume boundaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod journal;
pub mod plan;
pub mod progress;
pub mod protocol;
pub mod report;
pub mod supervise;
pub mod top;

pub use journal::Journal;
pub use plan::{plan_assignments, spec_digest};
pub use protocol::WorkerEvent;
pub use report::{render_report, ReportOptions};
pub use supervise::{orchestrate, OrchestrationOutcome, OrchestratorConfig};
pub use top::{render_top, run_top, TopOptions};
