//! The supervisor: process lifecycle, failure recovery, merge.
//!
//! [`orchestrate`] is the one call behind `mlrl orchestrate`: it plans
//! the journal-aware cost-balanced assignments, spawns one worker
//! process per non-empty assignment (all pointed at one shared
//! content-addressed cache dir), supervises them over the
//! [`crate::protocol`] line stream, journals every completed cell,
//! restarts a crashed or wedged worker with its remaining cells, and on
//! completion merges the canonical unsharded byte stream in-process.
//!
//! Failure model:
//!
//! - a worker *crash* (process exit with unfinished cells, for any
//!   reason — OOM kill, panic outside a cell, fault injection) loses
//!   only its in-flight cells: everything journaled stays done, and a
//!   replacement worker takes over the remainder;
//! - a worker *wedge* (no protocol lines — not even heartbeats — for
//!   `wedge_timeout`) is killed and treated as a crash;
//! - more than `max_restarts` replacements aborts the orchestration
//!   with the journal intact, so `--resume` continues where it stopped;
//! - killing the *orchestrator* itself at any instant is recoverable
//!   the same way: the journal is flushed per cell.

use std::collections::BTreeSet;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mlrl_engine::report::{escape_for_header, merge_canonical_streams};
use mlrl_engine::run::scheduled_jobs;
use mlrl_engine::spec::CampaignSpec;

use crate::journal::Journal;
use crate::plan::{plan_assignments, spec_digest};
use crate::progress::{Progress, WorkerState};
use crate::protocol::{parse_line, WorkerEvent};

/// Everything `mlrl orchestrate` decides before handing off to
/// [`orchestrate`].
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Campaign spec file the workers (re-)read.
    pub spec_path: PathBuf,
    /// Run directory holding the journal (and the default cache dir).
    pub run_dir: PathBuf,
    /// Continue a previous orchestration's journal instead of starting
    /// fresh.
    pub resume: bool,
    /// Worker processes to spawn.
    pub workers: usize,
    /// Worker command prefix (e.g. `[<mlrl binary>, "worker"]`); the
    /// spec path and per-worker flags are appended.
    pub worker_cmd: Vec<String>,
    /// Shared content-addressed artifact cache dir; defaults to
    /// `<run_dir>/cache` (sound to share: artifacts are
    /// content-addressed, so co-located workers warm each other).
    pub cache_dir: Option<PathBuf>,
    /// Total spill budget in bytes for the shared cache dir
    /// (`--cache-cap`; LRU eviction). Split evenly across the `workers`
    /// processes — each worker's LRU index tracks only its own writes,
    /// so handing every process the full budget would bound the shared
    /// directory at `workers × cap` instead of `cap`. The resulting
    /// bound is approximate (a worker cannot evict a sibling's files),
    /// but the budget, not a multiple of it, is the growth target.
    pub cache_cap: Option<u64>,
    /// In-process threads per worker (process-level parallelism is the
    /// point, so the default is 1).
    pub worker_threads: usize,
    /// Worker heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Silence window after which a worker counts as wedged.
    pub wedge_timeout: Duration,
    /// Replacement workers allowed before the orchestration aborts.
    pub max_restarts: usize,
    /// Whether to render the live progress line.
    pub progress: bool,
    /// Run workers with `--telemetry` and aggregate their streamed
    /// metrics payloads into `<run_dir>/metrics.json`. Requires the
    /// supervisor's own `mlrl_obs` sink to be enabled for trace lanes.
    pub telemetry: bool,
    /// Keep 1-in-N hot-class trace events in every worker
    /// (`--trace-sample`, forwarded verbatim); `None` keeps everything.
    pub trace_sample: Option<u64>,
    /// Optimizer-level token (`"o2"`) forwarded to every worker as
    /// `--opt-level`, overriding the spec file's `opt_level` exactly as
    /// the same flag does on `mlrl campaign` — so a sharded run stays
    /// byte-identical to the unsharded one. `None` leaves the spec file
    /// in charge.
    pub opt_level: Option<String>,
}

impl OrchestratorConfig {
    /// Defaults for a local orchestration of `spec_path` under
    /// `run_dir`; the caller must still fill in `worker_cmd`.
    pub fn new(spec_path: impl Into<PathBuf>, run_dir: impl Into<PathBuf>) -> Self {
        Self {
            spec_path: spec_path.into(),
            run_dir: run_dir.into(),
            resume: false,
            workers: 2,
            worker_cmd: Vec::new(),
            cache_dir: None,
            cache_cap: None,
            worker_threads: 1,
            heartbeat_ms: 1000,
            wedge_timeout: Duration::from_secs(30),
            max_restarts: 3,
            progress: true,
            telemetry: false,
            trace_sample: None,
            opt_level: None,
        }
    }
}

/// What an orchestration accomplished.
#[derive(Debug, Clone)]
pub struct OrchestrationOutcome {
    /// The merged canonical JSON-lines stream — byte-identical to
    /// `mlrl campaign <spec> --canonical` on one process.
    pub canonical: String,
    /// Campaign name from the spec.
    pub campaign: String,
    /// Total grid cells.
    pub cells: usize,
    /// Cells replayed from the journal (resume).
    pub resumed_cells: usize,
    /// Cells executed by workers this orchestration.
    pub executed_cells: usize,
    /// Cells whose record carries a failed status.
    pub failed_cells: usize,
    /// Replacement workers spawned after crashes/wedges.
    pub restarts: usize,
    /// Worker processes spawned in total.
    pub workers_spawned: usize,
    /// End-to-end wall-clock.
    pub wall: Duration,
    /// Fleet-wide metrics rollup as one-line JSON (workers' streamed
    /// payloads folded with the supervisor's own counters); `Some` only
    /// when the config asked for telemetry. Also written to
    /// `<run_dir>/metrics.json`.
    pub metrics_json: Option<String>,
}

/// One supervised worker process.
struct Slot {
    child: Child,
    pending: BTreeSet<usize>,
    last_seen: Instant,
    alive: bool,
    /// Kill already sent (wedge); suppresses double-kills.
    killing: bool,
    /// Trace lane for this process (0 when telemetry is off).
    lane: u64,
    /// Spawn time — the worker's lifecycle span start.
    spawned: Instant,
    /// The in-flight cell and when its `start` line arrived.
    running: Option<(usize, Instant)>,
    /// Latest cumulative metrics payload streamed by this process.
    metrics: Option<mlrl_obs::Metrics>,
    /// Shift (supervisor trace micros) applied to this worker's
    /// streamed trace timestamps, derived from the `hello` epoch
    /// handshake; `None` until (unless) a telemetry hello arrives.
    epoch_offset_us: Option<i64>,
}

enum Msg {
    Event(usize, WorkerEvent),
    /// One line of a worker's stderr (piped so the renderer can keep
    /// the live progress line intact around it).
    Stderr(String),
    Eof(usize),
    Tick,
}

/// Runs a full orchestration; see the module docs for the failure model.
///
/// # Errors
///
/// Returns a message on spec/journal/spawn errors, on exceeding the
/// restart budget, or on a final record set that does not merge into a
/// complete canonical stream. The journal survives every error path, so
/// a failed orchestration is resumable.
pub fn orchestrate(cfg: &OrchestratorConfig) -> Result<OrchestrationOutcome, String> {
    let started = Instant::now();
    let spec_text = std::fs::read_to_string(&cfg.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg.spec_path.display()))?;
    let spec =
        CampaignSpec::parse(&spec_text).map_err(|e| format!("{}: {e}", cfg.spec_path.display()))?;
    let jobs = scheduled_jobs(&spec);
    let cost_of = {
        let mut costs = vec![1u64; jobs.len()];
        for job in &jobs {
            costs[job.index] = job.cost();
        }
        costs
    };

    let mut journal = Journal::open(
        &cfg.run_dir,
        &spec.name,
        jobs.len(),
        spec_digest(&spec_text),
        cfg.resume,
    )?;
    let resumed_cells = journal.len();
    let resumed_cost: u64 = journal.completed().keys().map(|&i| cost_of[i]).sum();
    let mut progress = Progress::new(
        jobs.len(),
        cost_of.iter().sum(),
        resumed_cells,
        resumed_cost,
        cfg.progress,
    );

    mlrl_obs::counter_add("orch.cells.total", jobs.len() as u64);
    mlrl_obs::counter_add("orch.cells.resumed", resumed_cells as u64);

    let assignments = plan_assignments(&jobs, journal.completed(), cfg.workers);
    let mut restarts = 0usize;
    let mut workers_spawned = 0usize;
    // Fleet-wide rollup: every slot's latest streamed payload (restarted
    // slots keep contributing the cells they finished before crashing).
    let mut fleet_metrics = mlrl_obs::Metrics::default();

    if !assignments.is_empty() {
        let (tx, rx) = mpsc::channel::<Msg>();
        let mut slots: Vec<Slot> = Vec::new();
        for cells in &assignments {
            let slot = spawn_worker(cfg, cells, slots.len(), &tx).inspect_err(|_| {
                kill_all(&mut slots);
            })?;
            progress.set_state(slots.len(), WorkerState::Idle);
            slots.push(slot);
            workers_spawned += 1;
        }
        // Ticker: drives wedge detection and progress refresh; exits when
        // the supervisor drops the receiver.
        {
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                std::thread::sleep(Duration::from_millis(200));
                if tx.send(Msg::Tick).is_err() {
                    break;
                }
            });
        }
        let mut last_live_write = Instant::now();

        while journal.len() < jobs.len() {
            let msg = rx
                .recv()
                .map_err(|_| "supervisor channel closed unexpectedly".to_owned())?;
            match msg {
                Msg::Event(id, event) => {
                    // Heartbeat latency is the silence window this line
                    // just ended — measured before refreshing liveness.
                    let gap = slots[id].last_seen.elapsed();
                    slots[id].last_seen = Instant::now();
                    match event {
                        WorkerEvent::Hello { epoch_us, .. } => {
                            if let Some(worker_wall) = epoch_us {
                                note_epoch_offset(&mut slots[id], worker_wall);
                            }
                        }
                        WorkerEvent::Started { index } => {
                            slots[id].running = Some((index, Instant::now()));
                            progress.set_state(id, WorkerState::Running(index));
                        }
                        WorkerEvent::Done { index, record } => {
                            if let Err(e) = journal.record(index, &record) {
                                kill_all(&mut slots);
                                return Err(e);
                            }
                            slots[id].pending.remove(&index);
                            let cost = cost_of.get(index).copied().unwrap_or(1);
                            // The start→done window is the cell's wall
                            // time: a trace span on the worker's lane and
                            // the ETA's measured-throughput signal.
                            if let Some((started_index, started_at)) = slots[id].running.take() {
                                if started_index == index {
                                    let wall = started_at.elapsed();
                                    mlrl_obs::record_complete(
                                        format!("cell {index}"),
                                        slots[id].lane,
                                        started_at,
                                        wall,
                                    );
                                    mlrl_obs::hist_record(
                                        "orch.cell_wall_us",
                                        wall.as_micros() as u64,
                                    );
                                    progress.note_cell_timing(cost, wall);
                                }
                            }
                            progress.note_done(cost);
                            progress.emit(false);
                        }
                        WorkerEvent::Heartbeat => {
                            mlrl_obs::counter_add("orch.heartbeats", 1);
                            mlrl_obs::gauge_set("orch.heartbeat.gap_ms", gap.as_secs_f64() * 1e3);
                        }
                        WorkerEvent::Metrics { payload } => {
                            if let Some(m) = mlrl_obs::Metrics::parse(&payload) {
                                slots[id].metrics = Some(m);
                            }
                        }
                        WorkerEvent::Trace { payload } => {
                            merge_worker_trace(&slots[id], id, &payload);
                        }
                        WorkerEvent::Bye { metrics, .. } => {
                            if let Some(m) = metrics.as_deref().and_then(mlrl_obs::Metrics::parse) {
                                slots[id].metrics = Some(m);
                            }
                            progress.set_state(id, WorkerState::Done);
                        }
                    }
                }
                Msg::Stderr(line) => {
                    // Worker stderr rides the renderer so it cannot
                    // splice into a live `\r`-rewritten progress line.
                    progress.passthrough(&line);
                }
                Msg::Eof(id) => {
                    let _ = slots[id].child.wait();
                    slots[id].alive = false;
                    mlrl_obs::record_complete(
                        format!("worker {id}"),
                        slots[id].lane,
                        slots[id].spawned,
                        slots[id].spawned.elapsed(),
                    );
                    if slots[id].pending.is_empty() {
                        progress.set_state(id, WorkerState::Done);
                        continue;
                    }
                    // Crash or wedge-kill with work left: restart on the
                    // remainder.
                    progress.set_state(id, WorkerState::Crashed);
                    mlrl_obs::counter_add("orch.restarts", 1);
                    mlrl_obs::instant("restart", slots[id].lane);
                    restarts += 1;
                    if restarts > cfg.max_restarts {
                        kill_all(&mut slots);
                        progress.finish();
                        return Err(format!(
                            "worker crashed and the restart budget ({}) is exhausted; \
                             journal retained — continue with --resume {}",
                            cfg.max_restarts,
                            cfg.run_dir.display()
                        ));
                    }
                    let remainder: Vec<usize> = slots[id].pending.iter().copied().collect();
                    progress.passthrough(&format!(
                        "[mlrl orchestrate] worker {id} lost with {} cell(s) left; \
                         restarting as worker {} (restart {restarts}/{})",
                        remainder.len(),
                        slots.len(),
                        cfg.max_restarts
                    ));
                    let slot =
                        spawn_worker(cfg, &remainder, slots.len(), &tx).inspect_err(|_| {
                            kill_all(&mut slots);
                        })?;
                    progress.set_state(slots.len(), WorkerState::Idle);
                    slots.push(slot);
                    workers_spawned += 1;
                }
                Msg::Tick => {
                    let mut wedged: Vec<usize> = Vec::new();
                    for (id, slot) in slots.iter_mut().enumerate() {
                        if slot.alive
                            && !slot.killing
                            && slot.last_seen.elapsed() > cfg.wedge_timeout
                        {
                            slot.killing = true;
                            mlrl_obs::counter_add("orch.wedges", 1);
                            mlrl_obs::instant("wedge", slot.lane);
                            let _ = slot.child.kill(); // EOF follows; crash path restarts
                            wedged.push(id);
                        }
                    }
                    for id in wedged {
                        progress.passthrough(&format!(
                            "[mlrl orchestrate] worker {id} silent for {:?}; killing as wedged",
                            cfg.wedge_timeout
                        ));
                    }
                    progress.emit(false);
                    // Live observability files for `mlrl top`: refreshed
                    // about once a second, written tmp+rename so a tailing
                    // reader never sees a torn file. Best-effort — a full
                    // disk must not kill the campaign.
                    if last_live_write.elapsed() >= Duration::from_millis(900) {
                        last_live_write = Instant::now();
                        write_fleet_json(cfg, &slots, jobs.len(), journal.len(), progress.eta());
                        if cfg.telemetry {
                            let mut live = fold_fleet_slots(&slots);
                            live.merge(&mlrl_obs::snapshot());
                            write_atomic(&cfg.run_dir.join("metrics.json"), &live.to_json());
                        }
                    }
                }
            }
        }
        // Every cell is journaled, but the last-finishing worker's
        // trailing `metrics`/`bye` lines land *after* its final `done`:
        // keep draining until each live worker's reader signals EOF, so
        // the fleet rollup and worker lifecycle spans stay complete.
        let mut open = slots.iter().filter(|s| s.alive).count();
        while open > 0 {
            match rx.recv() {
                Ok(Msg::Event(id, WorkerEvent::Metrics { payload })) => {
                    if let Some(m) = mlrl_obs::Metrics::parse(&payload) {
                        slots[id].metrics = Some(m);
                    }
                }
                // The final trace flush precedes `bye` — an explicit arm
                // here, or the catch-all below would silently drop it.
                Ok(Msg::Event(id, WorkerEvent::Trace { payload })) => {
                    merge_worker_trace(&slots[id], id, &payload);
                }
                Ok(Msg::Event(id, WorkerEvent::Bye { metrics, .. })) => {
                    if let Some(m) = metrics.as_deref().and_then(mlrl_obs::Metrics::parse) {
                        slots[id].metrics = Some(m);
                    }
                    progress.set_state(id, WorkerState::Done);
                }
                Ok(Msg::Stderr(line)) => progress.passthrough(&line),
                Ok(Msg::Eof(id)) => {
                    let _ = slots[id].child.wait();
                    slots[id].alive = false;
                    mlrl_obs::record_complete(
                        format!("worker {id}"),
                        slots[id].lane,
                        slots[id].spawned,
                        slots[id].spawned.elapsed(),
                    );
                    progress.set_state(id, WorkerState::Done);
                    open -= 1;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        // Flush any worker stderr that arrived after the last EOF
        // (inherited stderr used to reach the terminal directly).
        for msg in rx.try_iter() {
            if let Msg::Stderr(line) = msg {
                progress.passthrough(&line);
            }
        }
        fleet_metrics = fold_fleet_slots(&slots);
        // Final fleet snapshot so `mlrl top` on a finished run dir shows
        // settled per-worker states instead of the last live tick.
        write_fleet_json(cfg, &slots, jobs.len(), journal.len(), progress.eta());
        progress.emit(true);
        progress.finish();
    }

    mlrl_obs::counter_add("orch.workers.spawned", workers_spawned as u64);

    // The fleet rollup: workers' streamed payloads folded with the
    // supervisor's own counters/gauges, persisted beside the journal.
    let metrics_json = if cfg.telemetry {
        fleet_metrics.merge(&mlrl_obs::snapshot());
        let json = fleet_metrics.to_json();
        let path = cfg.run_dir.join("metrics.json");
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        // The merged timeline: workers' streamed spans on `w<slot>/`
        // lanes interleaved with the supervisor's own `orch/` events.
        let trace_path = cfg.run_dir.join("trace.json");
        mlrl_obs::write_trace_json(&trace_path)
            .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        Some(json)
    } else {
        None
    };

    // The in-process merge: replay the journal through the same
    // validator shard merging uses, proving the record set is complete
    // and gap-free, and emitting the exact canonical unsharded bytes.
    let mut stream = format!(
        "{{\"campaign\":\"{}\",\"jobs\":{}}}\n",
        escape_for_header(&spec.name),
        journal.len()
    );
    for line in journal.completed().values() {
        stream.push_str(line);
        stream.push('\n');
    }
    let canonical = merge_canonical_streams(&[stream])?;
    let failed_cells = journal
        .completed()
        .values()
        .filter(|line| line.contains("\"status\":\"failed\""))
        .count();

    Ok(OrchestrationOutcome {
        canonical,
        campaign: spec.name.clone(),
        cells: jobs.len(),
        resumed_cells,
        executed_cells: journal.len() - resumed_cells,
        failed_cells,
        restarts,
        workers_spawned,
        wall: started.elapsed(),
        metrics_json,
    })
}

/// Fix the slot's trace-timestamp shift from its telemetry hello: the
/// worker reports the wall clock at which it fixed its trace epoch, and
/// the difference from the supervisor's own epoch wall clock is the
/// shift between the two trace clocks. The shift is clamped to
/// `[0, hello receipt]` — a worker's epoch cannot predate the
/// supervisor's nor postdate its hello's arrival, so anything outside
/// that window is clock skew, surfaced as the `orch.clock_skew_us`
/// gauge (max across the fleet).
fn note_epoch_offset(slot: &mut Slot, worker_wall_us: u64) {
    let recv_us = mlrl_obs::micros_since_epoch(Instant::now()) as i64;
    let raw = worker_wall_us as i64 - mlrl_obs::epoch_unix_micros() as i64;
    let clamped = raw.clamp(0, recv_us);
    slot.epoch_offset_us = Some(clamped);
    mlrl_obs::gauge_max("orch.clock_skew_us", (raw - clamped).abs() as f64);
}

/// Merge one streamed trace chunk into the supervisor's sink under the
/// slot's `w<id>/` lane namespace, shifted onto the supervisor's
/// timeline by the slot's epoch offset. Malformed chunks — e.g. the
/// truncated final flush of a killed worker — are counted and dropped;
/// they must never corrupt the merged trace.
fn merge_worker_trace(slot: &Slot, id: usize, payload: &str) {
    if !mlrl_obs::enabled() {
        return;
    }
    let offset = slot.epoch_offset_us.unwrap_or(0);
    if !mlrl_obs::merge_trace_chunk(payload, &format!("w{id}/"), offset) {
        mlrl_obs::counter_add("orch.trace.rejected", 1);
    }
}

/// Fold every slot's latest streamed rollup into one fleet rollup.
/// Gauges are max-merged, so same-named per-worker gauges (every worker
/// process reports `pool.worker0.utilization`) would collapse to a
/// single fleet-wide value — namespace each slot's gauges by worker id
/// before folding; counters, span stats, and histograms merge
/// additively and need no prefix.
fn fold_fleet_slots(slots: &[Slot]) -> mlrl_obs::Metrics {
    let mut fleet = mlrl_obs::Metrics::default();
    for (id, slot) in slots.iter().enumerate() {
        if let Some(m) = &slot.metrics {
            let mut namespaced = m.clone();
            namespaced.gauges = m
                .gauges
                .iter()
                .map(|(k, v)| (format!("w{id}.{k}"), *v))
                .collect();
            fleet.merge(&namespaced);
        }
    }
    fleet
}

/// Write `content` (newline-terminated) to `path` via a sibling temp
/// file and rename, so a concurrent reader (`mlrl top`) never observes
/// a torn write. Best-effort: errors are swallowed — live observability
/// must never kill the campaign.
fn write_atomic(path: &std::path::Path, content: &str) {
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, format!("{content}\n")).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// The live fleet snapshot `mlrl top` tails: campaign progress, blended
/// ETA, and per-slot state/heartbeat-age/in-flight cell, as one line of
/// JSON in `<run_dir>/fleet.json`. Written on a ~1s throttle during the
/// run and once more at the end (telemetry on or off — it derives from
/// protocol traffic, not from worker metrics).
fn write_fleet_json(
    cfg: &OrchestratorConfig,
    slots: &[Slot],
    cells_total: usize,
    cells_done: usize,
    eta: Option<Duration>,
) {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64;
    let mut out = format!(
        "{{\"updated_unix_ms\":{unix_ms},\"cells_total\":{cells_total},\
         \"cells_done\":{cells_done},\"eta_s\":"
    );
    match eta {
        Some(d) => out.push_str(&d.as_secs().to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"workers\":[");
    for (id, slot) in slots.iter().enumerate() {
        if id > 0 {
            out.push(',');
        }
        let state = if !slot.alive {
            if slot.pending.is_empty() {
                "done"
            } else {
                "crashed"
            }
        } else if slot.killing {
            "wedged"
        } else if slot.running.is_some() {
            "running"
        } else if slot.pending.is_empty() {
            "draining"
        } else {
            "idle"
        };
        out.push_str(&format!(
            "{{\"id\":{id},\"state\":\"{state}\",\"pending\":{},\"hb_ms\":{}",
            slot.pending.len(),
            slot.last_seen.elapsed().as_millis()
        ));
        if let Some((cell, since)) = slot.running {
            out.push_str(&format!(
                ",\"cell\":{cell},\"cell_ms\":{}",
                since.elapsed().as_millis()
            ));
        }
        out.push('}');
    }
    out.push_str("]}");
    write_atomic(&cfg.run_dir.join("fleet.json"), &out);
}

/// Spawns one worker process over `cells` and its stdout reader thread.
fn spawn_worker(
    cfg: &OrchestratorConfig,
    cells: &[usize],
    id: usize,
    tx: &mpsc::Sender<Msg>,
) -> Result<Slot, String> {
    let (program, prefix) = cfg
        .worker_cmd
        .split_first()
        .ok_or("orchestrator config lists no worker command")?;
    let cache_dir = cfg
        .cache_dir
        .clone()
        .unwrap_or_else(|| cfg.run_dir.join("cache"));
    let csv: Vec<String> = cells.iter().map(usize::to_string).collect();
    let mut command = Command::new(program);
    command
        .args(prefix)
        .arg(&cfg.spec_path)
        .arg("--cells")
        .arg(csv.join(","))
        .arg("--threads")
        .arg(cfg.worker_threads.max(1).to_string())
        .arg("--heartbeat-ms")
        .arg(cfg.heartbeat_ms.to_string())
        .arg("--cache-dir")
        .arg(&cache_dir);
    if let Some(cap) = cfg.cache_cap {
        // Each worker polices only its own writes: share out the budget
        // so the directory's growth target is `cap`, not `workers × cap`.
        let share = (cap / cfg.workers.max(1) as u64).max(1);
        command.arg("--cache-cap").arg(share.to_string());
    }
    if cfg.telemetry {
        command.arg("--telemetry");
    }
    if let Some(n) = cfg.trace_sample {
        command.arg("--trace-sample").arg(n.to_string());
    }
    if let Some(level) = &cfg.opt_level {
        command.arg("--opt-level").arg(level);
    }
    // Worker stderr is piped, not inherited: the reader thread feeds it
    // through the supervisor's renderer line-by-line so passthrough
    // cannot splice into the live `\r`-rewritten progress line.
    let mut child = command
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn worker `{program}`: {e}"))?;
    let stdout = child
        .stdout
        .take()
        .ok_or("worker stdout was not captured")?;
    let stderr = child
        .stderr
        .take()
        .ok_or("worker stderr was not captured")?;
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = std::io::BufReader::new(stderr);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx.send(Msg::Stderr(line)).is_err() {
                    return;
                }
            }
        });
    }
    let tx = tx.clone();
    std::thread::spawn(move || {
        let reader = std::io::BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some(event) = parse_line(&line) {
                if tx.send(Msg::Event(id, event)).is_err() {
                    return;
                }
            }
        }
        let _ = tx.send(Msg::Eof(id));
    });
    // Supervisor-synthesized spans live under the `orch/` lane prefix;
    // real worker spans stream in under `w<slot>/`. The disjoint
    // prefixes are the guard against lane-label collisions in the
    // merged timeline.
    let lane = if mlrl_obs::enabled() {
        mlrl_obs::lane(&format!("orch/worker-{id}"))
    } else {
        0
    };
    Ok(Slot {
        child,
        pending: cells.iter().copied().collect(),
        last_seen: Instant::now(),
        alive: true,
        killing: false,
        lane,
        spawned: Instant::now(),
        running: None,
        metrics: None,
        epoch_offset_us: None,
    })
}

/// Best-effort kill of every live worker (error paths).
fn kill_all(slots: &mut [Slot]) {
    for slot in slots {
        if slot.alive {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
            slot.alive = false;
        }
    }
}
