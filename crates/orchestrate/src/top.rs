//! `mlrl top` — the live fleet console.
//!
//! Tails a run directory's observability files and renders a refreshing
//! fleet view: campaign progress with the supervisor's blended ETA,
//! per-worker state / heartbeat age / utilization with stale-worker
//! highlighting, p50/p90/p99 cell latency, cache hit rates, process
//! memory, and the slowest in-flight cells. Three sources, each written
//! by the supervisor ([`crate::supervise`]):
//!
//! - `journal.jsonl` — ground truth for progress (required; every run
//!   has one),
//! - `fleet.json` — the ~1s live snapshot of per-slot protocol state
//!   (optional; older runs predate it),
//! - `metrics.json` — the fleet telemetry rollup (optional; only
//!   written under `--telemetry`).
//!
//! Everything optional degrades to a note, never an error, so `mlrl
//! top` works on any run dir from any mlrl version. `--once` emits a
//! single plain snapshot for scripts and CI; live mode redraws until
//! the journal completes.

use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use mlrl_obs::{json, Metrics};

use crate::journal::{record_index, JOURNAL_FILE};

/// Knobs for [`render_top`] / [`run_top`].
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Redraw interval for live mode, milliseconds.
    pub refresh_ms: u64,
    /// Heartbeat age beyond which a worker row is flagged `STALE`.
    pub stale_ms: u64,
    /// Slowest in-flight cells to list.
    pub top_k: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        Self {
            refresh_ms: 1000,
            stale_ms: 5000,
            top_k: 3,
        }
    }
}

/// Journal facts: campaign name, grid size, completed cells.
struct JournalView {
    campaign: String,
    jobs: usize,
    done: usize,
}

fn read_journal(run_dir: &Path) -> Result<JournalView, String> {
    let path = run_dir.join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("no journal at {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let doc = json::parse(header).ok_or_else(|| format!("unreadable journal header: {header}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| format!("unreadable journal header: {header}"))?;
    let campaign = obj
        .get("campaign")
        .and_then(json::Value::as_str)
        .unwrap_or("?")
        .to_owned();
    let jobs = obj.get("jobs").and_then(json::Value::as_f64).unwrap_or(0.0) as usize;
    let done = lines.filter(|l| record_index(l).is_some()).count();
    Ok(JournalView {
        campaign,
        jobs,
        done,
    })
}

/// One worker row of `fleet.json`.
struct FleetWorker {
    id: u64,
    state: String,
    pending: u64,
    hb_ms: u64,
    cell: Option<u64>,
    cell_ms: Option<u64>,
}

/// Parsed `fleet.json` (see [`crate::supervise`] for the writer).
struct Fleet {
    updated_unix_ms: u64,
    eta_s: Option<u64>,
    workers: Vec<FleetWorker>,
}

fn read_fleet(run_dir: &Path) -> Option<Fleet> {
    let text = std::fs::read_to_string(run_dir.join("fleet.json")).ok()?;
    let doc = json::parse(text.trim())?;
    let obj = doc.as_object()?;
    let num = |v: &json::Value| v.as_f64().map(|n| n as u64);
    let mut workers = Vec::new();
    for w in obj.get("workers")?.as_array()? {
        let w = w.as_object()?;
        workers.push(FleetWorker {
            id: num(w.get("id")?)?,
            state: w.get("state")?.as_str()?.to_owned(),
            pending: num(w.get("pending")?)?,
            hb_ms: num(w.get("hb_ms")?)?,
            cell: w.get("cell").and_then(num),
            cell_ms: w.get("cell_ms").and_then(num),
        });
    }
    Some(Fleet {
        updated_unix_ms: num(obj.get("updated_unix_ms")?)?,
        eta_s: obj.get("eta_s").and_then(num),
        workers,
    })
}

fn read_metrics(run_dir: &Path) -> Option<Metrics> {
    let text = std::fs::read_to_string(run_dir.join("metrics.json")).ok()?;
    Metrics::parse(text.trim())
}

fn fmt_secs(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1e3)
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2}GB", b / (1024.0 * 1024.0 * 1024.0))
    } else {
        format!("{:.1}MB", b / (1024.0 * 1024.0))
    }
}

/// Mean utilization of worker `id`'s pool threads, from the namespaced
/// `w<id>.pool.worker<k>.utilization` gauges in the fleet rollup.
fn worker_utilization(metrics: &Metrics, id: u64) -> Option<f64> {
    let prefix = format!("w{id}.pool.worker");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (k, v) in &metrics.gauges {
        if k.starts_with(&prefix) && k.ends_with(".utilization") {
            sum += v;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Render one plain-text snapshot of the run. Journal absence is the
/// only error; every other missing source degrades to a note.
pub fn render_top(run_dir: &Path, opts: &TopOptions) -> Result<String, String> {
    let journal = read_journal(run_dir)?;
    let fleet = read_fleet(run_dir);
    let metrics = read_metrics(run_dir);
    let mut out = String::new();

    // Header: progress, ETA, snapshot freshness.
    let pct = if journal.jobs > 0 {
        journal.done as f64 * 100.0 / journal.jobs as f64
    } else {
        100.0
    };
    out.push_str(&format!(
        "mlrl top · campaign \"{}\" · {}/{} cells ({pct:.0}%)",
        journal.campaign, journal.done, journal.jobs
    ));
    if let Some(f) = &fleet {
        if journal.done < journal.jobs {
            match f.eta_s {
                Some(s) => out.push_str(&format!(" · ETA {s}s")),
                None => out.push_str(" · ETA -"),
            }
        }
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64;
        let age = now_ms.saturating_sub(f.updated_unix_ms);
        out.push_str(&format!(" · updated {} ago", fmt_secs(age)));
    }
    out.push('\n');

    // Worker rows.
    match &fleet {
        Some(f) => {
            out.push_str("workers\n");
            for w in &f.workers {
                let cell = match (w.cell, w.cell_ms) {
                    (Some(c), Some(ms)) => format!("cell #{c} ({})", fmt_secs(ms)),
                    (Some(c), None) => format!("cell #{c}"),
                    _ => "-".to_owned(),
                };
                let util = metrics
                    .as_ref()
                    .and_then(|m| worker_utilization(m, w.id))
                    .map(|u| format!("util {:.0}%", u * 100.0))
                    .unwrap_or_else(|| "util -".to_owned());
                // A finished worker's heartbeat age grows forever; only
                // flag staleness while it is supposed to be talking.
                let stale = matches!(w.state.as_str(), "running" | "idle" | "draining")
                    && w.hb_ms > opts.stale_ms;
                out.push_str(&format!(
                    "  w{:<3} {:<9} {:<18} hb {:<7} {:<9} pending {}{}\n",
                    w.id,
                    w.state,
                    cell,
                    fmt_secs(w.hb_ms),
                    util,
                    w.pending,
                    if stale { "  STALE" } else { "" }
                ));
            }
        }
        None => out.push_str("workers\n  (no fleet.json — run predates the live console)\n"),
    }

    match &metrics {
        Some(m) => {
            // Cell latency distribution: the supervisor's protocol-observed
            // wall times, falling back to worker-side cell spans.
            if let Some(h) = m
                .hists
                .get("orch.cell_wall_us")
                .filter(|h| h.count() > 0)
                .or_else(|| m.hists.get("cell").filter(|h| h.count() > 0))
            {
                out.push_str(&format!(
                    "cells   p50 {} · p90 {} · p99 {} · {} timed\n",
                    fmt_us(h.p50().unwrap_or(0)),
                    fmt_us(h.p90().unwrap_or(0)),
                    fmt_us(h.p99().unwrap_or(0)),
                    h.count()
                ));
            }
            let counter = |name: &str| m.counters.get(name).copied().unwrap_or(0);
            let (hits, misses) = (counter("cache.hits"), counter("cache.misses"));
            if hits + misses > 0 {
                out.push_str(&format!(
                    "cache   hits {:.1}% ({hits}/{})\n",
                    hits as f64 * 100.0 / (hits + misses) as f64,
                    hits + misses
                ));
            }
            // Memory/CPU: the fleet-wide maxima across the supervisor's own
            // gauges and every worker's namespaced ones.
            let max_gauge = |suffix: &str| {
                m.gauges
                    .iter()
                    .filter(|(k, _)| *k == suffix || k.ends_with(&format!(".{suffix}")))
                    .map(|(_, v)| *v)
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            let (rss, peak) = (
                max_gauge("proc.rss_bytes"),
                max_gauge("proc.rss_bytes.peak"),
            );
            if peak.is_finite() {
                out.push_str(&format!(
                    "memory  rss {} (peak {})",
                    if rss.is_finite() && !rss.eq(&peak) {
                        fmt_bytes(rss)
                    } else {
                        fmt_bytes(peak)
                    },
                    fmt_bytes(peak)
                ));
                let cpu = max_gauge("proc.cpu_ms");
                if cpu.is_finite() {
                    out.push_str(&format!(" · cpu {}", fmt_secs(cpu as u64)));
                }
                out.push('\n');
            }
        }
        None => out.push_str("(no metrics.json — run without --telemetry)\n"),
    }

    // Slowest in-flight cells, from the live fleet snapshot.
    if let Some(f) = &fleet {
        let mut inflight: Vec<(u64, u64, u64)> = f
            .workers
            .iter()
            .filter(|w| w.state == "running")
            .filter_map(|w| Some((w.cell_ms?, w.cell?, w.id)))
            .collect();
        inflight.sort_unstable_by(|a, b| b.cmp(a));
        if !inflight.is_empty() {
            out.push_str("slowest in-flight\n");
            for (ms, cell, id) in inflight.into_iter().take(opts.top_k) {
                out.push_str(&format!("  #{cell:<5} w{id}  {}\n", fmt_secs(ms)));
            }
        }
    }

    Ok(out)
}

/// The live console: clears the screen and re-renders every
/// `refresh_ms` until the journal reports every cell done (then leaves
/// the final frame up). With `once`, prints a single plain snapshot —
/// the scriptable/CI mode.
pub fn run_top(run_dir: &Path, opts: &TopOptions, once: bool) -> Result<(), String> {
    if once {
        print!("{}", render_top(run_dir, opts)?);
        return Ok(());
    }
    loop {
        let frame = render_top(run_dir, opts)?;
        // ANSI clear + home; the frame repaints in place.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let journal = read_journal(run_dir)?;
        if journal.jobs > 0 && journal.done >= journal.jobs {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.refresh_ms.max(100)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mlrl-top-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join(name), text).expect("write");
    }

    #[test]
    fn snapshot_renders_workers_latency_and_staleness() {
        let dir = tmp("full");
        write(
            &dir,
            "journal.jsonl",
            "{\"campaign\":\"demo\",\"jobs\":4,\"spec\":\"00\"}\n\
             {\"index\":0,\"benchmark\":\"FIR\"}\n\
             {\"index\":1,\"benchmark\":\"FIR\"}\n",
        );
        write(
            &dir,
            "fleet.json",
            "{\"updated_unix_ms\":1,\"cells_total\":4,\"cells_done\":2,\"eta_s\":7,\
             \"workers\":[\
             {\"id\":0,\"state\":\"running\",\"pending\":1,\"hb_ms\":200,\"cell\":2,\"cell_ms\":1500},\
             {\"id\":1,\"state\":\"idle\",\"pending\":1,\"hb_ms\":9000}]}\n",
        );
        let mut m = Metrics::default();
        m.gauges.insert("w0.pool.worker0.utilization".into(), 0.93);
        m.gauges
            .insert("w0.proc.rss_bytes.peak".into(), 64.0 * 1024.0 * 1024.0);
        let mut h = mlrl_obs::Histogram::default();
        for us in [900u64, 1_100, 2_000, 250_000] {
            h.record(us);
        }
        m.hists.insert("orch.cell_wall_us".into(), h);
        write(&dir, "metrics.json", &m.to_json());

        let text = render_top(&dir, &TopOptions::default()).expect("renders");
        assert!(text.contains("2/4 cells (50%)"), "{text}");
        assert!(text.contains("ETA 7s"), "{text}");
        assert!(text.contains("w0"), "{text}");
        assert!(text.contains("cell #2"), "{text}");
        assert!(text.contains("util 93%"), "{text}");
        // w1's heartbeat (9s) exceeds the default 5s staleness window.
        assert!(text.contains("STALE"), "{text}");
        assert!(
            text.contains("p50") && text.contains("p90") && text.contains("p99"),
            "{text}"
        );
        assert!(text.contains("peak 64.0MB"), "{text}");
        assert!(text.contains("slowest in-flight"), "{text}");
        assert!(text.contains("#2"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_side_files_degrade_to_notes_and_missing_journal_errors() {
        let dir = tmp("bare");
        write(
            &dir,
            "journal.jsonl",
            "{\"campaign\":\"demo\",\"jobs\":1,\"spec\":\"00\"}\n{\"index\":0,\"x\":1}\n",
        );
        let text = render_top(&dir, &TopOptions::default()).expect("renders");
        assert!(text.contains("1/1 cells (100%)"), "{text}");
        assert!(text.contains("no fleet.json"), "{text}");
        assert!(text.contains("no metrics.json"), "{text}");

        let empty = tmp("empty");
        let err = render_top(&empty, &TopOptions::default()).expect_err("no journal");
        assert!(err.contains("no journal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }
}
