//! Journal-aware worker planning.
//!
//! The engine's cache-aware schedule (cells sharing artifacts adjacent,
//! see `mlrl_engine::run::scheduled_jobs`) minus the journal's completed
//! cells, cut into `workers` cost-balanced *contiguous* chunks with the
//! very `partition_by_cost` that in-process chunk dealing and `--shard
//! i/n` use — so a worker process inherits the same locality guarantees
//! as an in-process pool worker, and a SAT-heavy stretch cannot
//! serialize one process. Re-planning after a crash or on resume is the
//! same function over the shrunken remainder.

use std::collections::BTreeMap;

use mlrl_engine::fnv::Fnv64;
use mlrl_engine::job::Job;
use mlrl_engine::pool::partition_by_cost;

/// Splits the not-yet-completed cells of `scheduled` (the engine's
/// schedule order) into up to `workers` cost-balanced contiguous
/// assignments of grid indices. Empty assignments are dropped — with
/// more workers than remaining cells, fewer processes spawn.
pub fn plan_assignments(
    scheduled: &[Job],
    completed: &BTreeMap<usize, String>,
    workers: usize,
) -> Vec<Vec<usize>> {
    let remaining: Vec<&Job> = scheduled
        .iter()
        .filter(|job| !completed.contains_key(&job.index))
        .collect();
    let costs: Vec<u64> = remaining.iter().map(|job| job.cost()).collect();
    partition_by_cost(&costs, workers.max(1))
        .into_iter()
        .map(|range| remaining[range].iter().map(|job| job.index).collect())
        .filter(|cells: &Vec<usize>| !cells.is_empty())
        .collect()
}

/// Content digest binding a journal to its spec: FNV-1a over the spec
/// file text.
pub fn spec_digest(spec_text: &str) -> u64 {
    Fnv64::new()
        .write_str("spec|")
        .write_str(spec_text)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlrl_engine::run::scheduled_jobs;
    use mlrl_engine::spec::{AttackKind, CampaignSpec, SchemeKind};

    fn spec() -> CampaignSpec {
        let mut spec = CampaignSpec::grid(
            &["FIR", "IIR"],
            &[SchemeKind::Assure, SchemeKind::Era],
            &[0.5],
        );
        spec.seeds = vec![1];
        spec.attacks = vec![AttackKind::FreqTable, AttackKind::None];
        spec
    }

    #[test]
    fn assignments_cover_remaining_cells_exactly_once() {
        let jobs = scheduled_jobs(&spec());
        let mut completed = BTreeMap::new();
        completed.insert(jobs[1].index, String::new());
        completed.insert(jobs[4].index, String::new());

        let assignments = plan_assignments(&jobs, &completed, 3);
        let mut seen: Vec<usize> = assignments.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut expected: Vec<usize> = jobs
            .iter()
            .map(|j| j.index)
            .filter(|i| !completed.contains_key(i))
            .collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
        assert!(assignments.len() <= 3);
        assert!(assignments.iter().all(|a| !a.is_empty()));
    }

    #[test]
    fn more_workers_than_cells_drops_empty_assignments() {
        let jobs = scheduled_jobs(&spec());
        let completed: BTreeMap<usize, String> = jobs
            .iter()
            .skip(2)
            .map(|j| (j.index, String::new()))
            .collect();
        let assignments = plan_assignments(&jobs, &completed, 8);
        assert_eq!(assignments.iter().flatten().count(), 2);
        assert!(assignments.len() <= 2);

        // Everything done: nothing to spawn.
        let all: BTreeMap<usize, String> = jobs.iter().map(|j| (j.index, String::new())).collect();
        assert!(plan_assignments(&jobs, &all, 4).is_empty());
    }

    #[test]
    fn spec_digests_separate_different_texts() {
        assert_eq!(spec_digest("a = 1"), spec_digest("a = 1"));
        assert_ne!(spec_digest("a = 1"), spec_digest("a = 2"));
    }
}
