//! The live progress line.
//!
//! One stderr line — `\r`-rewritten on a terminal, printed as discrete
//! throttled lines when stderr is a pipe (CI logs) — showing cells
//! done/total, each worker's state, and an ETA extrapolated from the
//! cost model: completed *cost* (SAT cells ~10× an attack-free cell)
//! over elapsed wall-clock predicts the remaining cost's duration far
//! better than a cell count would.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Display state of one worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Spawned, no cell started yet.
    Idle,
    /// Executing the cell with this grid index.
    Running(usize),
    /// Finished its whole assignment.
    Done,
    /// Crashed or wedged (its remainder moves to a restarted worker).
    Crashed,
}

impl WorkerState {
    fn glyph(self) -> String {
        match self {
            WorkerState::Idle => "idle".to_owned(),
            WorkerState::Running(index) => format!("#{index}"),
            WorkerState::Done => "done".to_owned(),
            WorkerState::Crashed => "crashed".to_owned(),
        }
    }
}

/// Tracker + renderer of the orchestration progress line.
pub struct Progress {
    total_cells: usize,
    total_cost: u64,
    done_cells: usize,
    done_cost: u64,
    resumed_cost: u64,
    workers: Vec<WorkerState>,
    started: Instant,
    last_emit: Option<Instant>,
    live: bool,
    enabled: bool,
    min_interval: Duration,
}

impl Progress {
    /// New tracker over `total_cells` with summed `total_cost`;
    /// `already_done` covers journal-resumed cells (their cost counts as
    /// instantaneous, so the ETA reflects only real remaining work).
    pub fn new(
        total_cells: usize,
        total_cost: u64,
        already_done_cells: usize,
        already_done_cost: u64,
        enabled: bool,
    ) -> Self {
        Self {
            total_cells,
            total_cost,
            done_cells: already_done_cells,
            done_cost: already_done_cost,
            resumed_cost: already_done_cost,
            workers: Vec::new(),
            started: Instant::now(),
            last_emit: None,
            live: std::io::stderr().is_terminal(),
            enabled,
            min_interval: Duration::from_millis(500),
        }
    }

    /// Registers worker slot `id` (slots appear as workers spawn,
    /// including restarts).
    pub fn set_state(&mut self, id: usize, state: WorkerState) {
        if self.workers.len() <= id {
            self.workers.resize(id + 1, WorkerState::Idle);
        }
        self.workers[id] = state;
    }

    /// Accounts one freshly completed cell of the given cost.
    pub fn note_done(&mut self, cost: u64) {
        self.done_cells += 1;
        self.done_cost += cost;
    }

    /// Cells completed so far (including resumed ones).
    pub fn done_cells(&self) -> usize {
        self.done_cells
    }

    /// The rendered progress line (without trailing newline).
    pub fn render(&self) -> String {
        let mut line = format!(
            "[mlrl orchestrate] {}/{} cells",
            self.done_cells, self.total_cells
        );
        if !self.workers.is_empty() {
            let states: Vec<String> = self
                .workers
                .iter()
                .enumerate()
                .map(|(id, s)| format!("w{id}:{}", s.glyph()))
                .collect();
            line.push_str(&format!(" · {}", states.join(" ")));
        }
        match self.eta() {
            Some(eta) => line.push_str(&format!(" · ETA {}s", eta.as_secs())),
            None => line.push_str(" · ETA -"),
        }
        line
    }

    /// Cost-model ETA: remaining cost scaled by the observed
    /// cost-per-second of this run. `None` until something completes
    /// live (resumed cells carry no timing signal).
    fn eta(&self) -> Option<Duration> {
        let live_cost = self.done_cost.saturating_sub(self.resumed_cost);
        if live_cost == 0 {
            return None;
        }
        let remaining = self.total_cost.saturating_sub(self.done_cost);
        let elapsed = self.started.elapsed();
        Some(Duration::from_secs_f64(
            elapsed.as_secs_f64() * remaining as f64 / live_cost as f64,
        ))
    }

    /// Emits the line to stderr, throttled unless `force`. On a terminal
    /// the line rewrites itself (`\r`); on a pipe it prints discrete
    /// newline-terminated lines so CI logs stay readable.
    pub fn emit(&mut self, force: bool) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last_emit {
                if now.duration_since(last) < self.min_interval {
                    return;
                }
            }
        }
        self.last_emit = Some(now);
        let mut err = std::io::stderr().lock();
        let _ = if self.live {
            write!(err, "\r\x1b[2K{}", self.render())
        } else {
            writeln!(err, "{}", self.render())
        };
        let _ = err.flush();
    }

    /// Terminates a live (`\r`) progress line so following stderr output
    /// starts on a fresh line.
    pub fn finish(&mut self) {
        if self.enabled && self.live && self.last_emit.is_some() {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_cells_workers_and_eta() {
        let mut p = Progress::new(10, 19, 2, 2, false);
        p.set_state(0, WorkerState::Running(7));
        p.set_state(1, WorkerState::Idle);
        let line = p.render();
        assert!(line.contains("2/10 cells"), "{line}");
        assert!(line.contains("w0:#7"), "{line}");
        assert!(line.contains("w1:idle"), "{line}");
        assert!(line.contains("ETA"), "{line}");

        p.note_done(10);
        p.set_state(0, WorkerState::Done);
        let line = p.render();
        assert!(line.contains("3/10 cells"), "{line}");
        assert!(line.contains("w0:done"), "{line}");
        // 12 of 19 cost units done: a numeric ETA exists now.
        assert!(!line.contains("ETA -"), "{line}");
        assert_eq!(p.done_cells(), 3);
    }
}
