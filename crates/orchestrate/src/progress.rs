//! The live progress line.
//!
//! One stderr line — `\r`-rewritten on a terminal, printed as discrete
//! throttled lines when stderr is a pipe (CI logs) — showing cells
//! done/total, each worker's state, and an ETA extrapolated from the
//! cost model: completed *cost* (SAT cells ~10× an attack-free cell)
//! over elapsed wall-clock predicts the remaining cost's duration far
//! better than a cell count would. Once enough cells have finished with
//! measured wall times ([`Progress::note_cell_timing`]) the ETA blends
//! the static model with the observed per-cost-unit rate, so it
//! converges on real throughput as evidence accumulates.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Display state of one worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Spawned, no cell started yet.
    Idle,
    /// Executing the cell with this grid index.
    Running(usize),
    /// Finished its whole assignment.
    Done,
    /// Crashed or wedged (its remainder moves to a restarted worker).
    Crashed,
}

impl WorkerState {
    fn glyph(self) -> String {
        match self {
            WorkerState::Idle => "idle".to_owned(),
            WorkerState::Running(index) => format!("#{index}"),
            WorkerState::Done => "done".to_owned(),
            WorkerState::Crashed => "crashed".to_owned(),
        }
    }
}

/// Tracker + renderer of the orchestration progress line.
pub struct Progress {
    total_cells: usize,
    total_cost: u64,
    done_cells: usize,
    done_cost: u64,
    resumed_cost: u64,
    workers: Vec<WorkerState>,
    started: Instant,
    last_emit: Option<Instant>,
    live: bool,
    enabled: bool,
    min_interval: Duration,
    /// Cells with a measured wall time, their summed cost, and their
    /// summed per-cell wall-clock (one worker each, so worker-seconds).
    measured_cells: usize,
    measured_cost: u64,
    measured_wall: Duration,
}

/// Measured cells needed before the ETA trusts observed timings at all;
/// also the half-weight point of the blend (at `k` measured cells the
/// model and the observation contribute equally).
const MEASURED_BLEND_K: usize = 3;

impl Progress {
    /// New tracker over `total_cells` with summed `total_cost`;
    /// `already_done` covers journal-resumed cells (their cost counts as
    /// instantaneous, so the ETA reflects only real remaining work).
    pub fn new(
        total_cells: usize,
        total_cost: u64,
        already_done_cells: usize,
        already_done_cost: u64,
        enabled: bool,
    ) -> Self {
        Self {
            total_cells,
            total_cost,
            done_cells: already_done_cells,
            done_cost: already_done_cost,
            resumed_cost: already_done_cost,
            workers: Vec::new(),
            started: Instant::now(),
            last_emit: None,
            live: std::io::stderr().is_terminal(),
            enabled,
            min_interval: Duration::from_millis(500),
            measured_cells: 0,
            measured_cost: 0,
            measured_wall: Duration::ZERO,
        }
    }

    /// Registers worker slot `id` (slots appear as workers spawn,
    /// including restarts).
    pub fn set_state(&mut self, id: usize, state: WorkerState) {
        if self.workers.len() <= id {
            self.workers.resize(id + 1, WorkerState::Idle);
        }
        self.workers[id] = state;
    }

    /// Accounts one freshly completed cell of the given cost.
    pub fn note_done(&mut self, cost: u64) {
        self.done_cells += 1;
        self.done_cost += cost;
    }

    /// Feeds one cell's observed wall-clock into the ETA blend. Callers
    /// pair this with [`Progress::note_done`] whenever they know how
    /// long the cell actually ran (the supervisor measures
    /// `start`→`done` per worker).
    pub fn note_cell_timing(&mut self, cost: u64, wall: Duration) {
        self.measured_cells += 1;
        self.measured_cost += cost.max(1);
        self.measured_wall += wall;
    }

    /// Cells completed so far (including resumed ones).
    pub fn done_cells(&self) -> usize {
        self.done_cells
    }

    /// The rendered progress line (without trailing newline).
    pub fn render(&self) -> String {
        let mut line = format!(
            "[mlrl orchestrate] {}/{} cells",
            self.done_cells, self.total_cells
        );
        if !self.workers.is_empty() {
            let states: Vec<String> = self
                .workers
                .iter()
                .enumerate()
                .map(|(id, s)| format!("w{id}:{}", s.glyph()))
                .collect();
            line.push_str(&format!(" · {}", states.join(" ")));
        }
        match self.eta() {
            Some(eta) => line.push_str(&format!(" · ETA {}s", eta.as_secs())),
            None => line.push_str(" · ETA -"),
        }
        line
    }

    /// Workers that can still absorb remaining cost (idle or running);
    /// at least 1 so the measured fleet rate stays defined.
    fn active_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|s| matches!(s, WorkerState::Idle | WorkerState::Running(_)))
            .count()
            .max(1)
    }

    /// Blended ETA. The static model (elapsed wall over completed live
    /// cost) is the only signal early on; once ≥[`MEASURED_BLEND_K`]
    /// cells carry measured wall times, the observed seconds-per-cost
    /// (divided across active workers) is blended in with weight
    /// `m / (m + k)`, so the estimate converges on real throughput as
    /// `m` grows. `None` until either signal exists.
    pub fn eta(&self) -> Option<Duration> {
        let remaining = self.total_cost.saturating_sub(self.done_cost);
        let live_cost = self.done_cost.saturating_sub(self.resumed_cost);
        let model =
            (live_cost > 0).then(|| self.started.elapsed().as_secs_f64() / live_cost as f64);
        let measured =
            (self.measured_cells >= MEASURED_BLEND_K && self.measured_cost > 0).then(|| {
                self.measured_wall.as_secs_f64()
                    / self.measured_cost as f64
                    / self.active_workers() as f64
            });
        let secs_per_cost = match (model, measured) {
            (Some(model), Some(measured)) => {
                let m = self.measured_cells as f64;
                let w = m / (m + MEASURED_BLEND_K as f64);
                w * measured + (1.0 - w) * model
            }
            (Some(model), None) => model,
            (None, Some(measured)) => measured,
            (None, None) => return None,
        };
        Some(Duration::from_secs_f64(secs_per_cost * remaining as f64))
    }

    /// Emits the line to stderr, throttled unless `force`. On a terminal
    /// the line rewrites itself (`\r`); on a pipe it prints discrete
    /// newline-terminated lines so CI logs stay readable.
    pub fn emit(&mut self, force: bool) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if !force {
            if let Some(last) = self.last_emit {
                if now.duration_since(last) < self.min_interval {
                    return;
                }
            }
        }
        self.last_emit = Some(now);
        let mut err = std::io::stderr().lock();
        let _ = if self.live {
            write!(err, "\r\x1b[2K{}", self.render())
        } else {
            writeln!(err, "{}", self.render())
        };
        let _ = err.flush();
    }

    /// Terminates a live (`\r`) progress line so following stderr output
    /// starts on a fresh line.
    pub fn finish(&mut self) {
        if self.enabled && self.live && self.last_emit.is_some() {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
        }
    }

    /// Prints foreign stderr output (worker passthrough, supervisor
    /// notices) without splicing into a live `\r`-rewritten progress
    /// line: clear the line, print whole lines, redraw. On a pipe this
    /// is a plain print — discrete lines never interleave mid-line.
    pub fn passthrough(&mut self, text: &str) {
        {
            let mut err = std::io::stderr().lock();
            if self.enabled && self.live && self.last_emit.is_some() {
                let _ = write!(err, "\r\x1b[2K");
            }
            for line in text.lines() {
                let _ = writeln!(err, "{line}");
            }
            let _ = err.flush();
        }
        if self.enabled && self.live && self.last_emit.is_some() {
            self.emit(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_cells_workers_and_eta() {
        let mut p = Progress::new(10, 19, 2, 2, false);
        p.set_state(0, WorkerState::Running(7));
        p.set_state(1, WorkerState::Idle);
        let line = p.render();
        assert!(line.contains("2/10 cells"), "{line}");
        assert!(line.contains("w0:#7"), "{line}");
        assert!(line.contains("w1:idle"), "{line}");
        assert!(line.contains("ETA"), "{line}");

        p.note_done(10);
        p.set_state(0, WorkerState::Done);
        let line = p.render();
        assert!(line.contains("3/10 cells"), "{line}");
        assert!(line.contains("w0:done"), "{line}");
        // 12 of 19 cost units done: a numeric ETA exists now.
        assert!(!line.contains("ETA -"), "{line}");
        assert_eq!(p.done_cells(), 3);
    }

    #[test]
    fn eta_blends_in_measured_cell_timings_once_enough_accumulate() {
        let mut p = Progress::new(10, 100, 0, 0, false);
        p.set_state(0, WorkerState::Running(0));
        p.set_state(1, WorkerState::Idle);

        // Fewer than k measured cells: no signal, ETA stays unknown
        // (done_cost is still 0, so the model has nothing either).
        p.note_cell_timing(10, Duration::from_secs(5));
        p.note_cell_timing(10, Duration::from_secs(5));
        assert!(p.render().contains("ETA -"), "{}", p.render());

        // Third measurement crosses the threshold: 30 cost units took 15
        // worker-seconds → 0.5 s/cost, across 2 active workers → 0.25
        // s/cost fleet-wide; 100 cost units remain → 25s.
        p.note_cell_timing(10, Duration::from_secs(5));
        assert_eq!(p.eta(), Some(Duration::from_secs_f64(25.0)));

        // A finished worker leaves the fleet: the same measurements now
        // predict serial execution — twice the ETA.
        p.set_state(1, WorkerState::Done);
        assert_eq!(p.eta(), Some(Duration::from_secs_f64(50.0)));
    }
}
