//! The line-delimited worker protocol.
//!
//! A worker process (`mlrl worker <spec> --cells ...`) speaks to its
//! supervisor exclusively through newline-terminated stdout lines:
//!
//! ```text
//! mlrl-worker v1 cells=3
//! start 7
//! done 7 {"index":7,"benchmark":...}
//! heartbeat
//! bye 3
//! ```
//!
//! `done` carries the cell's *canonical record line* verbatim — the
//! supervisor journals it byte-for-byte, which is what makes the merged
//! orchestrated report identical to a single-process run. `heartbeat`
//! lines flow on an interval so the supervisor can tell a wedged worker
//! (no lines at all) from one grinding through an expensive SAT cell.
//! Unknown lines are ignored (forward compatibility; stray prints must
//! not kill a campaign), and every emitter flushes per line.

/// Protocol revision spoken by [`hello_line`].
pub const PROTOCOL_VERSION: u32 = 1;

/// One parsed worker line.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// The worker came up and accepted its cell list.
    Hello {
        /// Protocol revision the worker speaks.
        version: u32,
        /// Number of cells it was assigned.
        cells: usize,
        /// Wall-clock UNIX micros at which the worker fixed its
        /// telemetry epoch (present under `--telemetry`). The
        /// supervisor uses it to shift the worker's streamed trace
        /// timestamps onto its own timeline.
        epoch_us: Option<u64>,
    },
    /// A cell is about to execute.
    Started {
        /// Grid (row-major) index of the cell.
        index: usize,
    },
    /// A cell completed (ok or failed) and this is its canonical record.
    Done {
        /// Grid (row-major) index of the cell.
        index: usize,
        /// The canonical record line, verbatim.
        record: String,
    },
    /// Liveness signal between cell events.
    Heartbeat,
    /// A cumulative telemetry rollup (emitted after each `done` when the
    /// worker runs with `--telemetry`, so a crashed worker's last
    /// payload still accounts for the cells it finished).
    Metrics {
        /// The worker's metrics snapshot as one-line JSON.
        payload: String,
    },
    /// An incremental trace-event chunk (emitted after each `done` plus
    /// a final flush before `bye` when the worker runs with
    /// `--telemetry`). The payload is an
    /// [`mlrl_obs::drain_trace_chunk`] JSON document; the supervisor
    /// merges it onto its own timeline. Supervisors predating this verb
    /// ignore the line.
    Trace {
        /// The drained trace chunk as one-line JSON.
        payload: String,
    },
    /// The worker finished its whole assignment.
    Bye {
        /// Cells it completed this run.
        completed: usize,
        /// Final telemetry rollup (present under `--telemetry`).
        metrics: Option<String>,
    },
}

/// Formats the `hello` line.
pub fn hello_line(cells: usize) -> String {
    format!("mlrl-worker v{PROTOCOL_VERSION} cells={cells}")
}

/// Formats a `hello` line carrying the worker's telemetry-epoch wall
/// clock. Readers predating the field drop the whole hello — which is
/// harmless (hello is a liveness nicety, not load-bearing) — so
/// workers only emit this form under `--telemetry`.
pub fn hello_line_with_epoch(cells: usize, epoch_us: u64) -> String {
    format!("mlrl-worker v{PROTOCOL_VERSION} cells={cells} epoch_us={epoch_us}")
}

/// Formats a `start` line.
pub fn started_line(index: usize) -> String {
    format!("start {index}")
}

/// Formats a `done` line around the cell's canonical record.
pub fn done_line(index: usize, record: &str) -> String {
    format!("done {index} {record}")
}

/// Formats the `heartbeat` line.
pub fn heartbeat_line() -> String {
    "heartbeat".to_owned()
}

/// Formats a `metrics` line around a one-line JSON telemetry rollup.
pub fn metrics_line(payload: &str) -> String {
    format!("metrics {payload}")
}

/// Formats a `trace` line around a one-line drained trace chunk.
pub fn trace_line(payload: &str) -> String {
    format!("trace {payload}")
}

/// Formats the `bye` line.
pub fn bye_line(completed: usize) -> String {
    format!("bye {completed}")
}

/// Formats a `bye` line carrying a final telemetry rollup. Readers
/// predating the payload parse the line as non-protocol and ignore it,
/// which is why workers only emit this form under `--telemetry`.
pub fn bye_line_with_metrics(completed: usize, payload: &str) -> String {
    format!("bye {completed} {payload}")
}

/// Parses one worker stdout line; `None` for anything that is not a
/// protocol line (ignored by the supervisor).
pub fn parse_line(line: &str) -> Option<WorkerEvent> {
    let line = line.trim_end();
    if line == "heartbeat" {
        return Some(WorkerEvent::Heartbeat);
    }
    if let Some(rest) = line.strip_prefix("mlrl-worker v") {
        let (version, rest) = rest.split_once(" cells=")?;
        let (cells, epoch_us) = match rest.split_once(' ') {
            Some((cells, tail)) => {
                // The only extension field so far; other tails would be
                // from a newer worker and drop the hello (harmless).
                (cells, Some(tail.strip_prefix("epoch_us=")?.parse().ok()?))
            }
            None => (rest, None),
        };
        return Some(WorkerEvent::Hello {
            version: version.parse().ok()?,
            cells: cells.parse().ok()?,
            epoch_us,
        });
    }
    if let Some(rest) = line.strip_prefix("start ") {
        return Some(WorkerEvent::Started {
            index: rest.parse().ok()?,
        });
    }
    if let Some(rest) = line.strip_prefix("done ") {
        let (index, record) = rest.split_once(' ')?;
        return Some(WorkerEvent::Done {
            index: index.parse().ok()?,
            record: record.to_owned(),
        });
    }
    if let Some(rest) = line.strip_prefix("metrics ") {
        return Some(WorkerEvent::Metrics {
            payload: rest.to_owned(),
        });
    }
    if let Some(rest) = line.strip_prefix("trace ") {
        return Some(WorkerEvent::Trace {
            payload: rest.to_owned(),
        });
    }
    if let Some(rest) = line.strip_prefix("bye ") {
        let (completed, metrics) = match rest.split_once(' ') {
            Some((n, payload)) => (n, Some(payload.to_owned())),
            None => (rest, None),
        };
        return Some(WorkerEvent::Bye {
            completed: completed.parse().ok()?,
            metrics,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip_through_the_parser() {
        assert_eq!(
            parse_line(&hello_line(12)),
            Some(WorkerEvent::Hello {
                version: PROTOCOL_VERSION,
                cells: 12,
                epoch_us: None
            })
        );
        assert_eq!(
            parse_line(&hello_line_with_epoch(12, 1_700_000_000_000_000)),
            Some(WorkerEvent::Hello {
                version: PROTOCOL_VERSION,
                cells: 12,
                epoch_us: Some(1_700_000_000_000_000)
            })
        );
        assert_eq!(
            parse_line(&started_line(7)),
            Some(WorkerEvent::Started { index: 7 })
        );
        let record = r#"{"index":7,"benchmark":"FIR"}"#;
        assert_eq!(
            parse_line(&done_line(7, record)),
            Some(WorkerEvent::Done {
                index: 7,
                record: record.to_owned()
            })
        );
        assert_eq!(parse_line(&heartbeat_line()), Some(WorkerEvent::Heartbeat));
        assert_eq!(
            parse_line(&bye_line(3)),
            Some(WorkerEvent::Bye {
                completed: 3,
                metrics: None
            })
        );
    }

    #[test]
    fn telemetry_lines_round_trip_and_degrade_safely() {
        let payload = r#"{"counters":{"cells.completed":2},"gauges":{},"spans":{}}"#;
        assert_eq!(
            parse_line(&metrics_line(payload)),
            Some(WorkerEvent::Metrics {
                payload: payload.to_owned()
            })
        );
        assert_eq!(
            parse_line(&bye_line_with_metrics(2, payload)),
            Some(WorkerEvent::Bye {
                completed: 2,
                metrics: Some(payload.to_owned())
            })
        );
        // A payload-free bye still parses (old workers, telemetry off).
        assert_eq!(
            parse_line("bye 5"),
            Some(WorkerEvent::Bye {
                completed: 5,
                metrics: None
            })
        );
    }

    #[test]
    fn trace_lines_round_trip_and_unknown_hello_tails_degrade() {
        let chunk = r#"{"lanes":["main"],"events":[["phase.lock","X",5,9,0]]}"#;
        assert_eq!(
            parse_line(&trace_line(chunk)),
            Some(WorkerEvent::Trace {
                payload: chunk.to_owned()
            })
        );
        // A hello tail from a yet-newer worker drops the hello rather
        // than erroring — hello is liveness, not load-bearing.
        assert_eq!(parse_line("mlrl-worker v1 cells=3 shiny=yes"), None);
        assert_eq!(parse_line("mlrl-worker v1 cells=3 epoch_us=oops"), None);
    }

    #[test]
    fn non_protocol_lines_are_ignored_not_errors() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("warning: something"), None);
        assert_eq!(parse_line("done notanumber {}"), None);
        assert_eq!(parse_line("start"), None);
    }
}
