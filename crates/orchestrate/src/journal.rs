//! The checkpoint journal: append-only JSONL under the run directory.
//!
//! Line 1 is a header binding the journal to its campaign — name, total
//! job count, and the FNV-1a digest of the *spec file text* — so a
//! resume against an edited spec (whose cell grid could differ) is
//! rejected instead of silently mixing incompatible records. Every
//! following line is one completed cell's canonical record, exactly as
//! the worker streamed it. Records are flushed per append: an
//! orchestration killed at any instant loses at most the in-flight
//! cells, and `--resume` replays the rest for free.
//!
//! A truncated trailing line (the kill landed mid-write) is skipped on
//! resume; the affected cell simply recomputes.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use mlrl_engine::report::escape_for_header;

/// File name of the journal inside a run directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The append-only completed-cell checkpoint of one orchestration.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    completed: BTreeMap<usize, String>,
}

impl Journal {
    /// Path of the journal file inside `run_dir`.
    pub fn path_in(run_dir: &Path) -> PathBuf {
        run_dir.join(JOURNAL_FILE)
    }

    /// Opens the journal of a run: creates a fresh one, or — with
    /// `resume` — replays an existing one after validating its header
    /// against this campaign's name, job count, and spec digest.
    ///
    /// # Errors
    ///
    /// - fresh run, journal already present (refuse to clobber a
    ///   resumable run; pass `--resume` or pick another `--run-dir`),
    /// - resume without a journal to resume from,
    /// - header mismatch (different spec/campaign than the journal's),
    /// - I/O errors creating the run dir or journal file.
    pub fn open(
        run_dir: &Path,
        campaign: &str,
        jobs: usize,
        spec_digest: u64,
        resume: bool,
    ) -> Result<Self, String> {
        let path = Self::path_in(run_dir);
        std::fs::create_dir_all(run_dir)
            .map_err(|e| format!("cannot create run dir {}: {e}", run_dir.display()))?;
        let header = format!(
            "{{\"campaign\":\"{}\",\"jobs\":{jobs},\"spec\":\"{spec_digest:016x}\"}}",
            escape_for_header(campaign)
        );
        let mut completed = BTreeMap::new();
        if resume {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot resume: no journal at {} ({e})", path.display()))?;
            let mut lines = text.lines();
            let found = lines.next().unwrap_or("").trim_end();
            if found != header {
                return Err(format!(
                    "journal {} belongs to a different run:\n  journal: {found}\n  this run: {header}",
                    path.display()
                ));
            }
            for line in lines {
                // A truncated final line parses as None and is skipped:
                // that cell recomputes.
                if let Some(index) = record_index(line) {
                    if index < jobs {
                        completed.entry(index).or_insert_with(|| line.to_owned());
                    }
                }
            }
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
            return Ok(Self {
                path,
                file,
                completed,
            });
        }
        if path.exists() {
            return Err(format!(
                "run dir already holds a journal ({}); pass --resume to continue it or choose a fresh --run-dir",
                path.display()
            ));
        }
        let mut file = std::fs::File::create(&path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        writeln!(file, "{header}").map_err(|e| format!("cannot write journal header: {e}"))?;
        file.flush().map_err(|e| e.to_string())?;
        Ok(Self {
            path,
            file,
            completed,
        })
    }

    /// Appends one completed cell (idempotent: a record already journaled
    /// — e.g. replayed by a restarted worker — is skipped).
    ///
    /// # Errors
    ///
    /// Returns a message on write failure (the checkpoint contract is
    /// broken at that point, so the orchestration must stop).
    pub fn record(&mut self, index: usize, line: &str) -> Result<(), String> {
        if self.completed.contains_key(&index) {
            return Ok(());
        }
        writeln!(self.file, "{line}")
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to journal {}: {e}", self.path.display()))?;
        self.completed.insert(index, line.to_owned());
        Ok(())
    }

    /// Completed cells, canonical record line per grid index.
    pub fn completed(&self) -> &BTreeMap<usize, String> {
        &self.completed
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Whether a cell is already journaled.
    pub fn contains(&self, index: usize) -> bool {
        self.completed.contains_key(&index)
    }
}

/// Grid index of a canonical record line (`{"index":N,...}`). `None`
/// for malformed *or truncated* lines: a record's single `}` is its last
/// byte, so a line not ending in `}` was cut mid-write.
pub fn record_index(line: &str) -> Option<usize> {
    if !line.ends_with('}') {
        return None;
    }
    line.strip_prefix("{\"index\":")?
        .split_once(',')
        .and_then(|(index, _)| index.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlrl-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn line(index: usize) -> String {
        format!("{{\"index\":{index},\"benchmark\":\"FIR\",\"kpa\":50.0000}}")
    }

    #[test]
    fn journals_append_flush_and_resume() {
        let dir = tmp("resume");
        let mut journal = Journal::open(&dir, "demo", 4, 0xABCD, false).expect("fresh");
        journal.record(2, &line(2)).expect("append");
        journal.record(0, &line(0)).expect("append");
        journal.record(2, &line(2)).expect("idempotent");
        assert_eq!(journal.len(), 2);
        drop(journal);

        // A second orchestration resumes the same run.
        let resumed = Journal::open(&dir, "demo", 4, 0xABCD, true).expect("resume");
        assert_eq!(resumed.len(), 2);
        assert!(resumed.contains(0) && resumed.contains(2));
        assert_eq!(resumed.completed()[&2], line(2));

        // Fresh open over an existing journal is refused.
        let err = Journal::open(&dir, "demo", 4, 0xABCD, false).expect_err("no clobber");
        assert!(err.contains("--resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_different_spec_and_skips_truncated_lines() {
        let dir = tmp("guard");
        let mut journal = Journal::open(&dir, "demo", 4, 0xABCD, false).expect("fresh");
        journal.record(1, &line(1)).expect("append");
        drop(journal);

        // Different digest, name, or job count: refused.
        for (name, jobs, digest) in [
            ("demo", 4usize, 0xEFu64),
            ("other", 4, 0xABCD),
            ("demo", 5, 0xABCD),
        ] {
            let err = Journal::open(&dir, name, jobs, digest, true).expect_err("mismatch");
            assert!(err.contains("different run"), "{err}");
        }

        // A truncated trailing record (killed mid-write) is skipped.
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(Journal::path_in(&dir))
            .expect("reopen");
        write!(file, "{{\"index\":3,\"bench").expect("partial write");
        drop(file);
        let resumed = Journal::open(&dir, "demo", 4, 0xABCD, true).expect("resume");
        assert_eq!(resumed.len(), 1, "only the complete record replays");
        assert!(!resumed.contains(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_a_journal_is_an_error() {
        let dir = tmp("missing");
        let err = Journal::open(&dir, "demo", 1, 1, true).expect_err("nothing to resume");
        assert!(err.contains("cannot resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
