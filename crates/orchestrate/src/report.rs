//! `mlrl report` — the offline run analyzer.
//!
//! Consumes the artifacts an orchestration (or traced campaign) leaves
//! behind in its run directory — `journal.jsonl`, `metrics.json`, and a
//! Chrome trace — and renders the questions the raw files cannot
//! answer at a glance: where the wall time went per phase, how the
//! latency distributions look (p50/p90/p99 from the histogram rollup),
//! cache effectiveness, which worker straggled, and which cells were
//! slowest. `--folded-out` additionally exports folded stacks
//! (`lane;outer;inner <self_us>`) for `flamegraph.pl`-style tooling.
//!
//! Everything is parsed with [`mlrl_obs::json`] and rendered
//! deterministically: a fixed set of input files produces a
//! byte-identical report, which the golden-snapshot test pins.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mlrl_obs::json::{self, Value};
use mlrl_obs::Metrics;

/// Options for [`render_report`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// How many slowest cells to list.
    pub top: usize,
    /// Trace file override; defaults to `<run-dir>/trace.json`.
    pub trace: Option<PathBuf>,
    /// When set, write folded stacks for flamegraph tooling here.
    pub folded_out: Option<PathBuf>,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            top: 10,
            trace: None,
            folded_out: None,
        }
    }
}

/// One complete (`ph == "X"`) trace event.
#[derive(Debug, Clone)]
struct TraceSpan {
    name: String,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

/// The parsed trace: lane labels by tid plus all complete spans.
#[derive(Debug, Default)]
struct Trace {
    lanes: BTreeMap<u64, String>,
    spans: Vec<TraceSpan>,
}

impl Trace {
    fn parse(text: &str) -> Option<Trace> {
        let doc = json::parse(text)?;
        let events = doc.as_object()?.get("traceEvents")?.as_array()?;
        let mut trace = Trace::default();
        for ev in events {
            let obj = ev.as_object()?;
            let name = obj.get("name")?.as_str()?.to_owned();
            let tid = obj.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            match obj.get("ph").and_then(Value::as_str) {
                Some("M") if name == "thread_name" => {
                    if let Some(label) = obj
                        .get("args")
                        .and_then(Value::as_object)
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        trace.lanes.insert(tid, label.to_owned());
                    }
                }
                Some("X") => trace.spans.push(TraceSpan {
                    name,
                    ts_us: obj.get("ts").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    dur_us: obj.get("dur").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    tid,
                }),
                _ => {}
            }
        }
        Some(trace)
    }

    fn lane_label(&self, tid: u64) -> String {
        self.lanes
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("lane-{tid}"))
    }
}

/// Journal summary: header fields plus a label per completed cell.
#[derive(Debug, Default)]
struct JournalSummary {
    campaign: String,
    jobs: u64,
    /// `index → "benchmark/level/attack"`.
    cells: BTreeMap<u64, String>,
}

fn parse_journal(text: &str) -> Option<JournalSummary> {
    let mut lines = text.lines();
    let header = json::parse(lines.next()?)?;
    let header = header.as_object()?;
    let mut out = JournalSummary {
        campaign: header.get("campaign")?.as_str()?.to_owned(),
        jobs: header.get("jobs")?.as_f64()? as u64,
        cells: BTreeMap::new(),
    };
    for line in lines {
        // Tolerate truncated trailing lines exactly like resume does.
        let Some(record) = json::parse(line) else {
            continue;
        };
        let Some(obj) = record.as_object() else {
            continue;
        };
        let Some(index) = obj.get("index").and_then(Value::as_f64) else {
            continue;
        };
        let field = |key: &str| {
            obj.get(key)
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_owned()
        };
        out.cells.insert(
            index as u64,
            format!(
                "{}/{}/{}",
                field("benchmark"),
                field("level"),
                field("attack")
            ),
        );
    }
    Some(out)
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// Render the full report for `run_dir`. Missing artifacts degrade to a
/// note in their section rather than an error — only an unreadable or
/// malformed journal is fatal, because without it there is no run to
/// describe. When `opts.folded_out` is set the folded-stack export is
/// written as a side effect.
///
/// # Errors
///
/// Returns a message when the journal is missing/malformed or the
/// folded output cannot be written.
pub fn render_report(run_dir: &Path, opts: &ReportOptions) -> Result<String, String> {
    let journal_path = crate::Journal::path_in(run_dir);
    let journal_text = std::fs::read_to_string(&journal_path)
        .map_err(|e| format!("cannot read {}: {e}", journal_path.display()))?;
    let journal = parse_journal(&journal_text)
        .ok_or_else(|| format!("malformed journal header in {}", journal_path.display()))?;

    let metrics_path = run_dir.join("metrics.json");
    let metrics = std::fs::read_to_string(&metrics_path)
        .ok()
        .and_then(|t| Metrics::parse(t.trim()));

    let trace_path = opts
        .trace
        .clone()
        .unwrap_or_else(|| run_dir.join("trace.json"));
    let trace = std::fs::read_to_string(&trace_path)
        .ok()
        .and_then(|t| Trace::parse(&t));

    let mut out = String::new();
    out.push_str(&format!(
        "run report: {}\ncampaign \"{}\": {} of {} cells journaled\n",
        run_dir.display(),
        journal.campaign,
        journal.cells.len(),
        journal.jobs
    ));

    match &metrics {
        None => out.push_str("\nmetrics: no readable metrics.json in the run dir\n"),
        Some(m) => {
            render_phases(&mut out, m);
            render_hists(&mut out, m);
            render_cache(&mut out, m);
        }
    }

    match &trace {
        None => out.push_str(&format!(
            "\ntrace: no readable trace at {} (pass --trace <file>)\n",
            trace_path.display()
        )),
        Some(t) => {
            render_workers(&mut out, t);
            render_worker_phases(&mut out, t, metrics.as_ref());
            render_slowest_cells(&mut out, t, &journal, opts.top);
        }
    }

    if let Some(folded_path) = &opts.folded_out {
        let Some(t) = &trace else {
            return Err(format!(
                "--folded-out needs a trace, and none was readable at {}",
                trace_path.display()
            ));
        };
        let folded = folded_stacks(t);
        std::fs::write(folded_path, folded)
            .map_err(|e| format!("cannot write {}: {e}", folded_path.display()))?;
        out.push_str(&format!(
            "\nfolded stacks written to {}\n",
            folded_path.display()
        ));
    }

    Ok(out)
}

/// Phase-time breakdown from `phase.*` span stats, largest share first.
fn render_phases(out: &mut String, metrics: &Metrics) {
    let phases: Vec<(&String, u64, u64)> = metrics
        .spans
        .iter()
        .filter(|(k, _)| k.starts_with("phase."))
        .map(|(k, v)| (k, v.count, v.total_us))
        .collect();
    if phases.is_empty() {
        return;
    }
    let whole: u64 = phases.iter().map(|(_, _, t)| t).sum();
    let mut ranked = phases;
    ranked.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(b.0)));
    out.push_str("\nphase breakdown (summed across workers)\n");
    for (name, count, total) in ranked {
        out.push_str(&format!(
            "  {name:<14} {:>10}  {:>6}  x{count}\n",
            fmt_us(total),
            pct(total, whole)
        ));
    }
    // Settle throughput from the simulator lane counters: every settle
    // reports how many boolean lanes (vectors/keys) its walk carried, so
    // lanes-per-second over the summed phase time is the regression
    // signal for the multi-word SIMD paths.
    let settles = metrics.counters.get("sim.settles").copied().unwrap_or(0);
    let lanes = metrics.counters.get("sim.lanes").copied().unwrap_or(0);
    if settles > 0 && whole > 0 {
        let per_sec = lanes as f64 * 1e6 / whole as f64;
        out.push_str(&format!(
            "  settle throughput: {lanes} vectors in {settles} settles ({:.0} lanes/settle, ~{:.0} vectors/sec of phase time)\n",
            lanes as f64 / settles as f64,
            per_sec
        ));
    }
    // Optimizer effectiveness: the `phase.opt` row above says where the
    // time went; this line says what it bought, per pass.
    let removed = metrics
        .counters
        .get("opt.gates_removed")
        .copied()
        .unwrap_or(0);
    let rounds = metrics.counters.get("opt.iterations").copied().unwrap_or(0);
    if rounds > 0 {
        let mut per_pass: Vec<(&str, u64)> = metrics
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let pass = k.strip_prefix("opt.pass.")?.strip_suffix(".removed")?;
                (v > 0).then_some((pass, v))
            })
            .collect();
        per_pass.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let detail: Vec<String> = per_pass
            .iter()
            .map(|(pass, v)| format!("{pass} {v}"))
            .collect();
        out.push_str(&format!(
            "  optimizer: {removed} gates removed in {rounds} fixed-point rounds ({})\n",
            if detail.is_empty() {
                "no pass removed anything".to_owned()
            } else {
                detail.join(", ")
            }
        ));
    }
}

/// Latency distributions: percentiles for every histogram in the rollup.
fn render_hists(out: &mut String, metrics: &Metrics) {
    let live: Vec<_> = metrics
        .hists
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .collect();
    if live.is_empty() {
        return;
    }
    out.push_str("\nlatency distributions (us)\n");
    out.push_str(&format!(
        "  {:<22} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
        "name", "count", "p50", "p90", "p99", "max"
    ));
    for (name, h) in live {
        let p = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
        out.push_str(&format!(
            "  {:<22} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
            name,
            h.count(),
            p(h.p50()),
            p(h.p90()),
            p(h.p99()),
            p(h.max())
        ));
    }
}

/// Cache effectiveness from the `cache.*` counters.
fn render_cache(out: &mut String, metrics: &Metrics) {
    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    let (hits, misses) = (counter("cache.hits"), counter("cache.misses"));
    let (lhits, lmisses) = (
        counter("cache.lowered_hits"),
        counter("cache.lowered_misses"),
    );
    if hits + misses + lhits + lmisses == 0 {
        return;
    }
    out.push_str("\ncache\n");
    out.push_str(&format!(
        "  locked artifacts: {hits} hits / {misses} misses (hit rate {})\n",
        pct(hits, hits + misses)
    ));
    if lhits + lmisses > 0 {
        out.push_str(&format!(
            "  lowered netlists: {lhits} hits / {lmisses} misses (hit rate {})\n",
            pct(lhits, lhits + lmisses)
        ));
    }
    out.push_str(&format!("  evictions: {}\n", counter("cache.evictions")));
}

/// Per-worker busy time and straggler ranking from the trace. A lane's
/// busy time is the sum of its top-level cell/worker spans; utilization
/// is busy over the whole run's wall span.
fn render_workers(out: &mut String, trace: &Trace) {
    // Busy time per lane from `cell *` spans (each cell span covers the
    // worker's active window for that cell; supervisor lanes carry them
    // for worker processes, pool lanes for in-process threads).
    let mut busy: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // tid → (busy_us, cells)
    for s in &trace.spans {
        if s.name.starts_with("cell ") {
            let e = busy.entry(s.tid).or_insert((0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
    }
    if busy.is_empty() {
        return;
    }
    let start = trace.spans.iter().map(|s| s.ts_us).min().unwrap_or(0);
    let end = trace
        .spans
        .iter()
        .map(|s| s.ts_us + s.dur_us)
        .max()
        .unwrap_or(0);
    let wall = end.saturating_sub(start);
    let mut ranked: Vec<(u64, u64, u64)> = busy
        .into_iter()
        .map(|(tid, (busy_us, cells))| (tid, busy_us, cells))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.push_str(&format!(
        "\nworkers (run wall {}; busiest first — the top entry is the straggler)\n",
        fmt_us(wall)
    ));
    for (tid, busy_us, cells) in ranked {
        out.push_str(&format!(
            "  {:<16} busy {:>10} over {cells} cell(s), utilization {}\n",
            trace.lane_label(tid),
            fmt_us(busy_us),
            pct(busy_us, wall)
        ));
    }
}

/// Worker slot of a merged-trace lane label (`w<slot>/...`), if any.
fn slot_of_lane(label: &str) -> Option<u64> {
    let rest = label.strip_prefix('w')?;
    let (digits, _) = rest.split_once('/')?;
    digits.parse().ok()
}

/// Per-worker phase breakdown from the merged trace's `w<slot>/` lanes
/// — the distributed-tracing view: real worker-side `phase.*` spans on
/// each slot's namespaced lanes, not supervisor-synthesized timing.
/// Traces without such lanes (single-process runs, or orchestrations
/// predating worker trace streaming) get a note instead of an error.
/// The supervisor's `orch.clock_skew_us` gauge, when present, records
/// how far worker epoch claims had to be corrected against its own
/// receive timestamps — worth a line, since it bounds the alignment
/// error of every cross-worker comparison above.
fn render_worker_phases(out: &mut String, trace: &Trace, metrics: Option<&Metrics>) {
    let mut slots: BTreeMap<u64, BTreeMap<&str, u64>> = BTreeMap::new();
    for s in &trace.spans {
        if !s.name.starts_with("phase.") {
            continue;
        }
        let Some(label) = trace.lanes.get(&s.tid) else {
            continue;
        };
        let Some(slot) = slot_of_lane(label) else {
            continue;
        };
        *slots
            .entry(slot)
            .or_default()
            .entry(s.name.as_str())
            .or_insert(0) += s.dur_us;
    }
    if slots.is_empty() {
        out.push_str(
            "\nper-worker phases: none (trace has no w<slot>/ worker lanes — \
             single-process run or pre-streaming orchestration)\n",
        );
        return;
    }
    out.push_str("\nper-worker phases (worker-side spans from the merged trace)\n");
    for (slot, phases) in slots {
        let total: u64 = phases.values().sum();
        let mut ranked: Vec<(&str, u64)> = phases.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let detail: Vec<String> = ranked
            .iter()
            .map(|(name, us)| {
                format!(
                    "{} {}",
                    name.strip_prefix("phase.").unwrap_or(name),
                    fmt_us(*us)
                )
            })
            .collect();
        out.push_str(&format!(
            "  w{slot:<3} {:>10} in phases  ({})\n",
            fmt_us(total),
            detail.join(", ")
        ));
    }
    if let Some(skew) = metrics.and_then(|m| m.gauges.get("orch.clock_skew_us")) {
        out.push_str(&format!(
            "  clock skew: worker epochs corrected by up to {} against \
             supervisor receive timestamps\n",
            fmt_us(*skew as u64)
        ));
    }
}

/// Top-N slowest cells from the trace, labeled via the journal records.
fn render_slowest_cells(out: &mut String, trace: &Trace, journal: &JournalSummary, top: usize) {
    let mut cells: Vec<&TraceSpan> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("cell "))
        .collect();
    if cells.is_empty() || top == 0 {
        return;
    }
    cells.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then_with(|| a.name.cmp(&b.name)));
    out.push_str(&format!("\nslowest cells (top {})\n", top.min(cells.len())));
    for (rank, s) in cells.iter().take(top).enumerate() {
        let label = s
            .name
            .strip_prefix("cell ")
            .and_then(|n| n.parse::<u64>().ok())
            .and_then(|n| journal.cells.get(&n))
            .map_or_else(String::new, |l| format!("  {l}"));
        out.push_str(&format!(
            "  {:>2}. {:<10} {:>10}  on {}{label}\n",
            rank + 1,
            s.name,
            fmt_us(s.dur_us),
            trace.lane_label(s.tid)
        ));
    }
}

/// Folded-stack export: one `lane;outer;...;leaf <self_us>` line per
/// distinct stack, self time aggregated, lines sorted — the input
/// format of `flamegraph.pl` and compatible viewers. Nesting is
/// reconstructed per lane from span containment (`[ts, ts+dur)`).
fn folded_stacks(trace: &Trace) -> String {
    let mut by_lane: BTreeMap<u64, Vec<&TraceSpan>> = BTreeMap::new();
    for s in &trace.spans {
        by_lane.entry(s.tid).or_default().push(s);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (tid, mut spans) in by_lane {
        // Outer spans first at equal start so parents precede children.
        spans.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then_with(|| b.dur_us.cmp(&a.dur_us)));
        let lane = trace.lane_label(tid);
        // Stack of (span, child_time) of currently-open ancestors.
        let mut open: Vec<(&TraceSpan, u64)> = Vec::new();
        for s in spans {
            while let Some((top, _)) = open.last() {
                if s.ts_us >= top.ts_us + top.dur_us {
                    let (done, child_us) = open.pop().expect("non-empty");
                    emit_folded(&mut folded, &lane, &open, done, child_us);
                    if let Some((_, parent_child_us)) = open.last_mut() {
                        *parent_child_us += done.dur_us;
                    }
                } else {
                    break;
                }
            }
            open.push((s, 0));
        }
        while let Some((done, child_us)) = open.pop() {
            emit_folded(&mut folded, &lane, &open, done, child_us);
            if let Some((_, parent_child_us)) = open.last_mut() {
                *parent_child_us += done.dur_us;
            }
        }
    }
    let mut out = String::new();
    for (stack, self_us) in folded {
        out.push_str(&format!("{stack} {self_us}\n"));
    }
    out
}

fn emit_folded(
    folded: &mut BTreeMap<String, u64>,
    lane: &str,
    ancestors: &[(&TraceSpan, u64)],
    span: &TraceSpan,
    child_us: u64,
) {
    let mut stack = String::from(lane);
    for (a, _) in ancestors {
        stack.push(';');
        stack.push_str(&a.name);
    }
    stack.push(';');
    stack.push_str(&span.name);
    *folded.entry(stack).or_insert(0) += span.dur_us.saturating_sub(child_us);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts: u64, dur: u64, tid: u64) -> TraceSpan {
        TraceSpan {
            name: name.to_owned(),
            ts_us: ts,
            dur_us: dur,
            tid,
        }
    }

    #[test]
    fn folded_stacks_nest_by_containment_and_report_self_time() {
        let mut trace = Trace::default();
        trace.lanes.insert(0, "worker 0".to_owned());
        // cell 1 [0,100) contains phase.lock [10,40) and phase.attack
        // [40,100); phase.attack contains sat.dip [50,70).
        trace.spans = vec![
            span("cell 1", 0, 100, 0),
            span("phase.lock", 10, 30, 0),
            span("phase.attack", 40, 60, 0),
            span("sat.dip", 50, 20, 0),
            span("cell 2", 120, 10, 0),
        ];
        let text = folded_stacks(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"worker 0;cell 1 10"), "{text}");
        assert!(lines.contains(&"worker 0;cell 1;phase.lock 30"), "{text}");
        assert!(lines.contains(&"worker 0;cell 1;phase.attack 40"), "{text}");
        assert!(
            lines.contains(&"worker 0;cell 1;phase.attack;sat.dip 20"),
            "{text}"
        );
        assert!(lines.contains(&"worker 0;cell 2 10"), "{text}");
        // Total self time equals total top-level wall time.
        let total: u64 = text
            .lines()
            .filter_map(|l| l.rsplit_once(' ')?.1.parse::<u64>().ok())
            .sum();
        assert_eq!(total, 110);
    }

    #[test]
    fn journal_parse_labels_cells_and_skips_garbage() {
        let text = concat!(
            "{\"campaign\":\"demo\",\"jobs\":4}\n",
            "{\"index\":0,\"benchmark\":\"FIR\",\"level\":\"rtl\",\"attack\":\"sat\",\"kpa\":50.0}\n",
            "{\"index\":2,\"benchmark\":\"SPI\",\"level\":\"gate\",\"attack\":\"kpa\",\"kpa\":null}\n",
            "{\"index\":3,\"bench", // truncated mid-write
        );
        let j = parse_journal(text).expect("parses");
        assert_eq!(j.campaign, "demo");
        assert_eq!(j.jobs, 4);
        assert_eq!(j.cells.len(), 2);
        assert_eq!(j.cells[&0], "FIR/rtl/sat");
        assert_eq!(j.cells[&2], "SPI/gate/kpa");
    }

    #[test]
    fn phase_breakdown_reports_settle_throughput_from_lane_counters() {
        let mut m = Metrics::default();
        m.spans.insert(
            "phase.attack".to_owned(),
            mlrl_obs::SpanStat {
                count: 2,
                total_us: 2_000_000,
            },
        );
        m.counters.insert("sim.settles".to_owned(), 100);
        m.counters.insert("sim.lanes".to_owned(), 25_600);
        let mut out = String::new();
        render_phases(&mut out, &m);
        assert!(
            out.contains(
                "settle throughput: 25600 vectors in 100 settles \
                 (256 lanes/settle, ~12800 vectors/sec of phase time)"
            ),
            "{out}"
        );
        // Without settle counters the line is omitted entirely.
        let mut bare = Metrics::default();
        bare.spans.insert(
            "phase.attack".to_owned(),
            mlrl_obs::SpanStat {
                count: 1,
                total_us: 10,
            },
        );
        let mut out = String::new();
        render_phases(&mut out, &bare);
        assert!(!out.contains("settle throughput"), "{out}");
    }

    #[test]
    fn phase_breakdown_reports_optimizer_work_from_opt_counters() {
        let mut m = Metrics::default();
        m.spans.insert(
            "phase.opt".to_owned(),
            mlrl_obs::SpanStat {
                count: 4,
                total_us: 80_000,
            },
        );
        m.counters.insert("opt.gates_removed".to_owned(), 230);
        m.counters.insert("opt.iterations".to_owned(), 9);
        m.counters.insert("opt.pass.dce.removed".to_owned(), 150);
        m.counters
            .insert("opt.pass.cut_sweep.removed".to_owned(), 60);
        m.counters.insert("opt.pass.rewrite.removed".to_owned(), 20);
        m.counters.insert("opt.pass.cse.removed".to_owned(), 0);
        let mut out = String::new();
        render_phases(&mut out, &m);
        assert!(out.contains("phase.opt"), "{out}");
        assert!(
            out.contains(
                "optimizer: 230 gates removed in 9 fixed-point rounds \
                 (dce 150, cut_sweep 60, rewrite 20)"
            ),
            "{out}"
        );
        // O0 campaigns never run a round, so the line is omitted.
        let mut bare = Metrics::default();
        bare.spans.insert(
            "phase.lower".to_owned(),
            mlrl_obs::SpanStat {
                count: 1,
                total_us: 10,
            },
        );
        let mut out = String::new();
        render_phases(&mut out, &bare);
        assert!(!out.contains("optimizer:"), "{out}");
    }

    #[test]
    fn per_worker_phases_group_merged_trace_lanes_and_note_skew() {
        let mut trace = Trace::default();
        trace.lanes.insert(0, "w0/main".to_owned());
        trace.lanes.insert(1, "w1/pool-worker-0".to_owned());
        trace.lanes.insert(2, "orch/worker-0".to_owned());
        trace.spans = vec![
            span("phase.lock", 0, 100, 0),
            span("phase.attack", 100, 300, 0),
            span("phase.attack", 0, 250, 1),
            span("cell 0", 0, 400, 2),
        ];
        let mut m = Metrics::default();
        m.gauges.insert("orch.clock_skew_us".into(), 1500.0);
        let mut out = String::new();
        render_worker_phases(&mut out, &trace, Some(&m));
        assert!(out.contains("per-worker phases"), "{out}");
        assert!(out.contains("w0"), "{out}");
        assert!(out.contains("w1"), "{out}");
        assert!(out.contains("attack 300us"), "{out}");
        assert!(out.contains("clock skew"), "{out}");
        assert!(out.contains("1.50ms"), "{out}");

        // A trace without `w<slot>/` lanes (pre-streaming run) gets the
        // note, not an error — and no skew line without the gauge.
        let mut old = Trace::default();
        old.lanes.insert(0, "worker-0".to_owned());
        old.spans = vec![span("cell 1", 0, 10, 0)];
        let mut out = String::new();
        render_worker_phases(&mut out, &old, None);
        assert!(out.contains("no w<slot>/ worker lanes"), "{out}");
        assert!(!out.contains("clock skew"), "{out}");
    }

    #[test]
    fn report_degrades_gracefully_without_metrics_or_trace() {
        let dir = std::env::temp_dir().join(format!("mlrl-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join("journal.jsonl"),
            "{\"campaign\":\"bare\",\"jobs\":2}\n",
        )
        .expect("journal");
        let text = render_report(&dir, &ReportOptions::default()).expect("renders");
        assert!(text.contains("campaign \"bare\": 0 of 2 cells journaled"));
        assert!(text.contains("no readable metrics.json"));
        assert!(text.contains("no readable trace"));
        // But a missing journal is fatal.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(render_report(&dir, &ReportOptions::default()).is_err());
    }
}
