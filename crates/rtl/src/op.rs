//! Operator definitions for the RTL expression language.
//!
//! Every binary operator carries a stable integer *op code* used by the
//! SnapShot-RTL attack to encode locality features (the paper assigns "each
//! type a unique integer", §5). Codes are stable across runs and releases.

use std::fmt;
use std::str::FromStr;

/// Binary operators of the Verilog subset.
///
/// The set covers every operator that participates in a locking pair in the
/// paper (arithmetic, bitwise, shift, relational, equality, logical) plus
/// power and modulo, which §3.2 singles out as leaky under the original
/// ASSURE pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^` (also written `^~`)
    Xnor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// All binary operators, in op-code order.
pub const ALL_BINARY_OPS: [BinaryOp; 20] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Mod,
    BinaryOp::Pow,
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Xnor,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::Lt,
    BinaryOp::Gt,
    BinaryOp::Le,
    BinaryOp::Ge,
    BinaryOp::Eq,
    BinaryOp::Neq,
    BinaryOp::LAnd,
    BinaryOp::LOr,
];

impl BinaryOp {
    /// Stable integer code of this operator (used as `C1`/`C2` feature
    /// encoding by the attack). Codes start at 1; code 0 is reserved for
    /// [`MUX_CODE`]-adjacent "none".
    ///
    /// ```
    /// use mlrl_rtl::op::BinaryOp;
    /// assert_eq!(BinaryOp::Add.code(), 1);
    /// assert_ne!(BinaryOp::Add.code(), BinaryOp::Sub.code());
    /// ```
    pub fn code(self) -> u32 {
        self as u32 + 1
    }

    /// Inverse of [`BinaryOp::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        ALL_BINARY_OPS.get(code.checked_sub(1)? as usize).copied()
    }

    /// Verilog source token for this operator.
    pub fn token(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Pow => "**",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "^",
            BinaryOp::Xnor => "~^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::LAnd => "&&",
            BinaryOp::LOr => "||",
        }
    }

    /// Binding strength for the emitter; higher binds tighter.
    /// Mirrors Verilog operator precedence.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::LOr => 1,
            BinaryOp::LAnd => 2,
            BinaryOp::Or => 3,
            BinaryOp::Xor | BinaryOp::Xnor => 4,
            BinaryOp::And => 5,
            BinaryOp::Eq | BinaryOp::Neq => 6,
            BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge => 7,
            BinaryOp::Shl | BinaryOp::Shr => 8,
            BinaryOp::Add | BinaryOp::Sub => 9,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 10,
            BinaryOp::Pow => 11,
        }
    }

    /// Whether `a op b == b op a` for all bit patterns (used by the design
    /// generators to decide operand ordering freedom).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Mul
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::LAnd
                | BinaryOp::LOr
        )
    }

    /// Whether this operator always yields a single-bit result.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt
                | BinaryOp::Gt
                | BinaryOp::Le
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::LAnd
                | BinaryOp::LOr
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Error returned when parsing an operator token fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpError {
    token: String,
}

impl fmt::Display for ParseOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operator token `{}`", self.token)
    }
}

impl std::error::Error for ParseOpError {}

impl FromStr for BinaryOp {
    type Err = ParseOpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_BINARY_OPS
            .iter()
            .copied()
            .find(|op| op.token() == s || (*op == BinaryOp::Xnor && s == "^~"))
            .ok_or_else(|| ParseOpError {
                token: s.to_owned(),
            })
    }
}

/// Unary operators of the Verilog subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnaryOp {
    /// Bitwise complement `~`
    Not,
    /// Arithmetic negation `-`
    Neg,
    /// Logical negation `!`
    LNot,
}

impl UnaryOp {
    /// Verilog source token for this operator.
    pub fn token(self) -> &'static str {
        match self {
            UnaryOp::Not => "~",
            UnaryOp::Neg => "-",
            UnaryOp::LNot => "!",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Feature code used for a locked (multiplexer) sub-expression when it
/// appears as a branch of an outer locked pair (Fig 3b nesting).
pub const MUX_CODE: u32 = ALL_BINARY_OPS.len() as u32 + 1;

/// Feature code for any branch that is not a binary operation or mux
/// (identifier, constant, unary expression).
pub const LEAF_CODE: u32 = ALL_BINARY_OPS.len() as u32 + 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for op in ALL_BINARY_OPS {
            assert!(seen.insert(op.code()), "duplicate code for {op:?}");
            assert_eq!(BinaryOp::from_code(op.code()), Some(op));
        }
        assert!(!seen.contains(&MUX_CODE));
        assert!(!seen.contains(&LEAF_CODE));
        assert_eq!(BinaryOp::Add.code(), 1);
        assert_eq!(BinaryOp::LOr.code(), 20);
    }

    #[test]
    fn from_code_rejects_out_of_range() {
        assert_eq!(BinaryOp::from_code(0), None);
        assert_eq!(BinaryOp::from_code(21), None);
        assert_eq!(BinaryOp::from_code(u32::MAX), None);
    }

    #[test]
    fn tokens_round_trip_through_from_str() {
        for op in ALL_BINARY_OPS {
            assert_eq!(op.token().parse::<BinaryOp>().unwrap(), op);
        }
        assert_eq!("^~".parse::<BinaryOp>().unwrap(), BinaryOp::Xnor);
        assert!("@@".parse::<BinaryOp>().is_err());
    }

    #[test]
    fn precedence_matches_verilog_ordering() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Shl.precedence());
        assert!(BinaryOp::Shl.precedence() > BinaryOp::Lt.precedence());
        assert!(BinaryOp::Lt.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() > BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() > BinaryOp::Xor.precedence());
        assert!(BinaryOp::Xor.precedence() > BinaryOp::Or.precedence());
        assert!(BinaryOp::Or.precedence() > BinaryOp::LAnd.precedence());
        assert!(BinaryOp::LAnd.precedence() > BinaryOp::LOr.precedence());
        assert!(BinaryOp::Pow.precedence() > BinaryOp::Mul.precedence());
    }

    #[test]
    fn predicates_are_flagged() {
        assert!(BinaryOp::Lt.is_predicate());
        assert!(BinaryOp::Eq.is_predicate());
        assert!(!BinaryOp::Add.is_predicate());
        assert!(!BinaryOp::Xor.is_predicate());
    }

    #[test]
    fn display_matches_token() {
        assert_eq!(BinaryOp::Xnor.to_string(), "~^");
        assert_eq!(UnaryOp::LNot.to_string(), "!");
    }
}
