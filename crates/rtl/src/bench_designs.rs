//! Synthetic benchmark designs mirroring the paper's evaluation set.
//!
//! The paper evaluates on a subset of the ASSURE benchmarks (DES3, DFT, FIR,
//! IDFT, IIR, MD5, RSA, SHA256, SASC, SIM_SPI, USB_PHY, I2C_SL) plus two
//! synthetic designs: `N_2046` (a fully imbalanced network of 2046 `+`
//! operations) and `N_1023` (a fully balanced network of 1023 `+` and 1023
//! `-`). The original IP blocks are not redistributable, so this module
//! *generates* stand-ins: for each benchmark, a seeded random expression DAG
//! with an operation-type histogram modelled on the real block's character
//! (crypto: xor/shift/add heavy; filters/transforms: mul/add heavy;
//! controllers: comparison/bitwise dominated).
//!
//! §3.1 of the paper observes that learning resilience depends only on the
//! *operation distribution*, not on the computed function, so these
//! generators exercise exactly the behaviour the evaluation measures. The
//! two `N_*` designs are specified exactly in the paper and generated
//! verbatim.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::ast::{AlwaysBlock, Expr, ExprId, Module, SeqStmt};
use crate::op::BinaryOp;

/// Specification of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Benchmark name as used in the paper's Fig. 6a.
    pub name: &'static str,
    /// Operation-type histogram: `(operator, instance count)`.
    pub op_mix: Vec<(BinaryOp, usize)>,
    /// Whether to attach a small clocked control process (controllers).
    pub control: bool,
    /// One-line provenance note.
    pub description: &'static str,
}

impl DesignSpec {
    /// Total number of operations in the design.
    pub fn total_ops(&self) -> usize {
        self.op_mix.iter().map(|(_, n)| n).sum()
    }
}

/// The fourteen benchmarks of the paper's evaluation (Fig. 6a), in the
/// order they appear on the x-axis.
pub fn paper_benchmarks() -> Vec<DesignSpec> {
    use BinaryOp::*;
    vec![
        DesignSpec {
            name: "DES3",
            op_mix: vec![
                (Xor, 120),
                (And, 56),
                (Or, 20),
                (Shl, 30),
                (Shr, 10),
                (Add, 25),
            ],
            control: false,
            description: "triple-DES datapath: xor/permute/rotate heavy",
        },
        DesignSpec {
            name: "DFT",
            op_mix: vec![(Mul, 72), (Add, 48), (Sub, 12), (Shl, 8)],
            control: false,
            description: "discrete Fourier transform butterfly network",
        },
        DesignSpec {
            name: "FIR",
            op_mix: vec![(Mul, 32), (Add, 31)],
            control: false,
            description: "32-tap FIR filter: multiply-accumulate chain",
        },
        DesignSpec {
            name: "IDFT",
            op_mix: vec![(Mul, 72), (Add, 44), (Sub, 16), (Shr, 8)],
            control: false,
            description: "inverse DFT butterfly network",
        },
        DesignSpec {
            name: "IIR",
            op_mix: vec![(Mul, 28), (Add, 20), (Sub, 6)],
            control: false,
            description: "IIR filter section",
        },
        DesignSpec {
            name: "MD5",
            op_mix: vec![(Add, 96), (Xor, 60), (And, 28), (Or, 10), (Shl, 14)],
            control: false,
            description: "MD5 round logic: modular adds and boolean mixing",
        },
        DesignSpec {
            name: "RSA",
            op_mix: vec![
                (Mul, 26),
                (Mod, 14),
                (Add, 34),
                (Sub, 10),
                (Shr, 10),
                (Lt, 6),
            ],
            control: false,
            description: "modular exponentiation datapath",
        },
        DesignSpec {
            name: "SHA256",
            op_mix: vec![(Add, 100), (Xor, 68), (And, 34), (Shr, 36), (Or, 10)],
            control: false,
            description: "SHA-256 compression: sigma/ch/maj networks",
        },
        DesignSpec {
            name: "SASC",
            op_mix: vec![(Eq, 12), (And, 11), (Or, 5), (Add, 8), (Xor, 6), (Lt, 4)],
            control: true,
            description: "simple asynchronous serial controller",
        },
        DesignSpec {
            name: "SIM_SPI",
            op_mix: vec![(Eq, 9), (And, 8), (Or, 4), (Xor, 6), (Add, 5), (Shl, 2)],
            control: true,
            description: "simple SPI master",
        },
        DesignSpec {
            name: "USB_PHY",
            op_mix: vec![(Eq, 11), (Xor, 9), (And, 9), (Or, 4), (Add, 4), (Shr, 2)],
            control: true,
            description: "USB 1.1 PHY bit layer",
        },
        DesignSpec {
            name: "I2C_SL",
            op_mix: vec![(Eq, 10), (And, 8), (Or, 4), (Add, 5), (Xor, 3), (Lt, 2)],
            control: true,
            description: "I2C slave controller",
        },
        DesignSpec {
            name: "N_2046",
            op_mix: vec![(Add, 2046)],
            control: false,
            description: "fully imbalanced synthetic network (paper §5)",
        },
        DesignSpec {
            name: "N_1023",
            op_mix: vec![(Add, 1023), (Sub, 1023)],
            control: false,
            description: "fully balanced synthetic network (paper §5)",
        },
    ]
}

/// Looks up a paper benchmark spec by (case-insensitive) name.
pub fn benchmark_by_name(name: &str) -> Option<DesignSpec> {
    paper_benchmarks()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Generates the synthetic RTL module for `spec`, deterministically from
/// `seed`.
///
/// Every operation becomes its own `assign`ed wire (netlist-style RTL), so
/// the emitted Verilog parses back to an identical module and every
/// operation is individually addressable by the locking algorithms.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::bench_designs::{benchmark_by_name, generate};
///
/// let spec = benchmark_by_name("FIR").expect("known benchmark");
/// let m = generate(&spec, 42);
/// assert_eq!(mlrl_rtl::visit::binary_ops(&m).len(), spec.total_ops());
/// ```
pub fn generate(spec: &DesignSpec, seed: u64) -> Module {
    generate_with_width(spec, seed, 32)
}

/// Like [`generate`], with an explicit signal width (1..=64).
///
/// Narrow widths keep the bit-blasted (gate-level) form of a design small,
/// which the SAT-attack experiments rely on; the operation census — the only
/// thing the learning-resilience results depend on — is width-independent.
/// RNG consumption does not depend on `width`, so `generate_with_width(s,
/// seed, 32)` equals `generate(s, seed)` exactly.
///
/// # Panics
///
/// Panics if `width` is outside `1..=64`.
pub fn generate_with_width(spec: &DesignSpec, seed: u64, width: u32) -> Module {
    assert!((1..=64).contains(&width), "width {width} outside 1..=64");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new(spec.name.to_ascii_lowercase());

    let total = spec.total_ops();
    let n_inputs = (total as f64).sqrt().ceil() as usize;
    let n_inputs = n_inputs.clamp(4, 16);
    let mut signals: Vec<String> = Vec::new();
    for i in 0..n_inputs {
        let name = format!("i{i}");
        m.add_input(&name, width).expect("fresh input name");
        signals.push(name);
    }
    m.add_output("y", width).expect("fresh output name");

    // Shuffle a flat list of operator instances so types interleave in the
    // netlist the way they would after elaboration.
    let mut ops: Vec<BinaryOp> = Vec::with_capacity(total);
    for (op, n) in &spec.op_mix {
        ops.extend(std::iter::repeat_n(*op, *n));
    }
    ops.shuffle(&mut rng);

    for (i, op) in ops.iter().enumerate() {
        let wire = format!("w{i}");
        m.add_wire(&wire, width).expect("fresh wire name");
        let lhs = pick_operand(&mut m, &signals, &mut rng);
        let rhs = match op {
            // Keep shift amounts and exponents small so values stay lively.
            BinaryOp::Shl | BinaryOp::Shr => {
                let amount = rng.gen_range(1..8);
                m.alloc_expr(Expr::Const {
                    value: amount,
                    width: Some(5),
                })
            }
            BinaryOp::Pow => {
                let exp = rng.gen_range(1..4);
                m.alloc_expr(Expr::Const {
                    value: exp,
                    width: Some(2),
                })
            }
            _ => pick_operand(&mut m, &signals, &mut rng),
        };
        let node = m.alloc_expr(Expr::Binary { op: *op, lhs, rhs });
        m.add_assign(&wire, node).expect("fresh wire assign");
        signals.push(wire);
    }

    // Expose a spread of internal wires as observation ports. Plain
    // pass-through assigns keep the operation census exactly equal to the
    // spec'd mix (no fold logic), while giving equivalence/corruption
    // checks visibility into most of the design — a single deep arithmetic
    // cone collapses to 0 mod 2^32 and would make such checks vacuous.
    let wires: Vec<String> = signals[n_inputs..].to_vec();
    let stride = (wires.len() / 15).max(1);
    let observed: Vec<String> = wires
        .iter()
        .step_by(stride)
        .chain(std::iter::once(wires.last().expect("at least one wire")))
        .cloned()
        .collect();
    for (k, name) in observed.iter().enumerate() {
        let port = format!("y{k}");
        m.add_output(&port, width).expect("fresh observation port");
        let id = m.alloc_expr(Expr::Ident(name.clone()));
        m.add_assign(&port, id).expect("observation assign");
    }
    let last = wires.last().expect("at least one wire").clone();
    let out = m.alloc_expr(Expr::Ident(last));
    m.add_assign("y", out).expect("output assign");

    if spec.control {
        attach_control_process(&mut m, &signals, &mut rng);
    }
    m
}

fn pick_operand(m: &mut Module, signals: &[String], rng: &mut StdRng) -> ExprId {
    // Bias towards recent signals to build deep, chain-like cones.
    let idx = if signals.len() > 4 && rng.gen_bool(0.6) {
        rng.gen_range(signals.len().saturating_sub(8)..signals.len())
    } else {
        rng.gen_range(0..signals.len())
    };
    let name = signals[idx].clone();
    m.alloc_expr(Expr::Ident(name))
}

/// Adds a small clocked state machine (controller benchmarks), giving the
/// branch- and constant-obfuscation passes something to lock.
fn attach_control_process(m: &mut Module, signals: &[String], rng: &mut StdRng) {
    m.add_input("clk", 1).expect("fresh clk");
    m.add_reg("state", 4).expect("fresh state reg");
    // The branch condition samples a datapath bit; the bodies move
    // constants/wires around. No binary operations are added so the
    // spec'd operation mix stays exact (the census drives the ODT).
    let observed = signals[rng.gen_range(0..signals.len())].clone();
    let cond = m.alloc_expr(Expr::Index {
        base: observed.clone(),
        bit: rng.gen_range(0..8),
    });
    let next = m.alloc_expr(Expr::Index {
        base: observed,
        bit: rng.gen_range(8..16),
    });
    let reset = m.alloc_expr(Expr::Const {
        value: 0,
        width: Some(4),
    });
    m.add_always(AlwaysBlock {
        clock: "clk".into(),
        body: vec![SeqStmt::If {
            cond,
            then_body: vec![SeqStmt::NonBlocking {
                lhs: "state".into(),
                rhs: next,
            }],
            else_body: vec![SeqStmt::NonBlocking {
                lhs: "state".into(),
                rhs: reset,
            }],
        }],
    })
    .expect("control process");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visit;

    #[test]
    fn fourteen_benchmarks_in_paper_order() {
        let names: Vec<&str> = paper_benchmarks().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "DES3", "DFT", "FIR", "IDFT", "IIR", "MD5", "RSA", "SHA256", "SASC", "SIM_SPI",
                "USB_PHY", "I2C_SL", "N_2046", "N_1023"
            ]
        );
    }

    #[test]
    fn n2046_is_fully_imbalanced() {
        let spec = benchmark_by_name("N_2046").unwrap();
        assert_eq!(spec.op_mix, vec![(BinaryOp::Add, 2046)]);
        let m = generate(&spec, 1);
        let census = visit::op_census(&m);
        assert_eq!(census.get(&BinaryOp::Add), Some(&2046));
        assert_eq!(census.len(), 1);
    }

    #[test]
    fn n1023_is_fully_balanced() {
        let spec = benchmark_by_name("N_1023").unwrap();
        let m = generate(&spec, 1);
        let census = visit::op_census(&m);
        assert_eq!(census.get(&BinaryOp::Add), Some(&1023));
        assert_eq!(census.get(&BinaryOp::Sub), Some(&1023));
    }

    #[test]
    fn generated_op_mix_matches_spec() {
        for spec in paper_benchmarks() {
            if spec.total_ops() > 500 {
                continue; // covered by the N_* tests above
            }
            let m = generate(&spec, 7);
            let census = visit::op_census(&m);
            for (op, n) in &spec.op_mix {
                assert_eq!(census.get(op), Some(n), "{}: {op:?}", spec.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = benchmark_by_name("FIR").unwrap();
        assert_eq!(generate(&spec, 3), generate(&spec, 3));
        assert_ne!(generate(&spec, 3), generate(&spec, 4));
    }

    #[test]
    fn controllers_have_a_clocked_process() {
        let m = generate(&benchmark_by_name("SASC").unwrap(), 5);
        assert_eq!(m.always_blocks().len(), 1);
        let m = generate(&benchmark_by_name("FIR").unwrap(), 5);
        assert!(m.always_blocks().is_empty());
    }

    #[test]
    fn generated_designs_emit_and_reparse() {
        let spec = benchmark_by_name("SIM_SPI").unwrap();
        let m = generate(&spec, 11);
        let text = crate::emit::emit_verilog(&m).unwrap();
        let back = crate::parser::parse_verilog(&text).unwrap();
        assert_eq!(
            visit::op_census(&back),
            visit::op_census(&m),
            "re-parsed census differs"
        );
    }

    #[test]
    fn generated_designs_simulate() {
        let spec = benchmark_by_name("IIR").unwrap();
        let m = generate(&spec, 13);
        let mut sim = crate::sim::Simulator::new(&m).unwrap();
        for (i, p) in m.ports().iter().enumerate() {
            if p.dir == crate::ast::PortDir::Input {
                sim.set_input(&p.name, (i as u64 + 1) * 17).unwrap();
            }
        }
        sim.settle().unwrap();
        sim.get("y").unwrap(); // must be computable
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(benchmark_by_name("sha256").is_some());
        assert!(benchmark_by_name("nope").is_none());
    }
}
