//! Lexer for the Verilog subset.
//!
//! Produces a token stream with 1-based line/column positions for error
//! reporting. Supports line (`//`) and block (`/* */`) comments, sized and
//! unsized numeric literals (`8'hff`, `4'b1010`, `16'd255`, `42`), and the
//! operator set of [`crate::op`].

use crate::error::{Result, RtlError};

/// Token kinds of the Verilog subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal with optional explicit width.
    Number {
        /// Value, masked to `width` bits if sized.
        value: u64,
        /// Bit width when the literal was sized.
        width: Option<u32>,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `<=` — relational *or* non-blocking assign, disambiguated by parser.
    LeOrNonBlocking,
    /// Any other operator token (`+`, `~^`, `<<`, ...).
    Op(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// Tokenizes `src` into a vector ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`RtlError::Parse`] on malformed literals, unterminated block
/// comments, or unknown characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn err(&self, msg: impl Into<String>) -> RtlError {
        RtlError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let tok = if c.is_ascii_alphabetic() || c == '_' {
                self.lex_ident()
            } else if c.is_ascii_digit() {
                self.lex_number()?
            } else {
                self.lex_symbol()?
            };
            out.push(Token { tok, line, col });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok::Ident(s)
    }

    fn lex_number(&mut self) -> Result<Tok> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    digits.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some('\'') {
            self.bump();
            let width: u32 = digits
                .parse()
                .map_err(|_| self.err(format!("bad literal width `{digits}`")))?;
            if width == 0 || width > 64 {
                return Err(self.err(format!("literal width {width} outside 1..=64")));
            }
            let base = self
                .bump()
                .ok_or_else(|| self.err("missing base after `'` in literal"))?;
            let radix = match base.to_ascii_lowercase() {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                other => return Err(self.err(format!("unknown literal base `{other}`"))),
            };
            let mut body = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    if c != '_' {
                        body.push(c);
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            if body.is_empty() {
                return Err(self.err("empty literal body"));
            }
            let value = u64::from_str_radix(&body, radix)
                .map_err(|_| self.err(format!("bad base-{radix} literal `{body}`")))?;
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            Ok(Tok::Number {
                value: value & mask,
                width: Some(width),
            })
        } else {
            let value: u64 = digits
                .parse()
                .map_err(|_| self.err(format!("bad decimal literal `{digits}`")))?;
            Ok(Tok::Number { value, width: None })
        }
    }

    fn lex_symbol(&mut self) -> Result<Tok> {
        let c = self.bump().expect("caller checked peek");
        let next = self.peek();
        let two = |this: &mut Self, tok: Tok| {
            this.bump();
            Ok(tok)
        };
        match (c, next) {
            ('(', _) => Ok(Tok::LParen),
            (')', _) => Ok(Tok::RParen),
            ('[', _) => Ok(Tok::LBracket),
            (']', _) => Ok(Tok::RBracket),
            (';', _) => Ok(Tok::Semi),
            (',', _) => Ok(Tok::Comma),
            ('?', _) => Ok(Tok::Question),
            ('@', _) => Ok(Tok::At),
            (':', _) => Ok(Tok::Colon),
            ('.', _) => Ok(Tok::Op(".")),
            ('*', Some('*')) => two(self, Tok::Op("**")),
            ('*', _) => Ok(Tok::Op("*")),
            ('+', _) => Ok(Tok::Op("+")),
            ('-', _) => Ok(Tok::Op("-")),
            ('/', _) => Ok(Tok::Op("/")),
            ('%', _) => Ok(Tok::Op("%")),
            ('~', Some('^')) => two(self, Tok::Op("~^")),
            ('~', _) => Ok(Tok::Op("~")),
            ('^', Some('~')) => two(self, Tok::Op("~^")),
            ('^', _) => Ok(Tok::Op("^")),
            ('&', Some('&')) => two(self, Tok::Op("&&")),
            ('&', _) => Ok(Tok::Op("&")),
            ('|', Some('|')) => two(self, Tok::Op("||")),
            ('|', _) => Ok(Tok::Op("|")),
            ('<', Some('<')) => two(self, Tok::Op("<<")),
            ('<', Some('=')) => two(self, Tok::LeOrNonBlocking),
            ('<', _) => Ok(Tok::Op("<")),
            ('>', Some('>')) => two(self, Tok::Op(">>")),
            ('>', Some('=')) => two(self, Tok::Op(">=")),
            ('>', _) => Ok(Tok::Op(">")),
            ('=', Some('=')) => two(self, Tok::Op("==")),
            ('=', _) => Ok(Tok::Assign),
            ('!', Some('=')) => two(self, Tok::Op("!=")),
            ('!', _) => Ok(Tok::Op("!")),
            _ => Err(RtlError::Parse {
                line: self.line,
                col: self.col.saturating_sub(1),
                msg: format!("unexpected character `{c}` (source: {:.40})", self.src),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo 42 8'hff"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Number {
                    value: 42,
                    width: None
                },
                Tok::Number {
                    value: 255,
                    width: Some(8)
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn sized_literals_mask_to_width() {
        assert_eq!(
            toks("4'hff")[0],
            Tok::Number {
                value: 15,
                width: Some(4)
            }
        );
        assert_eq!(
            toks("4'b1101")[0],
            Tok::Number {
                value: 13,
                width: Some(4)
            }
        );
        assert_eq!(
            toks("6'o17")[0],
            Tok::Number {
                value: 15,
                width: Some(6)
            }
        );
    }

    #[test]
    fn operators_two_char_before_one_char() {
        assert_eq!(
            toks("a ** b << c ~^ d && e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op("**"),
                Tok::Ident("b".into()),
                Tok::Op("<<"),
                Tok::Ident("c".into()),
                Tok::Op("~^"),
                Tok::Ident("d".into()),
                Tok::Op("&&"),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn le_and_nonblocking_share_a_token() {
        assert_eq!(toks("a <= b")[1], Tok::LeOrNonBlocking);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block \n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(matches!(tokenize("/* oops"), Err(RtlError::Parse { .. })));
    }

    #[test]
    fn positions_are_tracked() {
        let ts = tokenize("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn bad_width_rejected() {
        assert!(tokenize("0'd1").is_err());
        assert!(tokenize("65'd1").is_err());
        assert!(tokenize("8'z123").is_err());
    }

    #[test]
    fn underscores_in_literals() {
        assert_eq!(
            toks("1_000")[0],
            Tok::Number {
                value: 1000,
                width: None
            }
        );
        assert_eq!(
            toks("8'b1010_1010")[0],
            Tok::Number {
                value: 0xAA,
                width: Some(8)
            }
        );
    }
}
