//! Compilation of a [`Module`] into a flat, slot-indexed instruction tape.
//!
//! The interpretive simulator resolved every signal through a
//! `HashMap<String, u64>` lookup *inside* the expression-eval inner loop and
//! re-cloned its levelized assign order on every `settle()`. This module
//! performs all of that work once, at construction: signal names are
//! interned to dense [`SlotId`]s, continuous assignments are levelized and
//! lowered to a stack-machine program over a `Vec<u64>` state, and clocked
//! processes are lowered to a predicated tape with two-phase (non-blocking)
//! commit semantics. The simulator's hot loop then touches only dense
//! vectors — no string hashing, no per-step allocation.
//!
//! Lowering notes:
//!
//! - `cond ? a : b` compiles to eager evaluation of all three operands plus
//!   [`Instr::Select`]. Every operator is total (`/0` and `%0` yield 0, shifts
//!   saturate), so eager evaluation is observationally identical to the
//!   interpreter's lazy branch choice.
//! - `if (c) r <= x; else r <= y;` compiles to a predicated update per
//!   non-blocking assignment: `next r = P ? rhs : next r`, where `P` is the
//!   conjunction of the branch conditions on the path and `next` is a shadow
//!   slot initialized from the pre-edge value. Assignments are lowered in
//!   statement order, so a later assignment to the same register wins —
//!   exactly the interpreter's update-list semantics.

use std::collections::HashMap;

use crate::ast::{Expr, ExprId, Module, NetKind, PortDir, SeqStmt};
use crate::error::{Result, RtlError};
use crate::op::{BinaryOp, UnaryOp};

/// Value mask for a signal width (widths are 1..=64).
pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Dense index of an interned signal (port or net) in the state vector.
pub type SlotId = u32;

/// One stack-machine instruction of the compiled tape.
///
/// The machine operates on `u64` values with Verilog-ish semantics (see
/// [`crate::sim::eval_binary`]); `Store*` pops the stack into a state slot,
/// masked to the signal width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    Const(u64),
    /// Push `state[slot]`.
    Load(SlotId),
    /// Push bit `bit` of `state[slot]` (bit positions ≥ 64 read bit 63,
    /// matching the interpreter).
    LoadBit {
        /// Source slot.
        slot: SlotId,
        /// Bit position (pre-clamped to 0..=63).
        bit: u32,
    },
    /// Push key bit `i` as 0/1 (missing bits read as 0).
    KeyBit(u32),
    /// Push `width` key bits starting at `lsb`, LSB first.
    KeySlice {
        /// Least-significant key bit.
        lsb: u32,
        /// Number of bits.
        width: u32,
    },
    /// Push the pending (shadow) value of sequential target `idx`.
    LoadShadow(u32),
    /// Pop one operand, push the result.
    Unary(UnaryOp),
    /// Pop two operands (rhs on top), push the result.
    Binary(BinaryOp),
    /// Pop `else`, `then`, `cond` (in that order), push
    /// `cond != 0 ? then : else`.
    Select,
    /// Pop the stack into `state[slot] & mask`.
    Store {
        /// Destination slot.
        slot: SlotId,
        /// Width mask of the destination signal.
        mask: u64,
    },
    /// Pop the stack into `shadow[idx] & mask` (non-blocking update).
    StoreShadow {
        /// Dense index into the sequential-target table.
        idx: u32,
        /// Width mask of the destination register.
        mask: u64,
    },
}

/// Interned metadata of one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// Declared signal name.
    pub name: String,
    /// Declared width in bits.
    pub width: u32,
    /// Whether the signal is an input port (settable via `set_input`).
    pub is_input: bool,
}

/// A module compiled to dense tapes: the product of name interning,
/// levelization, and expression lowering, all performed once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Slot metadata, indexed by [`SlotId`].
    pub slots: Vec<SlotInfo>,
    /// Name → slot map (used only at the `set_input`/`get` API boundary).
    pub slot_of: HashMap<String, SlotId>,
    /// Combinational tape: every continuous assignment in levelized order.
    pub comb: Vec<Instr>,
    /// Sequential tape: every clocked process, predicated, in declaration
    /// order.
    pub seq: Vec<Instr>,
    /// State slots written by the sequential tape, in first-write order;
    /// `seq_targets[idx]` is the commit destination of shadow slot `idx`.
    pub seq_targets: Vec<SlotId>,
    /// Maximum operand-stack depth of either tape.
    pub max_stack: usize,
}

impl Program {
    /// Compiles `module`: interns signals, levelizes assigns, lowers both
    /// tapes.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalCycle`] if continuous assignments
    /// form a cycle, [`RtlError::UnknownSignal`] for undeclared references
    /// (in assigns or clocked processes), and [`RtlError::InvalidExprId`]
    /// for dangling expression ids.
    pub fn compile(module: &Module) -> Result<Self> {
        let mut slots = Vec::new();
        let mut slot_of = HashMap::new();
        let mut intern = |name: &str, width: u32, is_input: bool| {
            let id = slots.len() as SlotId;
            slots.push(SlotInfo {
                name: name.to_owned(),
                width,
                is_input,
            });
            slot_of.insert(name.to_owned(), id);
        };
        for p in module.ports() {
            intern(&p.name, p.width, p.dir == PortDir::Input);
        }
        for n in module.nets() {
            intern(&n.name, n.width, false);
        }

        let mut c = Compiler {
            module,
            slot_of: &slot_of,
            slots: &slots,
            tape: Vec::new(),
            depth: 0,
            max_stack: 0,
        };

        // Combinational tape: levelized assigns.
        let order = levelize(module)?;
        for i in order {
            let assign = &module.assigns()[i];
            let slot = c.slot(&assign.lhs)?;
            let width = c.slots[slot as usize].width;
            c.expr(assign.rhs)?;
            c.emit(Instr::Store {
                slot,
                mask: mask(width),
            });
        }
        let comb = std::mem::take(&mut c.tape);

        // Sequential tape: predicated non-blocking updates.
        let mut seq_targets: Vec<SlotId> = Vec::new();
        let mut shadow_of: HashMap<SlotId, u32> = HashMap::new();
        for blk in module.always_blocks() {
            c.stmts(&blk.body, &mut Vec::new(), &mut seq_targets, &mut shadow_of)?;
        }
        let seq = std::mem::take(&mut c.tape);
        let max_stack = c.max_stack;

        Ok(Self {
            slots,
            slot_of,
            comb,
            seq,
            seq_targets,
            max_stack,
        })
    }

    /// Slot of a declared signal, if any.
    pub fn slot(&self, name: &str) -> Option<SlotId> {
        self.slot_of.get(name).copied()
    }
}

/// Expression-lowering state: tracks the operand-stack depth so the
/// simulator can preallocate its evaluation stack exactly.
struct Compiler<'m> {
    module: &'m Module,
    slot_of: &'m HashMap<String, SlotId>,
    slots: &'m [SlotInfo],
    tape: Vec<Instr>,
    depth: usize,
    max_stack: usize,
}

impl Compiler<'_> {
    fn slot(&self, name: &str) -> Result<SlotId> {
        self.slot_of
            .get(name)
            .copied()
            .ok_or_else(|| RtlError::UnknownSignal(name.to_owned()))
    }

    fn emit(&mut self, instr: Instr) {
        match instr {
            Instr::Const(_)
            | Instr::Load(_)
            | Instr::LoadBit { .. }
            | Instr::KeyBit(_)
            | Instr::KeySlice { .. }
            | Instr::LoadShadow(_) => {
                self.depth += 1;
                self.max_stack = self.max_stack.max(self.depth);
            }
            Instr::Unary(_) => {}
            Instr::Binary(_) => self.depth -= 1,
            Instr::Select => self.depth -= 2,
            Instr::Store { .. } | Instr::StoreShadow { .. } => self.depth -= 1,
        }
        self.tape.push(instr);
    }

    /// Lowers the expression rooted at `id` (iteratively, to keep deeply
    /// nested locked designs off the call stack).
    fn expr(&mut self, id: ExprId) -> Result<()> {
        enum Work {
            Visit(ExprId),
            Emit(Instr),
        }
        let mut stack = vec![Work::Visit(id)];
        while let Some(w) = stack.pop() {
            match w {
                Work::Emit(i) => self.emit(i),
                Work::Visit(id) => match self.module.expr(id)? {
                    Expr::Const { value, width } => {
                        let v = match width {
                            Some(w) => value & mask(*w),
                            None => *value,
                        };
                        self.emit(Instr::Const(v));
                    }
                    Expr::Ident(name) => {
                        let slot = self.slot(name)?;
                        self.emit(Instr::Load(slot));
                    }
                    Expr::KeyBit(i) => self.emit(Instr::KeyBit(*i)),
                    Expr::KeySlice { lsb, width } => self.emit(Instr::KeySlice {
                        lsb: *lsb,
                        width: *width,
                    }),
                    Expr::Index { base, bit } => {
                        let slot = self.slot(base)?;
                        self.emit(Instr::LoadBit {
                            slot,
                            bit: (*bit).min(63),
                        });
                    }
                    Expr::Unary { op, arg } => {
                        stack.push(Work::Emit(Instr::Unary(*op)));
                        stack.push(Work::Visit(*arg));
                    }
                    Expr::Binary { op, lhs, rhs } => {
                        stack.push(Work::Emit(Instr::Binary(*op)));
                        stack.push(Work::Visit(*rhs));
                        stack.push(Work::Visit(*lhs));
                    }
                    Expr::Ternary {
                        cond,
                        then_expr,
                        else_expr,
                    } => {
                        stack.push(Work::Emit(Instr::Select));
                        stack.push(Work::Visit(*else_expr));
                        stack.push(Work::Visit(*then_expr));
                        stack.push(Work::Visit(*cond));
                    }
                },
            }
        }
        Ok(())
    }

    /// Lowers a statement list under the path predicate `path` (condition
    /// roots with polarity; `true` = taken branch).
    fn stmts(
        &mut self,
        stmts: &[SeqStmt],
        path: &mut Vec<(ExprId, bool)>,
        seq_targets: &mut Vec<SlotId>,
        shadow_of: &mut HashMap<SlotId, u32>,
    ) -> Result<()> {
        for s in stmts {
            match s {
                SeqStmt::NonBlocking { lhs, rhs } => {
                    let slot = self.slot(lhs)?;
                    let width = self.slots[slot as usize].width;
                    let idx = *shadow_of.entry(slot).or_insert_with(|| {
                        seq_targets.push(slot);
                        (seq_targets.len() - 1) as u32
                    });
                    if path.is_empty() {
                        // Unconditional: plain store.
                        self.expr(*rhs)?;
                    } else {
                        // Predicated: P ? rhs : pending.
                        let mut first = true;
                        for &(cond, polarity) in path.iter() {
                            self.expr(cond)?;
                            // Normalize to 0/1 with the polarity folded in:
                            // !!c for taken branches, !c for else branches.
                            self.emit(Instr::Unary(UnaryOp::LNot));
                            if polarity {
                                self.emit(Instr::Unary(UnaryOp::LNot));
                            }
                            if !first {
                                self.emit(Instr::Binary(BinaryOp::And));
                            }
                            first = false;
                        }
                        self.expr(*rhs)?;
                        self.emit(Instr::LoadShadow(idx));
                        self.emit(Instr::Select);
                    }
                    self.emit(Instr::StoreShadow {
                        idx,
                        mask: mask(width),
                    });
                }
                SeqStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    path.push((*cond, true));
                    self.stmts(then_body, path, seq_targets, shadow_of)?;
                    path.pop();
                    path.push((*cond, false));
                    self.stmts(else_body, path, seq_targets, shadow_of)?;
                    path.pop();
                }
            }
        }
        Ok(())
    }
}

/// Topologically orders continuous assignments so every wire is computed
/// after its combinational inputs (registers are state, not dependencies).
///
/// # Errors
///
/// Returns [`RtlError::CombinationalCycle`] if assignments form a cycle.
pub fn levelize(module: &Module) -> Result<Vec<usize>> {
    // driver: signal name -> assign index
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, a) in module.assigns().iter().enumerate() {
        driver.insert(a.lhs.as_str(), i);
    }
    // regs are state: not combinational dependencies
    let regs: std::collections::HashSet<&str> = module
        .nets()
        .iter()
        .filter(|n| n.kind == NetKind::Reg)
        .map(|n| n.name.as_str())
        .collect();

    fn deps(module: &Module, id: ExprId, out: &mut Vec<String>) {
        if let Ok(expr) = module.expr(id) {
            match expr {
                Expr::Ident(name) => out.push(name.clone()),
                Expr::Index { base, .. } => out.push(base.clone()),
                _ => {}
            }
            for c in expr.children() {
                deps(module, c, out);
            }
        }
    }

    let n = module.assigns().len();
    let mut order = Vec::with_capacity(n);
    // 0 = unvisited, 1 = in progress, 2 = done
    let mut state = vec![0u8; n];
    // iterative DFS with explicit stack
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(start, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                state[i] = 2;
                order.push(i);
                continue;
            }
            if state[i] == 2 {
                continue;
            }
            if state[i] == 1 {
                return Err(RtlError::CombinationalCycle(
                    module.assigns()[i].lhs.clone(),
                ));
            }
            state[i] = 1;
            stack.push((i, true));
            let mut d = Vec::new();
            deps(module, module.assigns()[i].rhs, &mut d);
            for name in d {
                if regs.contains(name.as_str()) {
                    continue;
                }
                if let Some(&j) = driver.get(name.as_str()) {
                    match state[j] {
                        0 => stack.push((j, false)),
                        1 => {
                            return Err(RtlError::CombinationalCycle(name));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_verilog;

    #[test]
    fn interning_is_dense_and_complete() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n wire [3:0] w;\n assign w = a;\n assign y = w + 1;\nendmodule",
        )
        .unwrap();
        let p = Program::compile(&m).unwrap();
        assert_eq!(p.slots.len(), 3);
        assert!(p.slot("a").is_some());
        assert!(p.slot("w").is_some());
        assert!(p.slot("zz").is_none());
        assert!(p.slots[p.slot("a").unwrap() as usize].is_input);
        assert!(!p.slots[p.slot("y").unwrap() as usize].is_input);
        assert_eq!(p.slots[p.slot("w").unwrap() as usize].width, 4);
    }

    #[test]
    fn comb_tape_orders_assigns_by_dependency() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n wire [7:0] w;\n assign y = w + 1;\n assign w = a + 3;\nendmodule",
        )
        .unwrap();
        let p = Program::compile(&m).unwrap();
        // The store to `w` must precede the store to `y`.
        let pos = |name: &str| {
            let slot = p.slot(name).unwrap();
            p.comb
                .iter()
                .position(|i| matches!(i, Instr::Store { slot: s, .. } if *s == slot))
                .unwrap()
        };
        assert!(pos("w") < pos("y"));
    }

    #[test]
    fn unconditional_nonblocking_skips_predication() {
        let m = parse_verilog(
            "module t(clk, d, q);\n input clk;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n r <= d;\n end\nendmodule",
        )
        .unwrap();
        let p = Program::compile(&m).unwrap();
        assert_eq!(p.seq_targets.len(), 1);
        assert!(!p.seq.iter().any(|i| matches!(i, Instr::Select)));
        assert!(p.seq.iter().any(|i| matches!(i, Instr::StoreShadow { .. })));
    }

    #[test]
    fn conditional_nonblocking_predicates_on_the_branch() {
        let m = parse_verilog(
            "module t(clk, en, q);\n input clk;\n input en;\n output [7:0] q;\n reg [7:0] cnt;\n assign q = cnt;\n always @(posedge clk) begin\n if (en) begin\n cnt <= cnt + 1;\n end\n end\nendmodule",
        )
        .unwrap();
        let p = Program::compile(&m).unwrap();
        assert!(p.seq.iter().any(|i| matches!(i, Instr::Select)));
        assert!(p.seq.iter().any(|i| matches!(i, Instr::LoadShadow(0))));
    }

    #[test]
    fn max_stack_covers_nested_expressions() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = ((a + 1) * (a + 2)) ^ ((a + 3) & (a + 4));\nendmodule",
        )
        .unwrap();
        let p = Program::compile(&m).unwrap();
        assert!(p.max_stack >= 3, "max_stack = {}", p.max_stack);
    }

    #[test]
    fn unknown_signals_fail_at_compile_time() {
        let mut m = crate::ast::Module::new("t");
        m.add_output("y", 8).unwrap();
        let ghost = m.alloc_expr(Expr::Ident("ghost".into()));
        m.add_assign("y", ghost).unwrap();
        assert!(matches!(
            Program::compile(&m),
            Err(RtlError::UnknownSignal(_))
        ));
    }
}
