//! Verilog emitter.
//!
//! Produces synthesizable Verilog-2001 text for a [`Module`], including the
//! key input port for locked designs. Output round-trips through the crate's
//! [parser](crate::parse) (verified by property tests): for tree-shaped
//! designs `parse(emit(m)) == m` up to arena node numbering.

use std::fmt::Write as _;

use crate::ast::{Expr, ExprId, Module, NetKind, PortDir, SeqStmt, KEY_PORT};
use crate::error::Result;
use crate::op::BinaryOp;

/// Emits `module` as Verilog source text.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::ast::{Expr, Module};
/// use mlrl_rtl::op::BinaryOp;
///
/// # fn main() -> Result<(), mlrl_rtl::error::RtlError> {
/// let mut m = Module::new("adder");
/// m.add_input("a", 8)?;
/// m.add_input("b", 8)?;
/// m.add_output("y", 8)?;
/// let a = m.alloc_expr(Expr::Ident("a".into()));
/// let b = m.alloc_expr(Expr::Ident("b".into()));
/// let s = m.alloc_expr(Expr::Binary { op: BinaryOp::Add, lhs: a, rhs: b });
/// m.add_assign("y", s)?;
/// let text = mlrl_rtl::emit::emit_verilog(&m)?;
/// assert!(text.contains("assign y = a + b;"));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns an error only if the module contains dangling expression ids.
pub fn emit_verilog(module: &Module) -> Result<String> {
    let mut out = String::new();
    let mut header_ports: Vec<String> = Vec::new();
    if module.key_width() > 0 {
        header_ports.push(KEY_PORT.to_owned());
    }
    header_ports.extend(module.ports().iter().map(|p| p.name.clone()));
    let _ = writeln!(
        out,
        "module {}({});",
        module.name(),
        header_ports.join(", ")
    );
    if module.key_width() > 0 {
        let _ = writeln!(out, "  input [{}:0] {};", module.key_width() - 1, KEY_PORT);
    }
    for p in module.ports() {
        let dir = match p.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        if p.width == 1 {
            let _ = writeln!(out, "  {dir} {};", p.name);
        } else {
            let _ = writeln!(out, "  {dir} [{}:0] {};", p.width - 1, p.name);
        }
    }
    for n in module.nets() {
        let kind = match n.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        if n.width == 1 {
            let _ = writeln!(out, "  {kind} {};", n.name);
        } else {
            let _ = writeln!(out, "  {kind} [{}:0] {};", n.width - 1, n.name);
        }
    }
    for a in module.assigns() {
        let rhs = emit_expr(module, a.rhs, 0)?;
        let _ = writeln!(out, "  assign {} = {};", a.lhs, rhs);
    }
    for inst in module.instances() {
        let conns: Vec<String> = inst
            .connections
            .iter()
            .map(|c| format!(".{}({})", c.port, c.signal))
            .collect();
        let _ = writeln!(
            out,
            "  {} {} ({});",
            inst.module_name,
            inst.instance_name,
            conns.join(", ")
        );
    }
    for blk in module.always_blocks() {
        let _ = writeln!(out, "  always @(posedge {}) begin", blk.clock);
        for s in &blk.body {
            emit_stmt(module, s, 2, &mut out)?;
        }
        let _ = writeln!(out, "  end");
    }
    out.push_str("endmodule\n");
    Ok(out)
}

fn emit_stmt(module: &Module, stmt: &SeqStmt, depth: usize, out: &mut String) -> Result<()> {
    let pad = "  ".repeat(depth);
    match stmt {
        SeqStmt::NonBlocking { lhs, rhs } => {
            let rhs = emit_expr(module, *rhs, 0)?;
            let _ = writeln!(out, "{pad}{lhs} <= {rhs};");
        }
        SeqStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let c = emit_expr(module, *cond, 0)?;
            let _ = writeln!(out, "{pad}if ({c}) begin");
            for s in then_body {
                emit_stmt(module, s, depth + 1, out)?;
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}end");
            } else {
                let _ = writeln!(out, "{pad}end else begin");
                for s in else_body {
                    emit_stmt(module, s, depth + 1, out)?;
                }
                let _ = writeln!(out, "{pad}end");
            }
        }
    }
    Ok(())
}

/// Emits the expression rooted at `id` as Verilog source, parenthesizing
/// according to operator precedence. `parent_prec` is the binding strength
/// of the enclosing operator (0 for a statement context).
pub fn emit_expr(module: &Module, id: ExprId, parent_prec: u8) -> Result<String> {
    let expr = module.expr(id)?;
    Ok(match expr {
        Expr::Const { value, width } => match width {
            Some(w) => format!("{w}'d{value}"),
            None => format!("{value}"),
        },
        Expr::Ident(name) => name.clone(),
        Expr::KeyBit(i) => format!("{KEY_PORT}[{i}]"),
        Expr::KeySlice { lsb, width } => {
            if *width == 1 {
                format!("{KEY_PORT}[{lsb}]")
            } else {
                format!("{KEY_PORT}[{}:{}]", lsb + width - 1, lsb)
            }
        }
        Expr::Index { base, bit } => format!("{base}[{bit}]"),
        Expr::Unary { op, arg } => {
            // Unary binds tighter than any binary operator.
            let inner = emit_expr(module, *arg, u8::MAX)?;
            format!("{}{}", op.token(), inner)
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = op.precedence();
            // Left-associative: the right child needs parens at equal
            // precedence (`a - (b - c)`), the left child does not.
            let l = emit_expr(module, *lhs, prec)?;
            let r = emit_expr(module, *rhs, prec.saturating_add(1))?;
            let body = format!("{l} {} {r}", op.token());
            if prec < parent_prec || needs_mixing_parens(*op, parent_prec) {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            // `?:` is the loosest construct; parenthesize except at
            // statement level.
            let c = emit_expr(module, *cond, 1)?;
            let t = emit_expr(module, *then_expr, 1)?;
            let e = emit_expr(module, *else_expr, 1)?;
            if parent_prec == 0 {
                format!("{c} ? {t} : {e}")
            } else {
                format!("({c} ? {t} : {e})")
            }
        }
    })
}

/// Whether to add clarity parens even when precedence would not require
/// them (mixed shift/arith chains are a lint trap in real Verilog tools).
fn needs_mixing_parens(op: BinaryOp, parent_prec: u8) -> bool {
    matches!(op, BinaryOp::Shl | BinaryOp::Shr) && parent_prec == op.precedence()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AlwaysBlock;

    fn module_with(rhs: impl FnOnce(&mut Module) -> ExprId) -> Module {
        let mut m = Module::new("t");
        m.add_input("a", 8).unwrap();
        m.add_input("b", 8).unwrap();
        m.add_input("c", 8).unwrap();
        m.add_output("y", 8).unwrap();
        let root = rhs(&mut m);
        m.add_assign("y", root).unwrap();
        m
    }

    fn emit_rhs(m: &Module) -> String {
        let text = emit_verilog(m).unwrap();
        let line = text.lines().find(|l| l.contains("assign y")).unwrap();
        line.trim()
            .trim_start_matches("assign y = ")
            .trim_end_matches(';')
            .to_owned()
    }

    #[test]
    fn precedence_avoids_redundant_parens() {
        let m = module_with(|m| {
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let b = m.alloc_expr(Expr::Ident("b".into()));
            let c = m.alloc_expr(Expr::Ident("c".into()));
            let mul = m.alloc_expr(Expr::Binary {
                op: BinaryOp::Mul,
                lhs: b,
                rhs: c,
            });
            m.alloc_expr(Expr::Binary {
                op: BinaryOp::Add,
                lhs: a,
                rhs: mul,
            })
        });
        assert_eq!(emit_rhs(&m), "a + b * c");
    }

    #[test]
    fn precedence_inserts_required_parens() {
        let m = module_with(|m| {
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let b = m.alloc_expr(Expr::Ident("b".into()));
            let c = m.alloc_expr(Expr::Ident("c".into()));
            let add = m.alloc_expr(Expr::Binary {
                op: BinaryOp::Add,
                lhs: a,
                rhs: b,
            });
            m.alloc_expr(Expr::Binary {
                op: BinaryOp::Mul,
                lhs: add,
                rhs: c,
            })
        });
        assert_eq!(emit_rhs(&m), "(a + b) * c");
    }

    #[test]
    fn right_associativity_parens() {
        // a - (b - c) must keep its parens.
        let m = module_with(|m| {
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let b = m.alloc_expr(Expr::Ident("b".into()));
            let c = m.alloc_expr(Expr::Ident("c".into()));
            let inner = m.alloc_expr(Expr::Binary {
                op: BinaryOp::Sub,
                lhs: b,
                rhs: c,
            });
            m.alloc_expr(Expr::Binary {
                op: BinaryOp::Sub,
                lhs: a,
                rhs: inner,
            })
        });
        assert_eq!(emit_rhs(&m), "a - (b - c)");
    }

    #[test]
    fn locked_pair_emits_fig3_ternary() {
        let mut m = module_with(|m| {
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let b = m.alloc_expr(Expr::Ident("b".into()));
            m.alloc_expr(Expr::Binary {
                op: BinaryOp::Add,
                lhs: a,
                rhs: b,
            })
        });
        let root = m.assigns()[0].rhs;
        m.wrap_in_key_mux(root, true, BinaryOp::Sub).unwrap();
        let text = emit_verilog(&m).unwrap();
        assert!(text.contains("input [0:0] K;"), "{text}");
        assert!(text.contains("assign y = K[0] ? a + b : a - b;"), "{text}");
    }

    #[test]
    fn key_slice_emission() {
        let mut m = module_with(|m| m.alloc_expr(Expr::KeySlice { lsb: 4, width: 4 }));
        m.set_key_width(8);
        assert_eq!(emit_rhs(&m), "K[7:4]");
    }

    #[test]
    fn sized_constants() {
        let m = module_with(|m| {
            m.alloc_expr(Expr::Const {
                value: 13,
                width: Some(4),
            })
        });
        assert_eq!(emit_rhs(&m), "4'd13");
    }

    #[test]
    fn always_block_emission() {
        let mut m = Module::new("seq");
        m.add_input("clk", 1).unwrap();
        m.add_input("d", 8).unwrap();
        m.add_reg("q", 8).unwrap();
        let cond = m.alloc_expr(Expr::Ident("d".into()));
        let rhs = m.alloc_expr(Expr::Ident("d".into()));
        m.add_always(AlwaysBlock {
            clock: "clk".into(),
            body: vec![SeqStmt::If {
                cond,
                then_body: vec![SeqStmt::NonBlocking {
                    lhs: "q".into(),
                    rhs,
                }],
                else_body: vec![],
            }],
        })
        .unwrap();
        let text = emit_verilog(&m).unwrap();
        assert!(text.contains("always @(posedge clk) begin"));
        assert!(text.contains("if (d) begin"));
        assert!(text.contains("q <= d;"));
    }

    #[test]
    fn unary_emission() {
        let m = module_with(|m| {
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let n = m.alloc_expr(Expr::Unary {
                op: crate::op::UnaryOp::Not,
                arg: a,
            });
            let b = m.alloc_expr(Expr::Ident("b".into()));
            m.alloc_expr(Expr::Binary {
                op: BinaryOp::Xor,
                lhs: n,
                rhs: b,
            })
        });
        assert_eq!(emit_rhs(&m), "~a ^ b");
    }
}
