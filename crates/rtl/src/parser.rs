//! Recursive-descent parser for the Verilog subset.
//!
//! The accepted grammar covers everything the [emitter](crate::emit)
//! produces: non-ANSI module headers, `input`/`output`/`wire`/`reg`
//! declarations with ranges, continuous assignments, `always @(posedge clk)`
//! processes with `begin/end`, `if/else` and non-blocking assignments, and
//! the full expression language including key-controlled ternaries.
//!
//! A declared `input [n-1:0] K;` port is recognized as the locking key: it
//! sets the module's key width, and selects on `K` parse to
//! [`Expr::KeyBit`]/[`Expr::KeySlice`] nodes.

use crate::ast::{AlwaysBlock, Connection, Expr, ExprId, Instance, Module, SeqStmt, KEY_PORT};
use crate::error::{Result, RtlError};
use crate::hier::Design;
use crate::lexer::{tokenize, Tok, Token};
use crate::op::{BinaryOp, UnaryOp};

/// Parses Verilog source containing a single module.
///
/// # Examples
///
/// ```
/// let src = "
/// module adder(a, b, y);
///   input [7:0] a;
///   input [7:0] b;
///   output [7:0] y;
///   assign y = a + b;
/// endmodule";
/// let m = mlrl_rtl::parser::parse_verilog(src)?;
/// assert_eq!(m.name(), "adder");
/// assert_eq!(m.assigns().len(), 1);
/// # Ok::<(), mlrl_rtl::error::RtlError>(())
/// ```
///
/// # Errors
///
/// Returns [`RtlError::Parse`] with position information on syntax errors,
/// and declaration errors ([`RtlError::DuplicateSignal`], ...) on semantic
/// ones.
pub fn parse_verilog(src: &str) -> Result<Module> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let module = parser.parse_module()?;
    parser.expect_eof()?;
    Ok(module)
}

/// Parses Verilog source containing one or more modules into a
/// [`Design`] (see [`crate::hier`]).
///
/// # Errors
///
/// Same conditions as [`parse_verilog`], plus duplicate module names.
pub fn parse_design(src: &str) -> Result<Design> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut design = Design::new();
    loop {
        design.add_module(parser.parse_module()?)?;
        if parser.at_eof() {
            return Ok(design);
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek(&self) -> &Tok {
        &self.cur().tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.cur().tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> RtlError {
        let t = self.cur();
        RtlError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64> {
        match self.bump() {
            Tok::Number { value, .. } => Ok(value),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn at_eof(&self) -> bool {
        self.peek() == &Tok::Eof
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(
                "trailing content after `endmodule` (use parse_design for multi-module sources)",
            ))
        }
    }

    fn parse_module(&mut self) -> Result<Module> {
        self.expect_keyword("module")?;
        let name = self.expect_ident("module name")?;
        let mut module = Module::new(name);
        let mut header: Vec<String> = Vec::new();
        self.expect(&Tok::LParen, "`(`")?;
        if self.peek() != &Tok::RParen {
            loop {
                header.push(self.expect_ident("port name")?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;

        loop {
            if self.at_keyword("endmodule") {
                self.bump();
                break;
            }
            match self.peek() {
                Tok::Ident(kw) => match kw.as_str() {
                    "input" | "output" | "wire" | "reg" => self.parse_decl(&mut module)?,
                    "assign" => self.parse_assign(&mut module)?,
                    "always" => self.parse_always(&mut module)?,
                    _ => self.parse_instance(&mut module)?,
                },
                Tok::Eof => return Err(self.err("unexpected end of file, missing `endmodule`")),
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }

        for p in &header {
            if p != KEY_PORT && !module.is_declared(p) {
                return Err(RtlError::UnknownSignal(p.clone()));
            }
        }
        Ok(module)
    }

    /// Parses `ModuleName instName (.port(signal), ...);`.
    fn parse_instance(&mut self, module: &mut Module) -> Result<()> {
        let module_name = self.expect_ident("module name")?;
        let instance_name = self.expect_ident("instance name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut connections = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                match self.bump() {
                    Tok::Op(".") => {}
                    other => {
                        return Err(self.err(format!("expected `.port(...)`, found {other:?}")))
                    }
                }
                let port = self.expect_ident("port name")?;
                self.expect(&Tok::LParen, "`(`")?;
                let signal = self.expect_ident("signal name")?;
                self.expect(&Tok::RParen, "`)`")?;
                connections.push(Connection { port, signal });
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        module.add_instance(Instance {
            module_name,
            instance_name,
            connections,
        })
    }

    fn parse_range(&mut self) -> Result<Option<u32>> {
        if self.peek() != &Tok::LBracket {
            return Ok(None);
        }
        self.bump();
        let hi = self.expect_number()?;
        self.expect(&Tok::Colon, "`:`")?;
        let lo = self.expect_number()?;
        self.expect(&Tok::RBracket, "`]`")?;
        if lo != 0 {
            return Err(self.err(format!(
                "only [n:0] ranges are supported, found [{hi}:{lo}]"
            )));
        }
        Ok(Some(hi as u32 + 1))
    }

    fn parse_decl(&mut self, module: &mut Module) -> Result<()> {
        let kind = self.expect_ident("declaration keyword")?;
        let width = self.parse_range()?.unwrap_or(1);
        loop {
            let name = self.expect_ident("signal name")?;
            if name == KEY_PORT {
                if kind != "input" {
                    return Err(self.err("key port `K` must be an input"));
                }
                module.set_key_width(width);
            } else {
                match kind.as_str() {
                    "input" => module.add_input(name, width)?,
                    "output" => module.add_output(name, width)?,
                    "wire" => module.add_wire(name, width)?,
                    "reg" => module.add_reg(name, width)?,
                    _ => unreachable!("caller checked keyword"),
                }
            }
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi, "`;`")
    }

    fn parse_assign(&mut self, module: &mut Module) -> Result<()> {
        self.expect_keyword("assign")?;
        let lhs = self.expect_ident("assignment target")?;
        self.expect(&Tok::Assign, "`=`")?;
        let rhs = self.parse_expr(module)?;
        self.expect(&Tok::Semi, "`;`")?;
        module.add_assign(lhs, rhs)
    }

    fn parse_always(&mut self, module: &mut Module) -> Result<()> {
        self.expect_keyword("always")?;
        self.expect(&Tok::At, "`@`")?;
        self.expect(&Tok::LParen, "`(`")?;
        self.expect_keyword("posedge")?;
        let clock = self.expect_ident("clock signal")?;
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.parse_stmt_block(module)?;
        module.add_always(AlwaysBlock { clock, body })
    }

    /// Parses either a `begin ... end` block or a single statement.
    fn parse_stmt_block(&mut self, module: &mut Module) -> Result<Vec<SeqStmt>> {
        if self.at_keyword("begin") {
            self.bump();
            let mut stmts = Vec::new();
            while !self.at_keyword("end") {
                if self.peek() == &Tok::Eof {
                    return Err(self.err("unexpected end of file inside `begin` block"));
                }
                stmts.push(self.parse_stmt(module)?);
            }
            self.bump();
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt(module)?])
        }
    }

    fn parse_stmt(&mut self, module: &mut Module) -> Result<SeqStmt> {
        if self.at_keyword("if") {
            self.bump();
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.parse_expr(module)?;
            self.expect(&Tok::RParen, "`)`")?;
            let then_body = self.parse_stmt_block(module)?;
            let else_body = if self.at_keyword("else") {
                self.bump();
                self.parse_stmt_block(module)?
            } else {
                Vec::new()
            };
            Ok(SeqStmt::If {
                cond,
                then_body,
                else_body,
            })
        } else {
            let lhs = self.expect_ident("register name")?;
            self.expect(&Tok::LeOrNonBlocking, "`<=`")?;
            let rhs = self.parse_expr(module)?;
            self.expect(&Tok::Semi, "`;`")?;
            Ok(SeqStmt::NonBlocking { lhs, rhs })
        }
    }

    fn parse_expr(&mut self, module: &mut Module) -> Result<ExprId> {
        let cond = self.parse_binary(module, 1)?;
        if self.peek() == &Tok::Question {
            self.bump();
            let then_expr = self.parse_expr(module)?;
            self.expect(&Tok::Colon, "`:`")?;
            let else_expr = self.parse_expr(module)?;
            Ok(module.alloc_expr(Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            }))
        } else {
            Ok(cond)
        }
    }

    fn peek_binop(&self) -> Option<BinaryOp> {
        match self.peek() {
            Tok::Op(s) => s.parse().ok(),
            Tok::LeOrNonBlocking => Some(BinaryOp::Le),
            _ => None,
        }
    }

    fn parse_binary(&mut self, module: &mut Module, min_prec: u8) -> Result<ExprId> {
        let mut lhs = self.parse_unary(module)?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // `**` is right-associative in Verilog; everything else left.
            let next_min = if op == BinaryOp::Pow { prec } else { prec + 1 };
            let rhs = self.parse_binary(module, next_min)?;
            lhs = module.alloc_expr(Expr::Binary { op, lhs, rhs });
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, module: &mut Module) -> Result<ExprId> {
        let op = match self.peek() {
            Tok::Op("~") => Some(UnaryOp::Not),
            Tok::Op("!") => Some(UnaryOp::LNot),
            Tok::Op("-") => Some(UnaryOp::Neg),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.parse_unary(module)?;
            return Ok(module.alloc_expr(Expr::Unary { op, arg }));
        }
        self.parse_primary(module)
    }

    fn parse_primary(&mut self, module: &mut Module) -> Result<ExprId> {
        match self.bump() {
            Tok::LParen => {
                let e = self.parse_expr(module)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Number { value, width } => Ok(module.alloc_expr(Expr::Const { value, width })),
            Tok::Ident(name) => {
                if self.peek() == &Tok::LBracket {
                    self.bump();
                    let hi = self.expect_number()?;
                    let lo = if self.peek() == &Tok::Colon {
                        self.bump();
                        Some(self.expect_number()?)
                    } else {
                        None
                    };
                    self.expect(&Tok::RBracket, "`]`")?;
                    if name == KEY_PORT {
                        match lo {
                            None => Ok(module.alloc_expr(Expr::KeyBit(hi as u32))),
                            Some(lo) => {
                                if lo > hi {
                                    return Err(self.err(format!(
                                        "descending key slice [{hi}:{lo}] expected msb >= lsb"
                                    )));
                                }
                                Ok(module.alloc_expr(Expr::KeySlice {
                                    lsb: lo as u32,
                                    width: (hi - lo) as u32 + 1,
                                }))
                            }
                        }
                    } else {
                        match lo {
                            None => Ok(module.alloc_expr(Expr::Index {
                                base: name,
                                bit: hi as u32,
                            })),
                            Some(_) => {
                                Err(self
                                    .err("ranged bit-selects are only supported on the key port"))
                            }
                        }
                    }
                } else {
                    Ok(module.alloc_expr(Expr::Ident(name)))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryOp;
    use crate::visit;

    #[test]
    fn parses_simple_module() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a + 1;\nendmodule",
        )
        .unwrap();
        assert_eq!(m.name(), "t");
        assert_eq!(m.ports().len(), 2);
        assert_eq!(visit::binary_ops(&m).len(), 1);
    }

    #[test]
    fn precedence_is_respected() {
        let m = parse_verilog(
            "module t(a, b, c, y);\n input [7:0] a, b, c;\n output [7:0] y;\n assign y = a + b * c;\nendmodule",
        )
        .unwrap();
        let root = m.assigns()[0].rhs;
        match *m.expr(root).unwrap() {
            Expr::Binary { op, rhs, .. } => {
                assert_eq!(op, BinaryOp::Add);
                assert_eq!(m.expr(rhs).unwrap().binary_op(), Some(BinaryOp::Mul));
            }
            ref other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn key_port_sets_key_width_and_keybits() {
        let m = parse_verilog(
            "module t(K, a, y);\n input [3:0] K;\n input [7:0] a;\n output [7:0] y;\n assign y = K[1] ? a + a : a - a;\nendmodule",
        )
        .unwrap();
        assert_eq!(m.key_width(), 4);
        let root = m.assigns()[0].rhs;
        match *m.expr(root).unwrap() {
            Expr::Ternary { cond, .. } => {
                assert_eq!(*m.expr(cond).unwrap(), Expr::KeyBit(1));
            }
            ref other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn key_slice_parses() {
        let m = parse_verilog(
            "module t(K, y);\n input [7:0] K;\n output [3:0] y;\n assign y = K[6:3];\nendmodule",
        )
        .unwrap();
        let root = m.assigns()[0].rhs;
        assert_eq!(*m.expr(root).unwrap(), Expr::KeySlice { lsb: 3, width: 4 });
    }

    #[test]
    fn always_block_round_trip() {
        let src = "module t(clk, d, q);\n input clk;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] q_r;\n assign q = q_r;\n always @(posedge clk) begin\n if (d > 3) begin\n q_r <= d + 1;\n end else begin\n q_r <= d - 1;\n end\n end\nendmodule";
        let m = parse_verilog(src).unwrap();
        assert_eq!(m.always_blocks().len(), 1);
        match &m.always_blocks()[0].body[0] {
            SeqStmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn le_in_expression_context() {
        let m = parse_verilog(
            "module t(a, b, y);\n input [7:0] a, b;\n output y;\n assign y = a <= b;\nendmodule",
        )
        .unwrap();
        let root = m.assigns()[0].rhs;
        assert_eq!(m.expr(root).unwrap().binary_op(), Some(BinaryOp::Le));
    }

    #[test]
    fn pow_is_right_associative() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a ** a ** a;\nendmodule",
        )
        .unwrap();
        let root = m.assigns()[0].rhs;
        match *m.expr(root).unwrap() {
            Expr::Binary {
                op: BinaryOp::Pow,
                rhs,
                ..
            } => {
                assert_eq!(m.expr(rhs).unwrap().binary_op(), Some(BinaryOp::Pow));
            }
            ref other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        // `garbage` alone would parse as an instance prefix now; use a
        // token that can never start an item.
        let err = parse_verilog("module t(a);\n input a;\n = garbage\nendmodule").unwrap_err();
        match err {
            RtlError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn undeclared_header_port_is_rejected() {
        let err = parse_verilog("module t(a, ghost);\n input a;\nendmodule").unwrap_err();
        assert_eq!(err, RtlError::UnknownSignal("ghost".into()));
    }

    #[test]
    fn nested_ternaries_parse() {
        let m = parse_verilog(
            "module t(K, a, b, y);\n input [2:0] K;\n input [7:0] a, b;\n output [7:0] y;\n assign y = K[0] ? (K[1] ? a + b : a - b) : (K[2] ? a - b : a + b);\nendmodule",
        )
        .unwrap();
        assert_eq!(visit::key_mux_count(&m), 3);
    }

    #[test]
    fn unary_chains() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = ~-a;\nendmodule",
        )
        .unwrap();
        let root = m.assigns()[0].rhs;
        assert!(matches!(
            *m.expr(root).unwrap(),
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }
}
