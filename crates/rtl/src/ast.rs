//! Arena-based RTL intermediate representation.
//!
//! A [`Module`] owns an [`ExprArena`] in which every expression node lives at
//! a stable [`ExprId`]. Locking transformations mutate nodes *in place*: when
//! an operation is locked, the node at its id is replaced by a key-controlled
//! ternary whose branches are freshly allocated nodes. This gives the
//! locking algorithms O(1) `AddPair` and O(1) `UndoLock` (restore the saved
//! node and truncate the arena), which HRA's tentative-evaluation inner loop
//! requires (Alg. 4 of the paper).

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, RtlError};
use crate::op::{BinaryOp, UnaryOp};

/// Name of the key input port added to locked modules.
pub const KEY_PORT: &str = "K";

/// Handle to an expression node inside an [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// Index of this node inside its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal, optionally with an explicit bit width (`8'hff`).
    Const {
        /// Literal value (masked to `width` when given).
        value: u64,
        /// Explicit width, if the source specified one.
        width: Option<u32>,
    },
    /// Reference to a declared signal.
    Ident(String),
    /// Single bit `K[i]` of the locking key.
    KeyBit(u32),
    /// Multi-bit slice `K[lsb+width-1 : lsb]` of the locking key
    /// (produced by constant obfuscation).
    KeySlice {
        /// Least-significant key bit of the slice.
        lsb: u32,
        /// Number of key bits.
        width: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand node.
        arg: ExprId,
    },
    /// Binary operation — the lockable unit of the paper.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand node.
        lhs: ExprId,
        /// Right operand node.
        rhs: ExprId,
    },
    /// Conditional `cond ? then : else`. Key-controlled ternaries (with a
    /// [`Expr::KeyBit`] condition) are the locked pairs of Fig. 3.
    Ternary {
        /// Condition node.
        cond: ExprId,
        /// Value when the condition is non-zero.
        then_expr: ExprId,
        /// Value when the condition is zero.
        else_expr: ExprId,
    },
    /// Constant bit-select `sig[i]` of a declared signal.
    Index {
        /// Signal being indexed.
        base: String,
        /// Bit position.
        bit: u32,
    },
}

impl Expr {
    /// Child node ids of this expression, in evaluation order.
    pub fn children(&self) -> Vec<ExprId> {
        match self {
            Expr::Const { .. }
            | Expr::Ident(_)
            | Expr::KeyBit(_)
            | Expr::KeySlice { .. }
            | Expr::Index { .. } => Vec::new(),
            Expr::Unary { arg, .. } => vec![*arg],
            Expr::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                vec![*cond, *then_expr, *else_expr]
            }
        }
    }

    /// The binary operator of this node, if it is a [`Expr::Binary`].
    pub fn binary_op(&self) -> Option<BinaryOp> {
        match self {
            Expr::Binary { op, .. } => Some(*op),
            _ => None,
        }
    }
}

/// Append-only arena of expression nodes.
///
/// Nodes are only ever added or replaced in place; removal happens solely via
/// LIFO [`ExprArena::truncate`], which the locking undo journal uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExprArena {
    nodes: Vec<Expr>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes ever allocated (and not truncated away).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocates a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a child id is out of range.
    pub fn alloc(&mut self, expr: Expr) -> ExprId {
        debug_assert!(
            expr.children().iter().all(|c| c.index() < self.nodes.len()),
            "expression references out-of-range child"
        );
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(expr);
        id
    }

    /// Returns the node at `id`.
    pub fn get(&self, id: ExprId) -> Result<&Expr> {
        self.nodes
            .get(id.index())
            .ok_or(RtlError::InvalidExprId(id))
    }

    /// Returns the node at `id` mutably.
    pub fn get_mut(&mut self, id: ExprId) -> Result<&mut Expr> {
        self.nodes
            .get_mut(id.index())
            .ok_or(RtlError::InvalidExprId(id))
    }

    /// Replaces the node at `id`, returning the previous node.
    pub fn replace(&mut self, id: ExprId, expr: Expr) -> Result<Expr> {
        let slot = self
            .nodes
            .get_mut(id.index())
            .ok_or(RtlError::InvalidExprId(id))?;
        Ok(std::mem::replace(slot, expr))
    }

    /// Drops every node with index `>= len` (LIFO undo support).
    pub fn truncate(&mut self, len: usize) {
        self.nodes.truncate(len);
    }

    /// Iterates over `(id, node)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &Expr)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, e)| (ExprId(i as u32), e))
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bit width (1..=64).
    pub width: u32,
}

/// Storage class of an internal net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Combinational `wire`.
    Wire,
    /// Sequential `reg` (state element updated by an always block).
    Reg,
}

/// An internal net declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Storage class.
    pub kind: NetKind,
    /// Bit width (1..=64).
    pub width: u32,
}

/// A continuous assignment `assign lhs = rhs;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Driven signal.
    pub lhs: String,
    /// Root of the driving expression.
    pub rhs: ExprId,
}

/// A statement inside a clocked always block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqStmt {
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking {
        /// Driven register.
        lhs: String,
        /// Root of the driving expression.
        rhs: ExprId,
    },
    /// `if (cond) ... else ...` — the unit of branch obfuscation.
    If {
        /// Branch condition (lockable by branch obfuscation).
        cond: ExprId,
        /// Taken when `cond` is non-zero.
        then_body: Vec<SeqStmt>,
        /// Taken when `cond` is zero.
        else_body: Vec<SeqStmt>,
    },
}

/// A clocked process `always @(posedge clock) ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlwaysBlock {
    /// Clock signal name.
    pub clock: String,
    /// Statement list.
    pub body: Vec<SeqStmt>,
}

/// A named port-to-signal binding of a module instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Port name on the instantiated module.
    pub port: String,
    /// Signal name in the enclosing module.
    pub signal: String,
}

/// An instantiation of another module (`adder u0 (.a(x), .y(z));`).
///
/// Instances are structural placeholders: simulation and locking operate on
/// flattened designs (see [`crate::hier::Design::flatten`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module_name: String,
    /// Instance label.
    pub instance_name: String,
    /// Port bindings.
    pub connections: Vec<Connection>,
}

/// One RTL module: ports, nets, an expression arena, continuous assignments
/// and clocked processes.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::ast::{Expr, Module};
/// use mlrl_rtl::op::BinaryOp;
///
/// # fn main() -> Result<(), mlrl_rtl::error::RtlError> {
/// let mut m = Module::new("adder");
/// m.add_input("a", 8)?;
/// m.add_input("b", 8)?;
/// m.add_output("y", 8)?;
/// let a = m.alloc_expr(Expr::Ident("a".into()));
/// let b = m.alloc_expr(Expr::Ident("b".into()));
/// let sum = m.alloc_expr(Expr::Binary { op: BinaryOp::Add, lhs: a, rhs: b });
/// m.add_assign("y", sum)?;
/// assert_eq!(m.assigns().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    name: String,
    ports: Vec<Port>,
    nets: Vec<Net>,
    arena: ExprArena,
    assigns: Vec<Assign>,
    always: Vec<AlwaysBlock>,
    instances: Vec<Instance>,
    key_width: u32,
    /// name -> width for every declared signal
    widths: HashMap<String, u32>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ports: Vec::new(),
            nets: Vec::new(),
            arena: ExprArena::new(),
            assigns: Vec::new(),
            always: Vec::new(),
            instances: Vec::new(),
            key_width: 0,
            widths: HashMap::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared ports, in declaration order (excluding the implicit key port).
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Declared internal nets, in declaration order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Continuous assignments, in declaration order.
    pub fn assigns(&self) -> &[Assign] {
        &self.assigns
    }

    /// Clocked processes.
    pub fn always_blocks(&self) -> &[AlwaysBlock] {
        &self.always
    }

    /// Module instantiations (empty for flat modules).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Adds a module instantiation.
    ///
    /// # Errors
    ///
    /// Returns an error if a connected parent signal is undeclared or the
    /// instance name collides with a declared signal.
    pub fn add_instance(&mut self, instance: Instance) -> Result<()> {
        if self.is_declared(&instance.instance_name) {
            return Err(RtlError::DuplicateSignal(instance.instance_name));
        }
        for c in &instance.connections {
            if !self.is_declared(&c.signal) {
                return Err(RtlError::UnknownSignal(c.signal.clone()));
            }
        }
        self.instances.push(instance);
        Ok(())
    }

    /// Mutable access to the clocked processes (used by branch obfuscation).
    pub fn always_blocks_mut(&mut self) -> &mut [AlwaysBlock] {
        &mut self.always
    }

    /// The expression arena.
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// Number of key bits the module consumes (0 for an unlocked design).
    pub fn key_width(&self) -> u32 {
        self.key_width
    }

    /// Reserves and returns the index of a fresh key bit.
    pub fn alloc_key_bit(&mut self) -> u32 {
        let bit = self.key_width;
        self.key_width += 1;
        bit
    }

    /// Reserves `width` consecutive key bits, returning the lsb index.
    pub fn alloc_key_slice(&mut self, width: u32) -> u32 {
        let lsb = self.key_width;
        self.key_width += width;
        lsb
    }

    /// Sets the key width explicitly (used by the parser when it sees a
    /// declared `K` port).
    pub fn set_key_width(&mut self, width: u32) {
        self.key_width = width;
    }

    fn declare(&mut self, name: &str, width: u32) -> Result<()> {
        if width == 0 || width > 64 {
            return Err(RtlError::WidthOutOfRange {
                signal: name.to_owned(),
                width,
            });
        }
        if name == KEY_PORT {
            return Err(RtlError::DuplicateSignal(name.to_owned()));
        }
        if self.widths.insert(name.to_owned(), width).is_some() {
            return Err(RtlError::DuplicateSignal(name.to_owned()));
        }
        Ok(())
    }

    /// Declares an input port.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already declared, reserved, or the
    /// width is outside `1..=64`.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> Result<()> {
        let name = name.into();
        self.declare(&name, width)?;
        self.ports.push(Port {
            name,
            dir: PortDir::Input,
            width,
        });
        Ok(())
    }

    /// Declares an output port.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Module::add_input`].
    pub fn add_output(&mut self, name: impl Into<String>, width: u32) -> Result<()> {
        let name = name.into();
        self.declare(&name, width)?;
        self.ports.push(Port {
            name,
            dir: PortDir::Output,
            width,
        });
        Ok(())
    }

    /// Declares an internal wire.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Module::add_input`].
    pub fn add_wire(&mut self, name: impl Into<String>, width: u32) -> Result<()> {
        let name = name.into();
        self.declare(&name, width)?;
        self.nets.push(Net {
            name,
            kind: NetKind::Wire,
            width,
        });
        Ok(())
    }

    /// Declares a register.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Module::add_input`].
    pub fn add_reg(&mut self, name: impl Into<String>, width: u32) -> Result<()> {
        let name = name.into();
        self.declare(&name, width)?;
        self.nets.push(Net {
            name,
            kind: NetKind::Reg,
            width,
        });
        Ok(())
    }

    /// Width of a declared signal, if any.
    pub fn signal_width(&self, name: &str) -> Option<u32> {
        self.widths.get(name).copied()
    }

    /// Whether `name` is a declared signal (port or net).
    pub fn is_declared(&self, name: &str) -> bool {
        self.widths.contains_key(name)
    }

    /// Allocates an expression node.
    pub fn alloc_expr(&mut self, expr: Expr) -> ExprId {
        self.arena.alloc(expr)
    }

    /// Returns the expression at `id`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidExprId`] for out-of-range ids.
    pub fn expr(&self, id: ExprId) -> Result<&Expr> {
        self.arena.get(id)
    }

    /// Replaces the expression at `id`, returning the old node.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidExprId`] for out-of-range ids.
    pub fn replace_expr(&mut self, id: ExprId, expr: Expr) -> Result<Expr> {
        self.arena.replace(id, expr)
    }

    /// Adds a continuous assignment driving `lhs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lhs` is undeclared or already driven.
    pub fn add_assign(&mut self, lhs: impl Into<String>, rhs: ExprId) -> Result<()> {
        let lhs = lhs.into();
        if !self.is_declared(&lhs) {
            return Err(RtlError::UnknownSignal(lhs));
        }
        if self.assigns.iter().any(|a| a.lhs == lhs) {
            return Err(RtlError::MultipleDrivers(lhs));
        }
        self.arena.get(rhs)?;
        self.assigns.push(Assign { lhs, rhs });
        Ok(())
    }

    /// Adds a clocked process.
    ///
    /// # Errors
    ///
    /// Returns an error if the clock signal is undeclared.
    pub fn add_always(&mut self, block: AlwaysBlock) -> Result<()> {
        if !self.is_declared(&block.clock) {
            return Err(RtlError::UnknownSignal(block.clock));
        }
        self.always.push(block);
        Ok(())
    }

    /// Wraps the binary operation at `target` in a key-controlled
    /// multiplexer controlled by a freshly allocated key bit: the node
    /// becomes `K[bit] ? real : dummy` when `key_value` is `true` and
    /// `K[bit] ? dummy : real` otherwise (Fig. 3a of the paper). The dummy
    /// operation applies `dummy_op` to the same operands.
    ///
    /// Returns the allocated key bit index and an undo token that restores
    /// the previous state (including the key width) when passed to
    /// [`Module::undo_wrap`] (LIFO order only).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::NotABinaryOp`] if `target` is not a binary node.
    pub fn wrap_in_key_mux(
        &mut self,
        target: ExprId,
        key_value: bool,
        dummy_op: BinaryOp,
    ) -> Result<(u32, WrapUndo)> {
        let (op, lhs, rhs) = match *self.arena.get(target)? {
            Expr::Binary { op, lhs, rhs } => (op, lhs, rhs),
            _ => return Err(RtlError::NotABinaryOp(target)),
        };
        let arena_len_before = self.arena.len();
        let key_width_before = self.key_width;
        let key_bit = self.alloc_key_bit();
        let real = self.arena.alloc(Expr::Binary { op, lhs, rhs });
        let dummy = self.arena.alloc(Expr::Binary {
            op: dummy_op,
            lhs,
            rhs,
        });
        let cond = self.arena.alloc(Expr::KeyBit(key_bit));
        let (then_expr, else_expr) = if key_value {
            (real, dummy)
        } else {
            (dummy, real)
        };
        let saved = self.arena.replace(
            target,
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            },
        )?;
        Ok((
            key_bit,
            WrapUndo {
                target,
                saved,
                arena_len_before,
                key_width_before,
            },
        ))
    }

    /// Reverts a [`Module::wrap_in_key_mux`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UndoOrder`] if intervening allocations make the
    /// undo non-LIFO.
    pub fn undo_wrap(&mut self, undo: WrapUndo) -> Result<()> {
        if self.arena.len() != undo.arena_len_before + 3 {
            return Err(RtlError::UndoOrder {
                expected: undo.arena_len_before + 3,
                found: self.arena.len(),
            });
        }
        self.arena.replace(undo.target, undo.saved)?;
        self.arena.truncate(undo.arena_len_before);
        self.key_width = undo.key_width_before;
        Ok(())
    }

    /// Expression roots of the module: every assign right-hand side and
    /// every expression referenced from a clocked process, in deterministic
    /// (declaration) order.
    pub fn roots(&self) -> Vec<ExprId> {
        let mut roots = Vec::new();
        for a in &self.assigns {
            roots.push(a.rhs);
        }
        fn stmt_roots(stmts: &[SeqStmt], out: &mut Vec<ExprId>) {
            for s in stmts {
                match s {
                    SeqStmt::NonBlocking { rhs, .. } => out.push(*rhs),
                    SeqStmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        out.push(*cond);
                        stmt_roots(then_body, out);
                        stmt_roots(else_body, out);
                    }
                }
            }
        }
        for blk in &self.always {
            stmt_roots(&blk.body, &mut roots);
        }
        roots
    }
}

/// Undo token returned by [`Module::wrap_in_key_mux`].
///
/// Tokens must be applied in strict LIFO order relative to other arena
/// mutations; the locking crate's journal enforces this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapUndo {
    pub(crate) target: ExprId,
    pub(crate) saved: Expr,
    pub(crate) arena_len_before: usize,
    pub(crate) key_width_before: u32,
}

impl WrapUndo {
    /// The node id that was wrapped.
    pub fn target(&self) -> ExprId {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> (Module, ExprId) {
        let mut m = Module::new("t");
        m.add_input("a", 8).unwrap();
        m.add_input("b", 8).unwrap();
        m.add_output("y", 8).unwrap();
        let a = m.alloc_expr(Expr::Ident("a".into()));
        let b = m.alloc_expr(Expr::Ident("b".into()));
        let sum = m.alloc_expr(Expr::Binary {
            op: BinaryOp::Add,
            lhs: a,
            rhs: b,
        });
        m.add_assign("y", sum).unwrap();
        (m, sum)
    }

    #[test]
    fn declarations_reject_duplicates_and_bad_widths() {
        let mut m = Module::new("t");
        m.add_input("a", 8).unwrap();
        assert_eq!(
            m.add_wire("a", 8),
            Err(RtlError::DuplicateSignal("a".into()))
        );
        assert_eq!(
            m.add_wire("w", 0),
            Err(RtlError::WidthOutOfRange {
                signal: "w".into(),
                width: 0
            })
        );
        assert_eq!(
            m.add_wire("w", 65),
            Err(RtlError::WidthOutOfRange {
                signal: "w".into(),
                width: 65
            })
        );
        assert_eq!(
            m.add_reg(KEY_PORT, 4),
            Err(RtlError::DuplicateSignal(KEY_PORT.into()))
        );
    }

    #[test]
    fn assign_requires_declared_and_undriven_lhs() {
        let (mut m, sum) = adder();
        assert_eq!(
            m.add_assign("zz", sum),
            Err(RtlError::UnknownSignal("zz".into()))
        );
        assert_eq!(
            m.add_assign("y", sum),
            Err(RtlError::MultipleDrivers("y".into()))
        );
    }

    #[test]
    fn wrap_builds_fig3a_mux_for_key_value_one() {
        let (mut m, sum) = adder();
        let (bit, _undo) = m.wrap_in_key_mux(sum, true, BinaryOp::Sub).unwrap();
        assert_eq!(bit, 0);
        match *m.expr(sum).unwrap() {
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                assert_eq!(*m.expr(cond).unwrap(), Expr::KeyBit(0));
                assert_eq!(m.expr(then_expr).unwrap().binary_op(), Some(BinaryOp::Add));
                assert_eq!(m.expr(else_expr).unwrap().binary_op(), Some(BinaryOp::Sub));
            }
            ref other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn wrap_builds_fig3a_mux_for_key_value_zero() {
        let (mut m, sum) = adder();
        m.wrap_in_key_mux(sum, false, BinaryOp::Sub).unwrap();
        match *m.expr(sum).unwrap() {
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => {
                assert_eq!(m.expr(then_expr).unwrap().binary_op(), Some(BinaryOp::Sub));
                assert_eq!(m.expr(else_expr).unwrap().binary_op(), Some(BinaryOp::Add));
            }
            ref other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn wrap_then_undo_restores_module_exactly() {
        let (mut m, sum) = adder();
        let before = m.clone();
        let (_, undo) = m.wrap_in_key_mux(sum, true, BinaryOp::Sub).unwrap();
        assert_ne!(m, before);
        m.undo_wrap(undo).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn undo_out_of_order_is_rejected() {
        let (mut m, sum) = adder();
        let (_, undo) = m.wrap_in_key_mux(sum, true, BinaryOp::Sub).unwrap();
        m.alloc_expr(Expr::Const {
            value: 0,
            width: None,
        });
        assert!(matches!(m.undo_wrap(undo), Err(RtlError::UndoOrder { .. })));
    }

    #[test]
    fn wrap_rejects_non_binary_targets() {
        let (mut m, _) = adder();
        let ident = m.alloc_expr(Expr::Ident("a".into()));
        let err = m.wrap_in_key_mux(ident, true, BinaryOp::Sub).unwrap_err();
        assert_eq!(err, RtlError::NotABinaryOp(ident));
    }

    #[test]
    fn nested_wrap_creates_fig3b_tree() {
        let (mut m, sum) = adder();
        m.wrap_in_key_mux(sum, true, BinaryOp::Sub).unwrap();
        // Relock both branches separately, as ASSURE does (Fig 3b).
        let (real, dummy) = match *m.expr(sum).unwrap() {
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => (then_expr, else_expr),
            _ => unreachable!(),
        };
        m.wrap_in_key_mux(real, false, BinaryOp::Sub).unwrap();
        m.wrap_in_key_mux(dummy, true, BinaryOp::Add).unwrap();
        assert!(matches!(*m.expr(real).unwrap(), Expr::Ternary { .. }));
        assert!(matches!(*m.expr(dummy).unwrap(), Expr::Ternary { .. }));
        assert_eq!(m.key_width(), 3);
    }

    #[test]
    fn roots_cover_assigns_and_processes() {
        let (mut m, _) = adder();
        m.add_input("clk", 1).unwrap();
        m.add_reg("r", 8).unwrap();
        let c = m.alloc_expr(Expr::Ident("a".into()));
        let v = m.alloc_expr(Expr::Ident("b".into()));
        m.add_always(AlwaysBlock {
            clock: "clk".into(),
            body: vec![SeqStmt::If {
                cond: c,
                then_body: vec![SeqStmt::NonBlocking {
                    lhs: "r".into(),
                    rhs: v,
                }],
                else_body: vec![],
            }],
        })
        .unwrap();
        let roots = m.roots();
        assert_eq!(roots.len(), 3); // assign rhs + if cond + nonblocking rhs
    }

    #[test]
    fn arena_replace_and_truncate() {
        let mut a = ExprArena::new();
        let id = a.alloc(Expr::Const {
            value: 1,
            width: None,
        });
        let old = a
            .replace(
                id,
                Expr::Const {
                    value: 2,
                    width: None,
                },
            )
            .unwrap();
        assert_eq!(
            old,
            Expr::Const {
                value: 1,
                width: None
            }
        );
        a.alloc(Expr::Const {
            value: 3,
            width: None,
        });
        a.truncate(1);
        assert_eq!(a.len(), 1);
        assert!(a.get(ExprId(1)).is_err());
    }
}
