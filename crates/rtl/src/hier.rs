//! Hierarchical designs: multi-module containers and flattening.
//!
//! Real RTL arrives as a module hierarchy; locking and simulation operate
//! on a single flat module (ASSURE locks each module's flattened view).
//! [`Design`] holds a set of modules; [`Design::flatten`] inlines every
//! instance recursively — child signals are prefixed with the instance
//! path (`u0__sum`), input ports become driven wires, and output-port
//! cones are stitched to the parent's connection signals.
//!
//! Flattening requires children to be *unlocked* (key bits are allocated
//! on the flattened design afterwards); locked children are rejected so
//! key-bit indices can never silently collide across instances.

use std::collections::{BTreeMap, HashMap};

use crate::ast::{AlwaysBlock, Expr, ExprId, Instance, Module, NetKind, Port, PortDir, SeqStmt};
use crate::error::{Result, RtlError};

/// A set of modules forming a hierarchy.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::hier::Design;
/// use mlrl_rtl::parser::parse_design;
///
/// let design = parse_design("
/// module leaf(a, y);
///   input [7:0] a;
///   output [7:0] y;
///   assign y = a + 1;
/// endmodule
/// module top(x, z);
///   input [7:0] x;
///   output [7:0] z;
///   wire [7:0] mid;
///   leaf u0 (.a(x), .y(mid));
///   leaf u1 (.a(mid), .y(z));
/// endmodule")?;
/// let flat = design.flatten("top")?;
/// assert!(flat.instances().is_empty());
/// # Ok::<(), mlrl_rtl::error::RtlError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Design {
    modules: BTreeMap<String, Module>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a module.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DuplicateSignal`] (reused for module names) if a
    /// module of that name already exists.
    pub fn add_module(&mut self, module: Module) -> Result<()> {
        let name = module.name().to_owned();
        if self.modules.contains_key(&name) {
            return Err(RtlError::DuplicateSignal(name));
        }
        self.modules.insert(name, module);
        Ok(())
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.get(name)
    }

    /// All module names, sorted.
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.keys().map(String::as_str).collect()
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the design holds no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Modules that are never instantiated — hierarchy roots.
    pub fn tops(&self) -> Vec<&str> {
        let mut instantiated = std::collections::HashSet::new();
        for m in self.modules.values() {
            for i in m.instances() {
                instantiated.insert(i.module_name.as_str());
            }
        }
        self.modules
            .keys()
            .map(String::as_str)
            .filter(|n| !instantiated.contains(n))
            .collect()
    }

    /// Recursively inlines every instance under `top`, producing a flat
    /// module named after `top`.
    ///
    /// # Errors
    ///
    /// - [`RtlError::UnknownSignal`] for missing modules/ports,
    /// - [`RtlError::CombinationalCycle`] (reused) for recursive
    ///   instantiation,
    /// - [`RtlError::Hierarchy`] for locked children or port direction
    ///   mismatches.
    pub fn flatten(&self, top: &str) -> Result<Module> {
        let top_module = self
            .module(top)
            .ok_or_else(|| RtlError::UnknownSignal(top.to_owned()))?;
        let mut stack = vec![top.to_owned()];
        let mut flat = top_module.clone();
        // Fixpoint: repeatedly inline until no instances remain. Each pass
        // inlines the current instance list; nested instances of children
        // appear prefixed and are handled next pass.
        while !flat.instances().is_empty() {
            flat = self.inline_once(&flat, &mut stack)?;
        }
        Ok(flat)
    }

    /// Inlines the direct instances of `parent` (one level).
    fn inline_once(&self, parent: &Module, stack: &mut Vec<String>) -> Result<Module> {
        // Rebuild the parent without instances.
        let mut out = Module::new(parent.name());
        for p in parent.ports() {
            match p.dir {
                PortDir::Input => out.add_input(&p.name, p.width)?,
                PortDir::Output => out.add_output(&p.name, p.width)?,
            }
        }
        for n in parent.nets() {
            match n.kind {
                NetKind::Wire => out.add_wire(&n.name, n.width)?,
                NetKind::Reg => out.add_reg(&n.name, n.width)?,
            }
        }
        // Copy parent expressions (same structure, new arena).
        let mut map: HashMap<ExprId, ExprId> = HashMap::new();
        for a in parent.assigns() {
            let rhs = copy_expr(parent, a.rhs, &mut out, &mut map, None)?;
            out.add_assign(&a.lhs, rhs)?;
        }
        for blk in parent.always_blocks() {
            let body = copy_stmts(parent, &blk.body, &mut out, &mut map, None)?;
            out.add_always(AlwaysBlock {
                clock: blk.clock.clone(),
                body,
            })?;
        }
        if parent.key_width() > 0 {
            return Err(RtlError::Hierarchy(format!(
                "module `{}` is locked; flatten before locking",
                parent.name()
            )));
        }

        for inst in parent.instances() {
            self.inline_instance(parent, inst, &mut out, stack)?;
        }
        Ok(out)
    }

    fn inline_instance(
        &self,
        parent: &Module,
        inst: &Instance,
        out: &mut Module,
        stack: &mut Vec<String>,
    ) -> Result<()> {
        if stack.contains(&inst.module_name) {
            return Err(RtlError::CombinationalCycle(format!(
                "recursive instantiation of `{}`",
                inst.module_name
            )));
        }
        let child = self
            .module(&inst.module_name)
            .ok_or_else(|| RtlError::UnknownSignal(inst.module_name.clone()))?;
        if child.key_width() > 0 {
            return Err(RtlError::Hierarchy(format!(
                "instance `{}` of locked module `{}`; lock after flattening",
                inst.instance_name, inst.module_name
            )));
        }
        stack.push(inst.module_name.clone());

        let prefix = format!("{}__", inst.instance_name);
        let rename = |name: &str| format!("{prefix}{name}");

        // Declare every child signal as a prefixed wire/reg.
        for p in child.ports() {
            out.add_wire(rename(&p.name), p.width)?;
        }
        for n in child.nets() {
            match n.kind {
                NetKind::Wire => out.add_wire(rename(&n.name), n.width)?,
                NetKind::Reg => out.add_reg(rename(&n.name), n.width)?,
            }
        }

        // Port bindings.
        let connection_of = |port: &str| -> Option<&str> {
            inst.connections
                .iter()
                .find(|c| c.port == port)
                .map(|c| c.signal.as_str())
        };
        for p in child.ports() {
            match p.dir {
                PortDir::Input => {
                    // Drive the prefixed input wire from the parent signal
                    // (unconnected inputs default to 0).
                    let rhs = match connection_of(&p.name) {
                        Some(signal) => out.alloc_expr(Expr::Ident(signal.to_owned())),
                        None => out.alloc_expr(Expr::Const {
                            value: 0,
                            width: Some(p.width),
                        }),
                    };
                    out.add_assign(rename(&p.name), rhs)?;
                }
                PortDir::Output => {
                    if let Some(signal) = connection_of(&p.name) {
                        let rhs = out.alloc_expr(Expr::Ident(rename(&p.name)));
                        out.add_assign(signal, rhs)?;
                    }
                }
            }
        }
        for c in &inst.connections {
            if !child.ports().iter().any(|p| p.name == c.port) {
                return Err(RtlError::Hierarchy(format!(
                    "instance `{}` connects unknown port `{}` of `{}`",
                    inst.instance_name, c.port, inst.module_name
                )));
            }
            if !parent.is_declared(&c.signal) {
                return Err(RtlError::UnknownSignal(c.signal.clone()));
            }
        }

        // Inline child logic with renamed signals.
        let mut map: HashMap<ExprId, ExprId> = HashMap::new();
        for a in child.assigns() {
            let rhs = copy_expr(child, a.rhs, out, &mut map, Some(&prefix))?;
            out.add_assign(rename(&a.lhs), rhs)?;
        }
        for blk in child.always_blocks() {
            let body = copy_stmts(child, &blk.body, out, &mut map, Some(&prefix))?;
            out.add_always(AlwaysBlock {
                clock: rename(&blk.clock),
                body,
            })?;
        }
        // Nested instances carry the prefix on their connections; they are
        // inlined on the next fixpoint pass.
        for nested in child.instances() {
            let mut renamed = nested.clone();
            renamed.instance_name = rename(&nested.instance_name);
            for c in &mut renamed.connections {
                c.signal = rename(&c.signal);
            }
            out.add_instance(renamed)?;
        }

        stack.pop();
        Ok(())
    }
}

impl FromIterator<Module> for Design {
    fn from_iter<T: IntoIterator<Item = Module>>(iter: T) -> Self {
        let mut d = Design::new();
        for m in iter {
            d.add_module(m).expect("unique module names");
        }
        d
    }
}

/// Deep-copies the expression at `id` from `src` into `dst`, renaming
/// identifiers with `prefix` when given. `map` memoizes shared nodes so DAG
/// sharing survives the copy.
fn copy_expr(
    src: &Module,
    id: ExprId,
    dst: &mut Module,
    map: &mut HashMap<ExprId, ExprId>,
    prefix: Option<&str>,
) -> Result<ExprId> {
    if let Some(&done) = map.get(&id) {
        return Ok(done);
    }
    let expr = src.expr(id)?.clone();
    let new = match expr {
        Expr::Const { value, width } => dst.alloc_expr(Expr::Const { value, width }),
        Expr::Ident(name) => {
            let name = match prefix {
                Some(p) => format!("{p}{name}"),
                None => name,
            };
            dst.alloc_expr(Expr::Ident(name))
        }
        Expr::KeyBit(b) => dst.alloc_expr(Expr::KeyBit(b)),
        Expr::KeySlice { lsb, width } => dst.alloc_expr(Expr::KeySlice { lsb, width }),
        Expr::Index { base, bit } => {
            let base = match prefix {
                Some(p) => format!("{p}{base}"),
                None => base,
            };
            dst.alloc_expr(Expr::Index { base, bit })
        }
        Expr::Unary { op, arg } => {
            let arg = copy_expr(src, arg, dst, map, prefix)?;
            dst.alloc_expr(Expr::Unary { op, arg })
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = copy_expr(src, lhs, dst, map, prefix)?;
            let rhs = copy_expr(src, rhs, dst, map, prefix)?;
            dst.alloc_expr(Expr::Binary { op, lhs, rhs })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let cond = copy_expr(src, cond, dst, map, prefix)?;
            let then_expr = copy_expr(src, then_expr, dst, map, prefix)?;
            let else_expr = copy_expr(src, else_expr, dst, map, prefix)?;
            dst.alloc_expr(Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            })
        }
    };
    map.insert(id, new);
    Ok(new)
}

fn copy_stmts(
    src: &Module,
    stmts: &[SeqStmt],
    dst: &mut Module,
    map: &mut HashMap<ExprId, ExprId>,
    prefix: Option<&str>,
) -> Result<Vec<SeqStmt>> {
    let mut out = Vec::with_capacity(stmts.len());
    let rename = |name: &str| match prefix {
        Some(p) => format!("{p}{name}"),
        None => name.to_owned(),
    };
    for s in stmts {
        out.push(match s {
            SeqStmt::NonBlocking { lhs, rhs } => SeqStmt::NonBlocking {
                lhs: rename(lhs),
                rhs: copy_expr(src, *rhs, dst, map, prefix)?,
            },
            SeqStmt::If {
                cond,
                then_body,
                else_body,
            } => SeqStmt::If {
                cond: copy_expr(src, *cond, dst, map, prefix)?,
                then_body: copy_stmts(src, then_body, dst, map, prefix)?,
                else_body: copy_stmts(src, else_body, dst, map, prefix)?,
            },
        });
    }
    Ok(out)
}

/// Width lookup helper for ports used by the flattener.
#[allow(dead_code)]
fn port_width(ports: &[Port], name: &str) -> Option<u32> {
    ports.iter().find(|p| p.name == name).map(|p| p.width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_design;
    use crate::sim::Simulator;

    const TWO_LEVEL: &str = "
module leaf(a, b, y);
  input [7:0] a, b;
  output [7:0] y;
  assign y = a + b;
endmodule
module top(x, z);
  input [7:0] x;
  output [7:0] z;
  wire [7:0] mid;
  leaf u0 (.a(x), .b(x), .y(mid));
  leaf u1 (.a(mid), .b(x), .y(z));
endmodule";

    #[test]
    fn flatten_inlines_two_levels() {
        let design = parse_design(TWO_LEVEL).unwrap();
        assert_eq!(design.len(), 2);
        assert_eq!(design.tops(), vec!["top"]);
        let flat = design.flatten("top").unwrap();
        assert!(flat.instances().is_empty());
        // u0: x + x = 2x; u1: 2x + x = 3x.
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set_input("x", 7).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get("z").unwrap(), 21);
    }

    #[test]
    fn flattened_ops_are_lockable() {
        let design = parse_design(TWO_LEVEL).unwrap();
        let flat = design.flatten("top").unwrap();
        assert_eq!(
            crate::visit::binary_ops(&flat).len(),
            2,
            "one add per instance"
        );
    }

    #[test]
    fn three_level_hierarchy() {
        let src = format!(
            "{TWO_LEVEL}
module wrapper(p, q);
  input [7:0] p;
  output [7:0] q;
  top inner (.x(p), .z(q));
endmodule"
        );
        let design = parse_design(&src).unwrap();
        let flat = design.flatten("wrapper").unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set_input("p", 5).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get("q").unwrap(), 15);
    }

    #[test]
    fn recursive_instantiation_is_rejected() {
        let src = "
module a(x, y);
  input [7:0] x;
  output [7:0] y;
  wire [7:0] t;
  a inner (.x(x), .y(t));
  assign y = t;
endmodule";
        let design = parse_design(src).unwrap();
        let err = design.flatten("a").unwrap_err();
        assert!(matches!(err, RtlError::CombinationalCycle(_)), "{err:?}");
    }

    #[test]
    fn unknown_child_module_is_reported() {
        let src = "
module top(x, y);
  input [7:0] x;
  output [7:0] y;
  ghost g0 (.a(x), .b(y));
endmodule";
        let design = parse_design(src).unwrap();
        assert_eq!(
            design.flatten("top").unwrap_err(),
            RtlError::UnknownSignal("ghost".into())
        );
    }

    #[test]
    fn unknown_port_is_reported() {
        let src = "
module leaf(a, y);
  input [7:0] a;
  output [7:0] y;
  assign y = a;
endmodule
module top(x, z);
  input [7:0] x;
  output [7:0] z;
  leaf u0 (.a(x), .nope(z));
endmodule";
        let design = parse_design(src).unwrap();
        assert!(matches!(
            design.flatten("top").unwrap_err(),
            RtlError::Hierarchy(_)
        ));
    }

    #[test]
    fn unconnected_input_defaults_to_zero() {
        let src = "
module leaf(a, b, y);
  input [7:0] a, b;
  output [7:0] y;
  assign y = a + b;
endmodule
module top(x, z);
  input [7:0] x;
  output [7:0] z;
  leaf u0 (.a(x), .y(z));
endmodule";
        let design = parse_design(src).unwrap();
        let flat = design.flatten("top").unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set_input("x", 9).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get("z").unwrap(), 9);
    }

    #[test]
    fn sequential_children_flatten() {
        let src = "
module counter(clk, en, q);
  input clk;
  input en;
  output [7:0] q;
  reg [7:0] c;
  assign q = c;
  always @(posedge clk) begin
    if (en) begin
      c <= c + 1;
    end
  end
endmodule
module top(clk, go, total);
  input clk;
  input go;
  output [7:0] total;
  counter u0 (.clk(clk), .en(go), .q(total));
endmodule";
        let design = parse_design(src).unwrap();
        let flat = design.flatten("top").unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set_input("go", 1).unwrap();
        for _ in 0..3 {
            sim.tick().unwrap();
        }
        assert_eq!(sim.get("total").unwrap(), 3);
    }

    #[test]
    fn locked_child_is_rejected() {
        let mut design = parse_design(TWO_LEVEL).unwrap();
        // Lock the leaf in place.
        let mut leaf = design.module("leaf").unwrap().clone();
        let site = crate::visit::binary_ops(&leaf)[0];
        leaf.wrap_in_key_mux(site.id, true, crate::op::BinaryOp::Sub)
            .unwrap();
        let mut rebuilt = Design::new();
        rebuilt.add_module(leaf).unwrap();
        rebuilt
            .add_module(design.module("top").unwrap().clone())
            .unwrap();
        design = rebuilt;
        assert!(matches!(
            design.flatten("top").unwrap_err(),
            RtlError::Hierarchy(_)
        ));
    }

    #[test]
    fn duplicate_module_names_rejected() {
        let mut d = Design::new();
        d.add_module(Module::new("m")).unwrap();
        assert!(d.add_module(Module::new("m")).is_err());
    }
}
