//! Traversal utilities: reachable-node walks, operation enumeration and
//! operation-type census over a [`Module`].
//!
//! Locking selects operations from the *reachable* expression graph (nodes
//! reachable from assign right-hand sides and process statements). Every walk
//! is deterministic: roots in declaration order, depth-first, children in
//! evaluation order, each shared node visited once.

use std::collections::HashMap;

use crate::ast::{Expr, ExprId, Module};
use crate::op::BinaryOp;

/// A lockable operation site: a binary node and its operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSite {
    /// Node id of the binary operation.
    pub id: ExprId,
    /// Operator at that node.
    pub op: BinaryOp,
}

/// Visits every reachable expression node exactly once, depth-first
/// pre-order, in deterministic order.
pub fn walk_exprs<F: FnMut(ExprId, &Expr)>(module: &Module, mut f: F) {
    let mut visited = vec![false; module.arena().len()];
    let mut stack: Vec<ExprId> = Vec::new();
    // Push roots in reverse so the first root is processed first.
    let roots = module.roots();
    for &root in roots.iter().rev() {
        stack.push(root);
    }
    while let Some(id) = stack.pop() {
        let idx = id.index();
        if idx >= visited.len() || visited[idx] {
            continue;
        }
        visited[idx] = true;
        let expr = match module.expr(id) {
            Ok(e) => e,
            Err(_) => continue,
        };
        f(id, expr);
        let children = expr.children();
        for &c in children.iter().rev() {
            stack.push(c);
        }
    }
}

/// All reachable binary-operation sites, in deterministic walk order.
///
/// This is the operation universe the locking algorithms select from
/// (`D.ops` in Alg. 1); it includes dummy operations introduced by earlier
/// locking rounds, because an attacker — and a relocking round — cannot tell
/// them apart from real ones.
pub fn binary_ops(module: &Module) -> Vec<OpSite> {
    let mut out = Vec::new();
    walk_exprs(module, |id, expr| {
        if let Some(op) = expr.binary_op() {
            out.push(OpSite { id, op });
        }
    });
    out
}

/// Reachable binary-operation sites of one specific type.
pub fn ops_of_type(module: &Module, op: BinaryOp) -> Vec<OpSite> {
    binary_ops(module)
        .into_iter()
        .filter(|s| s.op == op)
        .collect()
}

/// Census of reachable operation types: `op -> count`.
///
/// This is the distribution the ODT (operation distribution table) is loaded
/// from (§4 "Operation distribution").
pub fn op_census(module: &Module) -> HashMap<BinaryOp, usize> {
    let mut counts = HashMap::new();
    walk_exprs(module, |_, expr| {
        if let Some(op) = expr.binary_op() {
            *counts.entry(op).or_insert(0) += 1;
        }
    });
    counts
}

/// Count of reachable key-controlled multiplexers (locked pairs).
pub fn key_mux_count(module: &Module) -> usize {
    let mut n = 0;
    walk_exprs(module, |_, expr| {
        if let Expr::Ternary { cond, .. } = expr {
            if matches!(module.expr(*cond), Ok(Expr::KeyBit(_))) {
                n += 1;
            }
        }
    });
    n
}

/// Depth of the expression tree rooted at `id` (a leaf has depth 1).
pub fn expr_depth(module: &Module, id: ExprId) -> usize {
    match module.expr(id) {
        Ok(expr) => {
            1 + expr
                .children()
                .into_iter()
                .map(|c| expr_depth(module, c))
                .max()
                .unwrap_or(0)
        }
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn chain(n: usize) -> Module {
        // y = ((a + b) + b) + b ... n additions, each its own assign/wire.
        let mut m = Module::new("chain");
        m.add_input("a", 32).unwrap();
        m.add_input("b", 32).unwrap();
        m.add_output("y", 32).unwrap();
        let mut prev = m.alloc_expr(Expr::Ident("a".into()));
        for i in 0..n {
            let w = format!("w{i}");
            m.add_wire(&w, 32).unwrap();
            let b = m.alloc_expr(Expr::Ident("b".into()));
            let sum = m.alloc_expr(Expr::Binary {
                op: BinaryOp::Add,
                lhs: prev,
                rhs: b,
            });
            m.add_assign(&w, sum).unwrap();
            prev = m.alloc_expr(Expr::Ident(w));
        }
        m.add_assign("y", prev).unwrap();
        m
    }

    #[test]
    fn census_counts_every_reachable_op() {
        let m = chain(5);
        let census = op_census(&m);
        assert_eq!(census.get(&BinaryOp::Add), Some(&5));
        assert_eq!(census.len(), 1);
    }

    #[test]
    fn binary_ops_order_is_deterministic() {
        let m = chain(4);
        let a = binary_ops(&m);
        let b = binary_ops(&m);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn shared_nodes_visited_once() {
        let mut m = Module::new("shared");
        m.add_input("a", 8).unwrap();
        m.add_output("x", 8).unwrap();
        m.add_output("y", 8).unwrap();
        let a = m.alloc_expr(Expr::Ident("a".into()));
        let sum = m.alloc_expr(Expr::Binary {
            op: BinaryOp::Add,
            lhs: a,
            rhs: a,
        });
        m.add_assign("x", sum).unwrap();
        m.add_assign("y", sum).unwrap(); // same node shared by two roots
        assert_eq!(binary_ops(&m).len(), 1);
    }

    #[test]
    fn locking_dummy_appears_in_census() {
        let mut m = chain(3);
        let site = binary_ops(&m)[0];
        m.wrap_in_key_mux(site.id, true, BinaryOp::Sub).unwrap();
        let census = op_census(&m);
        assert_eq!(census.get(&BinaryOp::Add), Some(&3));
        assert_eq!(census.get(&BinaryOp::Sub), Some(&1));
        assert_eq!(key_mux_count(&m), 1);
    }

    #[test]
    fn ops_of_type_filters() {
        let mut m = chain(2);
        let site = binary_ops(&m)[0];
        m.wrap_in_key_mux(site.id, false, BinaryOp::Sub).unwrap();
        assert_eq!(ops_of_type(&m, BinaryOp::Sub).len(), 1);
        assert_eq!(ops_of_type(&m, BinaryOp::Add).len(), 2);
        assert_eq!(ops_of_type(&m, BinaryOp::Mul).len(), 0);
    }

    #[test]
    fn depth_counts_levels() {
        let mut m = Module::new("d");
        m.add_input("a", 8).unwrap();
        m.add_output("y", 8).unwrap();
        let a = m.alloc_expr(Expr::Ident("a".into()));
        let s1 = m.alloc_expr(Expr::Binary {
            op: BinaryOp::Add,
            lhs: a,
            rhs: a,
        });
        let s2 = m.alloc_expr(Expr::Binary {
            op: BinaryOp::Xor,
            lhs: s1,
            rhs: a,
        });
        m.add_assign("y", s2).unwrap();
        assert_eq!(expr_depth(&m, s2), 3);
        assert_eq!(expr_depth(&m, a), 1);
    }
}
