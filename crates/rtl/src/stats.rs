//! Design statistics and locking-overhead reporting.
//!
//! Locking adds logic: each key bit buys one dummy operation plus a
//! multiplexer. [`DesignStats`] summarizes a module before/after locking so
//! examples and the harness can report the cost side of the evaluation
//! (the paper notes the per-bit cost of ERA/HRA "is in line with the
//! original ASSURE").

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Expr, Module, NetKind, PortDir};
use crate::op::BinaryOp;
use crate::visit;

/// A snapshot of a module's size and composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// Module name.
    pub name: String,
    /// Input/output port counts.
    pub inputs: usize,
    /// Output port count.
    pub outputs: usize,
    /// Wire count.
    pub wires: usize,
    /// Register count.
    pub regs: usize,
    /// Continuous assignments.
    pub assigns: usize,
    /// Clocked processes.
    pub processes: usize,
    /// Reachable expression nodes.
    pub expr_nodes: usize,
    /// Reachable binary operations by type (sorted).
    pub ops: BTreeMap<BinaryOp, usize>,
    /// Key-controlled multiplexers (locked pairs).
    pub key_muxes: usize,
    /// Key width in bits.
    pub key_bits: u32,
    /// Maximum expression depth over all roots.
    pub max_depth: usize,
}

impl DesignStats {
    /// Collects statistics from `module`.
    pub fn of(module: &Module) -> Self {
        let mut expr_nodes = 0usize;
        visit::walk_exprs(module, |_, _| expr_nodes += 1);
        let ops: BTreeMap<BinaryOp, usize> = visit::op_census(module).into_iter().collect();
        let max_depth = module
            .roots()
            .into_iter()
            .map(|r| visit::expr_depth(module, r))
            .max()
            .unwrap_or(0);
        Self {
            name: module.name().to_owned(),
            inputs: module
                .ports()
                .iter()
                .filter(|p| p.dir == PortDir::Input)
                .count(),
            outputs: module
                .ports()
                .iter()
                .filter(|p| p.dir == PortDir::Output)
                .count(),
            wires: module
                .nets()
                .iter()
                .filter(|n| n.kind == NetKind::Wire)
                .count(),
            regs: module
                .nets()
                .iter()
                .filter(|n| n.kind == NetKind::Reg)
                .count(),
            assigns: module.assigns().len(),
            processes: module.always_blocks().len(),
            expr_nodes,
            ops,
            key_muxes: visit::key_mux_count(module),
            key_bits: module.key_width(),
            max_depth,
        }
    }

    /// Total binary operations.
    pub fn total_ops(&self) -> usize {
        self.ops.values().sum()
    }

    /// Locking overhead relative to `baseline`: extra operations and extra
    /// expression nodes, as counts.
    pub fn overhead_vs(&self, baseline: &DesignStats) -> LockingOverhead {
        LockingOverhead {
            extra_ops: self.total_ops().saturating_sub(baseline.total_ops()),
            extra_nodes: self.expr_nodes.saturating_sub(baseline.expr_nodes),
            key_bits: self.key_bits.saturating_sub(baseline.key_bits),
            key_muxes: self.key_muxes.saturating_sub(baseline.key_muxes),
        }
    }

    /// Count of constant nodes reachable in the design (constant-
    /// obfuscation material).
    pub fn constants(module: &Module) -> usize {
        let mut n = 0usize;
        visit::walk_exprs(module, |_, e| {
            if matches!(e, Expr::Const { .. }) {
                n += 1;
            }
        });
        n
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} in / {} out, {} wires, {} regs, {} assigns, {} procs",
            self.name,
            self.inputs,
            self.outputs,
            self.wires,
            self.regs,
            self.assigns,
            self.processes
        )?;
        writeln!(
            f,
            "  {} expr nodes (max depth {}), {} ops, {} key muxes, {} key bits",
            self.expr_nodes,
            self.max_depth,
            self.total_ops(),
            self.key_muxes,
            self.key_bits
        )?;
        let ops: Vec<String> = self.ops.iter().map(|(op, n)| format!("{op}:{n}")).collect();
        write!(f, "  op mix: {}", ops.join(" "))
    }
}

/// Cost of a locking run, per [`DesignStats::overhead_vs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockingOverhead {
    /// Dummy operations added.
    pub extra_ops: usize,
    /// Expression nodes added (dummies + mux conditions + copies).
    pub extra_nodes: usize,
    /// Key bits consumed.
    pub key_bits: u32,
    /// Key multiplexers inserted.
    pub key_muxes: usize,
}

impl LockingOverhead {
    /// Operations added per key bit — the paper's cost yardstick ("the cost
    /// of a locking pair per key bit has not changed").
    pub fn ops_per_key_bit(&self) -> f64 {
        if self.key_bits == 0 {
            0.0
        } else {
            self.extra_ops as f64 / self.key_bits as f64
        }
    }
}

impl fmt::Display for LockingOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+{} ops, +{} nodes, {} key bits, {} muxes ({:.2} ops/bit)",
            self.extra_ops,
            self.extra_nodes,
            self.key_bits,
            self.key_muxes,
            self.ops_per_key_bit()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_designs::{benchmark_by_name, generate};

    #[test]
    fn stats_match_spec() {
        let spec = benchmark_by_name("FIR").unwrap();
        let m = generate(&spec, 1);
        let stats = DesignStats::of(&m);
        assert_eq!(stats.total_ops(), 63);
        assert_eq!(stats.ops[&BinaryOp::Mul], 32);
        assert_eq!(stats.key_bits, 0);
        assert_eq!(stats.key_muxes, 0);
        assert!(stats.max_depth >= 2);
        assert!(stats.inputs >= 4);
    }

    #[test]
    fn overhead_counts_locking_cost() {
        let spec = benchmark_by_name("IIR").unwrap();
        let m0 = generate(&spec, 2);
        let before = DesignStats::of(&m0);
        let mut m1 = m0.clone();
        // Lock ten operations by hand via the wrap primitive.
        let sites = crate::visit::binary_ops(&m1);
        for (i, site) in sites.into_iter().take(10).enumerate() {
            let dummy = if site.op == BinaryOp::Mul {
                BinaryOp::Div
            } else {
                BinaryOp::Sub
            };
            m1.wrap_in_key_mux(site.id, i % 2 == 0, dummy).unwrap();
        }
        let after = DesignStats::of(&m1);
        let overhead = after.overhead_vs(&before);
        assert_eq!(overhead.key_bits, 10);
        assert_eq!(overhead.key_muxes, 10);
        assert_eq!(overhead.extra_ops, 10, "one dummy per key bit");
        assert!((overhead.ops_per_key_bit() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let m = generate(&benchmark_by_name("SASC").unwrap(), 3);
        let s = DesignStats::of(&m).to_string();
        assert!(s.contains("sasc"));
        assert!(s.contains("op mix"));
    }

    #[test]
    fn constants_counted() {
        let m = generate(&benchmark_by_name("DES3").unwrap(), 4);
        // DES3 contains shift amounts as constants.
        assert!(DesignStats::constants(&m) > 0);
    }
}
