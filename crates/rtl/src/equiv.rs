//! Random-simulation equivalence checking.
//!
//! A miter-style probe used throughout the test suite: two modules are
//! driven with the same random input patterns (and their own key values)
//! and compared on every shared output port, including across clock ticks
//! for sequential designs. Random simulation cannot *prove* equivalence,
//! but for locking verification it is the right tool: a wrong key bit
//! flips a multiplexer whose effect random patterns expose quickly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{Module, PortDir};
use crate::error::Result;
use crate::sim::Simulator;

/// Configuration for [`check_equiv`].
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Random input patterns per clock phase.
    pub patterns: usize,
    /// Clock ticks applied after each pattern (0 for pure combinational).
    pub ticks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        Self {
            patterns: 32,
            ticks: 2,
            seed: 0,
        }
    }
}

/// Outcome of an equivalence probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No mismatch found over the configured patterns.
    Equivalent {
        /// Patterns exercised.
        patterns: usize,
    },
    /// A counterexample was found.
    Mismatch {
        /// Index of the failing pattern.
        pattern: usize,
        /// Output port that differed.
        output: String,
        /// Value in the first module.
        left: u64,
        /// Value in the second module.
        right: u64,
    },
}

impl EquivResult {
    /// Whether the probe found no mismatch.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent { .. })
    }
}

/// Compares `left` (with `left_key`) against `right` (with `right_key`)
/// on all shared output ports under random stimulus.
///
/// # Errors
///
/// Propagates simulator errors (combinational cycles, key too short, ...).
pub fn check_equiv(
    left: &Module,
    right: &Module,
    left_key: &[bool],
    right_key: &[bool],
    cfg: &EquivConfig,
) -> Result<EquivResult> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let inputs: Vec<String> = left
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input && p.name != "clk")
        .map(|p| p.name.clone())
        .filter(|n| right.signal_width(n).is_some())
        .collect();
    let outputs: Vec<String> = left
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .filter(|n| right.signal_width(n).is_some())
        .collect();

    let mut sim_l = Simulator::new(left)?;
    let mut sim_r = Simulator::new(right)?;
    sim_l.set_key(left_key)?;
    sim_r.set_key(right_key)?;

    for pattern in 0..cfg.patterns {
        for name in &inputs {
            let v: u64 = rng.gen();
            sim_l.set_input(name, v)?;
            sim_r.set_input(name, v)?;
        }
        sim_l.settle()?;
        sim_r.settle()?;
        for _ in 0..cfg.ticks {
            sim_l.tick()?;
            sim_r.tick()?;
        }
        for name in &outputs {
            let l = sim_l.get(name)?;
            let r = sim_r.get(name)?;
            if l != r {
                return Ok(EquivResult::Mismatch {
                    pattern,
                    output: name.clone(),
                    left: l,
                    right: r,
                });
            }
        }
    }
    Ok(EquivResult::Equivalent {
        patterns: cfg.patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::bench_designs::{benchmark_by_name, generate};
    use crate::op::BinaryOp;

    #[test]
    fn identical_modules_are_equivalent() {
        let m = generate(&benchmark_by_name("IIR").unwrap(), 1);
        let r = check_equiv(&m, &m.clone(), &[], &[], &EquivConfig::default()).unwrap();
        assert!(r.is_equivalent());
    }

    #[test]
    fn locked_module_equivalent_under_correct_key() {
        let original = generate(&benchmark_by_name("FIR").unwrap(), 2);
        let mut locked = original.clone();
        let site = crate::visit::binary_ops(&locked)[5];
        let dummy = if site.op == BinaryOp::Mul {
            BinaryOp::Div
        } else {
            BinaryOp::Sub
        };
        let (bit, _) = locked.wrap_in_key_mux(site.id, true, dummy).unwrap();
        assert_eq!(bit, 0);
        let r = check_equiv(&original, &locked, &[], &[true], &EquivConfig::default()).unwrap();
        assert!(r.is_equivalent());
    }

    #[test]
    fn wrong_key_produces_counterexample() {
        let original = generate(&benchmark_by_name("FIR").unwrap(), 2);
        let mut locked = original.clone();
        let site = crate::visit::binary_ops(&locked)[5];
        let dummy = if site.op == BinaryOp::Mul {
            BinaryOp::Div
        } else {
            BinaryOp::Sub
        };
        locked.wrap_in_key_mux(site.id, true, dummy).unwrap();
        let r = check_equiv(&original, &locked, &[], &[false], &EquivConfig::default()).unwrap();
        match r {
            EquivResult::Mismatch {
                output,
                left,
                right,
                ..
            } => {
                assert_ne!(left, right);
                assert!(!output.is_empty());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn structurally_different_equivalent_designs_pass() {
        // y = a + a  vs  y = a << 1 (wait: << adds a const; use a * 2).
        let build = |mul: bool| {
            let mut m = Module::new("t");
            m.add_input("a", 32).unwrap();
            m.add_output("y", 32).unwrap();
            let a = m.alloc_expr(Expr::Ident("a".into()));
            let root = if mul {
                let two = m.alloc_expr(Expr::Const {
                    value: 2,
                    width: None,
                });
                m.alloc_expr(Expr::Binary {
                    op: BinaryOp::Mul,
                    lhs: a,
                    rhs: two,
                })
            } else {
                let a2 = m.alloc_expr(Expr::Ident("a".into()));
                m.alloc_expr(Expr::Binary {
                    op: BinaryOp::Add,
                    lhs: a,
                    rhs: a2,
                })
            };
            m.add_assign("y", root).unwrap();
            m
        };
        let r = check_equiv(
            &build(true),
            &build(false),
            &[],
            &[],
            &EquivConfig::default(),
        )
        .unwrap();
        assert!(r.is_equivalent());
    }

    #[test]
    fn sequential_designs_compared_across_ticks() {
        let m = generate(&benchmark_by_name("SASC").unwrap(), 5);
        let cfg = EquivConfig {
            patterns: 8,
            ticks: 3,
            seed: 1,
        };
        let r = check_equiv(&m, &m.clone(), &[], &[], &cfg).unwrap();
        assert!(r.is_equivalent());
    }
}
