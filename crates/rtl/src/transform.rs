//! Synthesis-like RTL transformations.
//!
//! Real flows run optimization between locking and the attacker's view.
//! [`constant_fold`] models the pass most relevant to locking security:
//! expressions over literals collapse to literals. The pass is
//! *key-oblivious* — `K[i]` is an unknown input, so key-controlled
//! multiplexers and anything below a key reference survive — which is
//! exactly why operation obfuscation resists constant propagation while
//! naive XOR-insertion schemes at gate level do not.

use crate::ast::{Expr, ExprId, Module};
use crate::error::Result;
use crate::op::UnaryOp;
use crate::sim::eval_binary;
use crate::visit;

/// Result of a constant-folding pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FoldReport {
    /// Binary/unary/ternary nodes replaced by constants.
    pub folded: usize,
    /// Non-key ternaries resolved to one branch.
    pub branches_resolved: usize,
}

/// Folds constant sub-expressions in place until a fixpoint.
///
/// Only reachable nodes are visited. Key bits and key slices are treated
/// as opaque unknowns: a key-controlled ternary is never resolved, and an
/// expression containing a key reference is never folded.
///
/// # Errors
///
/// Propagates arena access errors (cannot occur on a well-formed module).
pub fn constant_fold(module: &mut Module) -> Result<FoldReport> {
    let mut report = FoldReport::default();
    loop {
        let mut changed = false;
        // Snapshot reachable ids; mutation below only rewrites node
        // contents in place, never allocates, so ids stay valid.
        let mut ids: Vec<ExprId> = Vec::new();
        visit::walk_exprs(module, |id, _| ids.push(id));
        for id in ids {
            let new_node = {
                let expr = module.expr(id)?;
                match expr {
                    // Intermediate expression values are full 64-bit in the
                    // simulator (widths apply at net assignment), so folded
                    // constants are *unsized*: `8'd200 + 8'd100` is 300.
                    Expr::Unary { op, arg } => match module.expr(*arg)? {
                        Expr::Const { value, width } => {
                            let operand = mask_opt(*value, *width);
                            let v = match op {
                                UnaryOp::Not => !operand,
                                UnaryOp::Neg => operand.wrapping_neg(),
                                UnaryOp::LNot => (operand == 0) as u64,
                            };
                            Some(Expr::Const {
                                value: v,
                                width: None,
                            })
                        }
                        _ => None,
                    },
                    Expr::Binary { op, lhs, rhs } => {
                        match (module.expr(*lhs)?, module.expr(*rhs)?) {
                            (
                                Expr::Const {
                                    value: a,
                                    width: wa,
                                },
                                Expr::Const {
                                    value: b,
                                    width: wb,
                                },
                            ) => {
                                let v = eval_binary(*op, mask_opt(*a, *wa), mask_opt(*b, *wb));
                                Some(Expr::Const {
                                    value: v,
                                    width: None,
                                })
                            }
                            _ => None,
                        }
                    }
                    Expr::Ternary {
                        cond,
                        then_expr,
                        else_expr,
                    } => match module.expr(*cond)? {
                        Expr::Const { value, .. } => {
                            let taken = if *value != 0 { *then_expr } else { *else_expr };
                            report.branches_resolved += 1;
                            Some(module.expr(taken)?.clone())
                        }
                        _ => None,
                    },
                    _ => None,
                }
            };
            if let Some(node) = new_node {
                if matches!(node, Expr::Const { .. }) {
                    report.folded += 1;
                }
                module.replace_expr(id, node)?;
                changed = true;
            }
        }
        if !changed {
            return Ok(report);
        }
    }
}

fn mask_opt(v: u64, width: Option<u32>) -> u64 {
    match width {
        Some(w) if w < 64 => v & ((1u64 << w) - 1),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryOp;
    use crate::parser::parse_verilog;
    use crate::sim::Simulator;

    fn fold_and_eval(src: &str, key: &[bool]) -> (Module, u64) {
        let mut m = parse_verilog(src).unwrap();
        constant_fold(&mut m).unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_key(key).unwrap();
        sim.settle().unwrap();
        let y = sim.get("y").unwrap();
        (m, y)
    }

    #[test]
    fn folds_constant_arithmetic() {
        let (m, y) = fold_and_eval(
            "module t(y);\n output [7:0] y;\n assign y = 2 + 3 * 4;\nendmodule",
            &[],
        );
        assert_eq!(y, 14);
        let root = m.assigns()[0].rhs;
        assert!(matches!(
            m.expr(root).unwrap(),
            Expr::Const { value: 14, .. }
        ));
    }

    #[test]
    fn resolves_constant_conditionals() {
        let mut m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = 1 ? a + 1 : a - 1;\nendmodule",
        )
        .unwrap();
        let report = constant_fold(&mut m).unwrap();
        assert_eq!(report.branches_resolved, 1);
        let root = m.assigns()[0].rhs;
        assert_eq!(m.expr(root).unwrap().binary_op(), Some(BinaryOp::Add));
    }

    #[test]
    fn key_muxes_survive_folding() {
        let mut m = parse_verilog(
            "module t(K, y);\n input [0:0] K;\n output [7:0] y;\n assign y = K[0] ? 2 + 3 : 2 - 3;\nendmodule",
        )
        .unwrap();
        let report = constant_fold(&mut m).unwrap();
        assert_eq!(report.branches_resolved, 0, "key mux must not be resolved");
        // The branches themselves fold, but the mux stays.
        let root = m.assigns()[0].rhs;
        assert!(matches!(m.expr(root).unwrap(), Expr::Ternary { .. }));
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_key(&[true]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get("y").unwrap(), 5);
    }

    #[test]
    fn key_slices_are_opaque() {
        let (m, _) = fold_and_eval(
            "module t(K, y);\n input [3:0] K;\n output [7:0] y;\n assign y = K[3:0] + 0;\nendmodule",
            &[false; 4],
        );
        let root = m.assigns()[0].rhs;
        // Cannot fold an expression over an unknown key slice.
        assert_eq!(m.expr(root).unwrap().binary_op(), Some(BinaryOp::Add));
    }

    #[test]
    fn folding_preserves_locked_design_function() {
        use crate::bench_designs::{benchmark_by_name, generate};
        use crate::equiv::{check_equiv, EquivConfig};
        let original = generate(&benchmark_by_name("DES3").unwrap(), 3);
        let mut folded = original.clone();
        let report = constant_fold(&mut folded).unwrap();
        // DES3 has constant shift amounts but no constant-constant ops; the
        // pass must at minimum be behaviour-preserving.
        let r = check_equiv(&original, &folded, &[], &[], &EquivConfig::default()).unwrap();
        assert!(r.is_equivalent(), "fold changed behaviour ({report:?})");
    }

    #[test]
    fn fixpoint_reaches_nested_constants() {
        let (m, y) = fold_and_eval(
            "module t(y);\n output [7:0] y;\n assign y = ~(0 ? 1 : 2) & 7;\nendmodule",
            &[],
        );
        assert_eq!(y, (!2u64) & 7);
        let root = m.assigns()[0].rhs;
        assert!(matches!(m.expr(root).unwrap(), Expr::Const { .. }));
    }
}
