//! RTL simulator over a compiled, slot-indexed instruction tape.
//!
//! Evaluates a [`Module`] on concrete input and key values. At
//! construction the module is compiled once by [`crate::tape::Program`]:
//! signal names are interned to dense slots, continuous assignments are
//! levelized and lowered to a flat stack-machine tape, and clocked
//! processes are lowered to a predicated tape with two-phase non-blocking
//! commit semantics. `settle()`/`tick()` then run over dense state with
//! zero allocation and zero string hashing — the interpretive walk (and
//! its per-`settle` `order.clone()`) is gone, with identical observable
//! semantics.
//!
//! State is vector-batched: every slot holds `[u64; V]` — `V` independent
//! 64-bit *vectors* (not bits), walked by one tape pass. [`Simulator`] is
//! the `V = 1` scalar instantiation of [`BatchSimulator`]; wider batches
//! amortize the tape fetch and instruction dispatch over `V` lanes and let
//! the per-lane `[u64; V]` arithmetic autovectorize. There is exactly one
//! tape kernel (`run_tape`) and one scalar arithmetic kernel
//! ([`eval_binary`]), shared by every width.
//!
//! The simulator is what makes locking *testable*: with the correct key a
//! locked module must be functionally equivalent to the original, and with a
//! wrong key it should corrupt outputs. Division and modulo by zero evaluate
//! to 0 (a deterministic stand-in for Verilog's `x`).

use crate::ast::{Expr, ExprId, Module, PortDir};
use crate::error::{Result, RtlError};
use crate::op::{BinaryOp, UnaryOp};
use crate::tape::{mask, Instr, Program};

/// A running batched simulation of one module: each of the `V` lanes
/// carries an independent full-width vector through the same compiled
/// tape, under one shared key.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::parser::parse_verilog;
/// use mlrl_rtl::sim::BatchSimulator;
///
/// let m = parse_verilog("
/// module t(a, b, y);
///   input [7:0] a, b;
///   output [7:0] y;
///   assign y = a + b;
/// endmodule")?;
/// let mut sim = BatchSimulator::<4>::new(&m)?;
/// sim.set_input_batch("a", &[1, 2, 3, 4])?;
/// sim.set_input_batch("b", &[10, 20, 30, 40])?;
/// sim.settle()?;
/// assert_eq!(sim.get_lane("y", 2)?, 33);
/// # Ok::<(), mlrl_rtl::error::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchSimulator<'m, const V: usize> {
    module: &'m Module,
    program: Program,
    /// Current value of every slot, `V` vectors wide.
    state: Vec<[u64; V]>,
    /// Pending non-blocking values, one per sequential target.
    shadow: Vec<[u64; V]>,
    /// Reusable operand stack (preallocated to the compiled max depth).
    stack: Vec<[u64; V]>,
    key: Vec<bool>,
}

impl<'m, const V: usize> BatchSimulator<'m, V> {
    /// Prepares a simulator: checks drivers, levelizes the combinational
    /// assignments, and compiles both instruction tapes.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalCycle`] if continuous assignments
    /// form a cycle, [`RtlError::UnknownSignal`] for undeclared references.
    pub fn new(module: &'m Module) -> Result<Self> {
        if !module.instances().is_empty() {
            return Err(RtlError::Hierarchy(format!(
                "module `{}` contains instances; flatten it first (Design::flatten)",
                module.name()
            )));
        }
        let program = Program::compile(module)?;
        let state = vec![[0; V]; program.slots.len()];
        let shadow = vec![[0; V]; program.seq_targets.len()];
        let stack = Vec::with_capacity(program.max_stack);
        Ok(Self {
            module,
            program,
            state,
            shadow,
            stack,
            key: vec![false; module.key_width() as usize],
        })
    }

    /// Resets every signal in every lane (and pending register values) to
    /// 0, as if freshly constructed. The installed key and the compiled
    /// program are kept.
    pub fn reset(&mut self) {
        self.state.fill([0; V]);
        self.shadow.fill([0; V]);
    }

    /// Sets an input port value in *every* lane (masked to the port width).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<()> {
        let slot = self.input_slot(name)?;
        let masked = value & mask(self.program.slots[slot as usize].width);
        self.state[slot as usize] = [masked; V];
        Ok(())
    }

    /// Sets an input port to a different value per lane: lane `l` carries
    /// `values[l]` (masked to the port width). Lanes beyond `values.len()`
    /// replicate the last entry.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] if `name` is not an input port
    /// and [`RtlError::LaneOutOfRange`] if `values` is empty or longer
    /// than `V`.
    pub fn set_input_batch(&mut self, name: &str, values: &[u64]) -> Result<()> {
        if values.is_empty() || values.len() > V {
            return Err(RtlError::LaneOutOfRange {
                requested: values.len(),
                lanes: V,
            });
        }
        let slot = self.input_slot(name)?;
        let m = mask(self.program.slots[slot as usize].width);
        let word = &mut self.state[slot as usize];
        for (lane, w) in word.iter_mut().enumerate() {
            *w = values[lane.min(values.len() - 1)] & m;
        }
        Ok(())
    }

    /// Installs the key bit vector (index 0 = `K[0]`), shared by all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::KeyTooShort`] if fewer bits are provided than the
    /// design consumes.
    pub fn set_key(&mut self, key: &[bool]) -> Result<()> {
        if key.len() < self.module.key_width() as usize {
            return Err(RtlError::KeyTooShort {
                required: self.module.key_width(),
                provided: key.len(),
            });
        }
        self.key = key.to_vec();
        Ok(())
    }

    /// Current value of any signal in lane 0.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared names.
    pub fn get(&self, name: &str) -> Result<u64> {
        self.get_lane(name, 0)
    }

    /// Current value of any signal in the given lane.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared names and
    /// [`RtlError::LaneOutOfRange`] if `lane >= V`.
    pub fn get_lane(&self, name: &str, lane: usize) -> Result<u64> {
        if lane >= V {
            return Err(RtlError::LaneOutOfRange {
                requested: lane,
                lanes: V,
            });
        }
        self.program
            .slot(name)
            .map(|s| self.state[s as usize][lane])
            .ok_or_else(|| RtlError::UnknownSignal(name.to_owned()))
    }

    /// Order-independent digest of every output-port value in one lane — a
    /// cheap probe for functional equivalence and key-corruption checks.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::LaneOutOfRange`] if `lane >= V`.
    pub fn outputs_digest_lane(&self, lane: usize) -> Result<u64> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for p in self.module.ports() {
            if p.dir == PortDir::Output {
                digest ^= self.get_lane(&p.name, lane)?;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        }
        Ok(digest)
    }

    /// Forces a register/state value in every lane (useful for test setup).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared names.
    pub fn set_state(&mut self, name: &str, value: u64) -> Result<()> {
        let slot = self
            .program
            .slot(name)
            .ok_or_else(|| RtlError::UnknownSignal(name.to_owned()))?;
        let masked = value & mask(self.program.slots[slot as usize].width);
        self.state[slot as usize] = [masked; V];
        Ok(())
    }

    /// Propagates combinational logic until stable (one levelized pass over
    /// the compiled tape, all `V` lanes in parallel).
    ///
    /// # Errors
    ///
    /// Infallible for a compiled module; kept fallible for interface
    /// stability.
    pub fn settle(&mut self) -> Result<()> {
        mlrl_obs::counter_add("sim.settles", 1);
        mlrl_obs::counter_add("sim.lanes", V as u64);
        // Split borrows so the tape can be walked while state mutates.
        let Self {
            program,
            state,
            shadow,
            stack,
            key,
            ..
        } = self;
        run_tape(&program.comb, state, shadow, stack, key);
        Ok(())
    }

    /// Applies one positive clock edge: evaluates every clocked process with
    /// pre-edge values, commits all non-blocking updates atomically, then
    /// re-settles combinational logic. Each lane's state advances
    /// independently.
    ///
    /// # Errors
    ///
    /// Propagates [`BatchSimulator::settle`] errors.
    pub fn tick(&mut self) -> Result<()> {
        self.settle()?;
        let Self {
            program,
            state,
            shadow,
            stack,
            key,
            ..
        } = self;
        // Pending values start at the pre-edge state: registers the tape
        // leaves unassigned keep their value at commit.
        for (idx, &slot) in program.seq_targets.iter().enumerate() {
            shadow[idx] = state[slot as usize];
        }
        run_tape(&program.seq, state, shadow, stack, key);
        for (idx, &slot) in program.seq_targets.iter().enumerate() {
            state[slot as usize] = shadow[idx];
        }
        self.settle()
    }

    fn input_slot(&self, name: &str) -> Result<u32> {
        self.program
            .slot(name)
            .filter(|&s| self.program.slots[s as usize].is_input)
            .ok_or_else(|| RtlError::UnknownSignal(name.to_owned()))
    }
}

/// A running scalar simulation of one module — the `V = 1` instantiation
/// of [`BatchSimulator`] behind the original single-vector interface.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::parser::parse_verilog;
/// use mlrl_rtl::sim::Simulator;
///
/// let m = parse_verilog("
/// module t(a, b, y);
///   input [7:0] a, b;
///   output [7:0] y;
///   assign y = a + b;
/// endmodule")?;
/// let mut sim = Simulator::new(&m)?;
/// sim.set_input("a", 3)?;
/// sim.set_input("b", 4)?;
/// sim.settle()?;
/// assert_eq!(sim.get("y")?, 7);
/// # Ok::<(), mlrl_rtl::error::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    inner: BatchSimulator<'m, 1>,
}

impl<'m> Simulator<'m> {
    /// Prepares a simulator: checks drivers, levelizes the combinational
    /// assignments, and compiles both instruction tapes.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalCycle`] if continuous assignments
    /// form a cycle, [`RtlError::UnknownSignal`] for undeclared references.
    pub fn new(module: &'m Module) -> Result<Self> {
        Ok(Self {
            inner: BatchSimulator::new(module)?,
        })
    }

    /// Resets every signal (and pending register value) to 0, as if freshly
    /// constructed. The installed key and the compiled program are kept —
    /// this is the cheap way to reuse one simulator across independent
    /// trials instead of recompiling the module each time.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Sets an input port value (masked to the port width).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<()> {
        self.inner.set_input(name, value)
    }

    /// Installs the key bit vector (index 0 = `K[0]`).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::KeyTooShort`] if fewer bits are provided than the
    /// design consumes.
    pub fn set_key(&mut self, key: &[bool]) -> Result<()> {
        self.inner.set_key(key)
    }

    /// Current value of any signal.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared names.
    pub fn get(&self, name: &str) -> Result<u64> {
        self.inner.get(name)
    }

    /// Order-independent digest of every output-port value — a cheap probe
    /// for functional equivalence and key-corruption checks.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError::UnknownSignal`] (cannot happen for a
    /// well-formed module).
    pub fn outputs_digest(&self) -> Result<u64> {
        self.inner.outputs_digest_lane(0)
    }

    /// Forces a register/state value (useful for test setup).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared names.
    pub fn set_state(&mut self, name: &str, value: u64) -> Result<()> {
        self.inner.set_state(name, value)
    }

    /// Propagates combinational logic until stable (one levelized pass over
    /// the compiled tape).
    ///
    /// # Errors
    ///
    /// Infallible for a compiled module; kept fallible for interface
    /// stability.
    pub fn settle(&mut self) -> Result<()> {
        self.inner.settle()
    }

    /// Applies one positive clock edge: evaluates every clocked process with
    /// pre-edge values, commits all non-blocking updates atomically, then
    /// re-settles combinational logic.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulator::settle`] errors.
    pub fn tick(&mut self) -> Result<()> {
        self.inner.tick()
    }

    /// Evaluates the expression rooted at `id` with current signal values.
    ///
    /// This is the cold-path companion of the compiled tapes (used for
    /// ad-hoc probing, not by `settle`/`tick`).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownSignal`] for undeclared identifiers and
    /// [`RtlError::InvalidExprId`] for dangling ids.
    pub fn eval(&self, id: ExprId) -> Result<u64> {
        let expr = self.inner.module.expr(id)?;
        Ok(match expr {
            Expr::Const { value, width } => match width {
                Some(w) => value & mask(*w),
                None => *value,
            },
            Expr::Ident(name) => self.get(name)?,
            Expr::KeyBit(i) => self.inner.key.get(*i as usize).copied().unwrap_or(false) as u64,
            Expr::KeySlice { lsb, width } => {
                let mut v = 0u64;
                for b in 0..*width {
                    let idx = (*lsb + b) as usize;
                    if self.inner.key.get(idx).copied().unwrap_or(false) {
                        v |= 1 << b;
                    }
                }
                v
            }
            Expr::Index { base, bit } => (self.get(base)? >> bit.min(&63)) & 1,
            Expr::Unary { op, arg } => {
                let v = self.eval(*arg)?;
                match op {
                    UnaryOp::Not => !v,
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::LNot => (v == 0) as u64,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(*lhs)?;
                let b = self.eval(*rhs)?;
                eval_binary(*op, a, b)
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(*cond)? != 0 {
                    self.eval(*then_expr)?
                } else {
                    self.eval(*else_expr)?
                }
            }
        })
    }
}

/// Executes one compiled tape over the dense state, all `V` lanes per
/// instruction. The per-lane loops call [`eval_binary`] and friends — the
/// same scalar kernels the `V = 1` path uses — so batch semantics are the
/// scalar semantics by construction.
fn run_tape<const V: usize>(
    tape: &[Instr],
    state: &mut [[u64; V]],
    shadow: &mut [[u64; V]],
    stack: &mut Vec<[u64; V]>,
    key: &[bool],
) {
    stack.clear();
    for instr in tape {
        match *instr {
            Instr::Const(v) => stack.push([v; V]),
            Instr::Load(slot) => stack.push(state[slot as usize]),
            Instr::LoadBit { slot, bit } => {
                let mut out = [0u64; V];
                for (o, w) in out.iter_mut().zip(&state[slot as usize]) {
                    *o = w >> bit & 1;
                }
                stack.push(out);
            }
            Instr::KeyBit(i) => {
                let v = key.get(i as usize).copied().unwrap_or(false) as u64;
                stack.push([v; V]);
            }
            Instr::KeySlice { lsb, width } => {
                let mut v = 0u64;
                for b in 0..width {
                    if key.get((lsb + b) as usize).copied().unwrap_or(false) {
                        v |= 1 << b;
                    }
                }
                stack.push([v; V]);
            }
            Instr::LoadShadow(idx) => stack.push(shadow[idx as usize]),
            Instr::Unary(op) => {
                let v = stack.last_mut().expect("tape underflow");
                for w in v.iter_mut() {
                    *w = match op {
                        UnaryOp::Not => !*w,
                        UnaryOp::Neg => w.wrapping_neg(),
                        UnaryOp::LNot => (*w == 0) as u64,
                    };
                }
            }
            Instr::Binary(op) => {
                let b = stack.pop().expect("tape underflow");
                let a = stack.last_mut().expect("tape underflow");
                for (aw, bw) in a.iter_mut().zip(&b) {
                    *aw = eval_binary(op, *aw, *bw);
                }
            }
            Instr::Select => {
                let else_v = stack.pop().expect("tape underflow");
                let then_v = stack.pop().expect("tape underflow");
                let cond = stack.last_mut().expect("tape underflow");
                for i in 0..V {
                    cond[i] = if cond[i] != 0 { then_v[i] } else { else_v[i] };
                }
            }
            Instr::Store { slot, mask } => {
                let v = stack.pop().expect("tape underflow");
                let out = &mut state[slot as usize];
                for (o, w) in out.iter_mut().zip(&v) {
                    *o = w & mask;
                }
            }
            Instr::StoreShadow { idx, mask } => {
                let v = stack.pop().expect("tape underflow");
                let out = &mut shadow[idx as usize];
                for (o, w) in out.iter_mut().zip(&v) {
                    *o = w & mask;
                }
            }
        }
    }
}

/// Evaluates one binary operation on 64-bit values with Verilog-ish
/// semantics: wrapping arithmetic, `/0` and `%0` yield 0, shifts ≥ 64 yield
/// 0, predicates yield 0/1.
pub fn eval_binary(op: BinaryOp, a: u64, b: u64) -> u64 {
    match op {
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Div => a.checked_div(b).unwrap_or(0),
        BinaryOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinaryOp::Pow => a.wrapping_pow(b.min(u32::MAX as u64) as u32),
        BinaryOp::And => a & b,
        BinaryOp::Or => a | b,
        BinaryOp::Xor => a ^ b,
        BinaryOp::Xnor => !(a ^ b),
        BinaryOp::Shl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        BinaryOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        BinaryOp::Lt => (a < b) as u64,
        BinaryOp::Gt => (a > b) as u64,
        BinaryOp::Le => (a <= b) as u64,
        BinaryOp::Ge => (a >= b) as u64,
        BinaryOp::Eq => (a == b) as u64,
        BinaryOp::Neq => (a != b) as u64,
        BinaryOp::LAnd => (a != 0 && b != 0) as u64,
        BinaryOp::LOr => (a != 0 || b != 0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_verilog;

    fn sim_src(src: &str) -> Module {
        parse_verilog(src).unwrap()
    }

    #[test]
    fn combinational_chain_evaluates_in_order() {
        // Declared out of dependency order on purpose.
        let m = sim_src(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n wire [7:0] w1, w2;\n assign y = w2 + 1;\n assign w2 = w1 * 2;\n assign w1 = a + 3;\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("a", 5).unwrap();
        s.settle().unwrap();
        assert_eq!(s.get("y").unwrap(), (5 + 3) * 2 + 1);
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let m = sim_src(
            "module t(y);\n output [7:0] y;\n wire [7:0] w;\n assign w = y + 1;\n assign y = w + 1;\nendmodule",
        );
        assert!(matches!(
            Simulator::new(&m),
            Err(RtlError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn key_mux_selects_real_operation() {
        let m = sim_src(
            "module t(K, a, b, y);\n input [0:0] K;\n input [7:0] a, b;\n output [7:0] y;\n assign y = K[0] ? a + b : a - b;\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("a", 10).unwrap();
        s.set_input("b", 3).unwrap();
        s.set_key(&[true]).unwrap();
        s.settle().unwrap();
        assert_eq!(s.get("y").unwrap(), 13);
        s.set_key(&[false]).unwrap();
        s.settle().unwrap();
        assert_eq!(s.get("y").unwrap(), 7);
    }

    #[test]
    fn key_slice_reads_bits_lsb_first() {
        let m = sim_src(
            "module t(K, y);\n input [3:0] K;\n output [3:0] y;\n assign y = K[3:0];\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_key(&[true, false, true, true]).unwrap();
        s.settle().unwrap();
        assert_eq!(s.get("y").unwrap(), 0b1101);
    }

    #[test]
    fn widths_mask_results() {
        let m = sim_src(
            "module t(a, y);\n input [7:0] a;\n output [3:0] y;\n assign y = a + 1;\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("a", 0xFF).unwrap();
        s.settle().unwrap();
        assert_eq!(s.get("y").unwrap(), 0); // 0x100 masked to 4 bits
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_binary(BinaryOp::Div, 5, 0), 0);
        assert_eq!(eval_binary(BinaryOp::Mod, 5, 0), 0);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(eval_binary(BinaryOp::Shl, 1, 64), 0);
        assert_eq!(eval_binary(BinaryOp::Shr, u64::MAX, 64), 0);
        assert_eq!(eval_binary(BinaryOp::Shl, 1, 3), 8);
    }

    #[test]
    fn predicates_return_bits() {
        assert_eq!(eval_binary(BinaryOp::Lt, 1, 2), 1);
        assert_eq!(eval_binary(BinaryOp::Ge, 1, 2), 0);
        assert_eq!(eval_binary(BinaryOp::LAnd, 5, 0), 0);
        assert_eq!(eval_binary(BinaryOp::LOr, 5, 0), 1);
        assert_eq!(eval_binary(BinaryOp::Xnor, 0b1010, 0b1010), u64::MAX);
    }

    #[test]
    fn sequential_counter_ticks() {
        let m = sim_src(
            "module t(clk, en, q);\n input clk;\n input en;\n output [7:0] q;\n reg [7:0] cnt;\n assign q = cnt;\n always @(posedge clk) begin\n if (en) begin\n cnt <= cnt + 1;\n end\n end\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("en", 1).unwrap();
        for _ in 0..5 {
            s.tick().unwrap();
        }
        assert_eq!(s.get("q").unwrap(), 5);
        s.set_input("en", 0).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 5);
    }

    #[test]
    fn nonblocking_swap_uses_pre_edge_values() {
        let m = sim_src(
            "module t(clk, a, b);\n input clk;\n output [7:0] a, b;\n reg [7:0] x, y;\n assign a = x;\n assign b = y;\n always @(posedge clk) begin\n x <= y;\n y <= x;\n end\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_state("x", 1).unwrap();
        s.set_state("y", 2).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("a").unwrap(), 2);
        assert_eq!(s.get("b").unwrap(), 1);
    }

    #[test]
    fn last_nonblocking_assignment_wins() {
        let m = sim_src(
            "module t(clk, q);\n input clk;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n r <= 1;\n r <= 2;\n end\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 2);
    }

    #[test]
    fn else_branches_predicate_with_inverted_condition() {
        let m = sim_src(
            "module t(clk, sel, q);\n input clk;\n input sel;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n if (sel) begin\n r <= 10;\n end else begin\n r <= 20;\n end\n end\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("sel", 1).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 10);
        s.set_input("sel", 0).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 20);
    }

    #[test]
    fn reset_restores_power_on_state_without_recompiling() {
        let m = sim_src(
            "module t(clk, d, q);\n input clk;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n r <= r + d;\n end\nendmodule",
        );
        let mut s = Simulator::new(&m).unwrap();
        s.set_input("d", 3).unwrap();
        s.tick().unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 6);
        s.reset();
        assert_eq!(s.get("q").unwrap(), 0);
        assert_eq!(s.get("d").unwrap(), 0, "reset clears inputs too");
        s.set_input("d", 3).unwrap();
        s.tick().unwrap();
        assert_eq!(s.get("q").unwrap(), 3);
    }

    #[test]
    fn short_key_is_rejected() {
        let m =
            sim_src("module t(K, y);\n input [3:0] K;\n output y;\n assign y = K[0];\nendmodule");
        let mut s = Simulator::new(&m).unwrap();
        assert!(matches!(
            s.set_key(&[true]),
            Err(RtlError::KeyTooShort { .. })
        ));
    }

    #[test]
    fn batch_lanes_match_scalar_settles() {
        let m = sim_src(
            "module t(a, b, y);\n input [7:0] a, b;\n output [9:0] y;\n wire [7:0] w;\n assign w = a * b;\n assign y = (w ^ a) + b;\nendmodule",
        );
        let avs: Vec<u64> = (0..8u64).map(|i| i.wrapping_mul(37) & 0xff).collect();
        let bvs: Vec<u64> = (0..8u64).map(|i| i.wrapping_mul(91) & 0xff).collect();
        let mut batch = BatchSimulator::<8>::new(&m).unwrap();
        batch.set_input_batch("a", &avs).unwrap();
        batch.set_input_batch("b", &bvs).unwrap();
        batch.settle().unwrap();
        for lane in 0..8 {
            let mut scalar = Simulator::new(&m).unwrap();
            scalar.set_input("a", avs[lane]).unwrap();
            scalar.set_input("b", bvs[lane]).unwrap();
            scalar.settle().unwrap();
            assert_eq!(
                batch.get_lane("y", lane).unwrap(),
                scalar.get("y").unwrap(),
                "lane {lane}"
            );
            assert_eq!(
                batch.outputs_digest_lane(lane).unwrap(),
                scalar.outputs_digest().unwrap()
            );
        }
    }

    #[test]
    fn batch_lanes_tick_independently() {
        let m = sim_src(
            "module t(clk, d, q);\n input clk;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n r <= r + d;\n end\nendmodule",
        );
        let mut batch = BatchSimulator::<4>::new(&m).unwrap();
        batch.set_input_batch("d", &[1, 2, 3, 4]).unwrap();
        batch.tick().unwrap();
        batch.tick().unwrap();
        for lane in 0..4 {
            assert_eq!(
                batch.get_lane("q", lane).unwrap(),
                2 * (lane as u64 + 1),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn batch_short_inputs_replicate_and_bad_lanes_error() {
        let m = sim_src(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a + 1;\nendmodule",
        );
        let mut batch = BatchSimulator::<4>::new(&m).unwrap();
        batch.set_input_batch("a", &[5, 9]).unwrap();
        batch.settle().unwrap();
        assert_eq!(batch.get_lane("y", 0).unwrap(), 6);
        for lane in 1..4 {
            assert_eq!(batch.get_lane("y", lane).unwrap(), 10, "lane {lane}");
        }
        assert!(batch.set_input_batch("a", &[]).is_err());
        assert!(batch.set_input_batch("a", &[0; 5]).is_err());
        assert!(batch.get_lane("y", 4).is_err());
    }
}
