//! Error types for the RTL crate.

use std::fmt;

use crate::ast::ExprId;

/// Errors produced while building, parsing, mutating, or simulating RTL.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A syntax error with source position (1-based line/column).
    Parse {
        /// Line of the offending token.
        line: usize,
        /// Column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A referenced signal was never declared.
    UnknownSignal(String),
    /// A signal was declared twice.
    DuplicateSignal(String),
    /// A declared width is outside the supported `1..=64` range.
    WidthOutOfRange {
        /// Offending signal name.
        signal: String,
        /// Declared width.
        width: u32,
    },
    /// Continuous assignments form a combinational cycle through this signal.
    CombinationalCycle(String),
    /// An expression id does not exist in the module's arena.
    InvalidExprId(ExprId),
    /// The operation requires a binary-operator node but found something else.
    NotABinaryOp(ExprId),
    /// The operation requires a constant node but found something else.
    NotAConstant(ExprId),
    /// An undo was attempted out of LIFO order.
    UndoOrder {
        /// Arena length the undo expected.
        expected: usize,
        /// Arena length found.
        found: usize,
    },
    /// A signal is driven by more than one assignment or process.
    MultipleDrivers(String),
    /// A simulation input was missing.
    MissingInput(String),
    /// A hierarchy operation failed (locked child, bad port binding, or an
    /// unflattened module where a flat one is required).
    Hierarchy(String),
    /// The key vector handed to the simulator is shorter than the design's
    /// key width.
    KeyTooShort {
        /// Bits required by the design.
        required: u32,
        /// Bits provided.
        provided: usize,
    },
    /// A lane index or batch width exceeded the simulator's lane count.
    LaneOutOfRange {
        /// Offending lane index or batch width.
        requested: usize,
        /// Lanes the simulator carries.
        lanes: usize,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Parse { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            RtlError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            RtlError::DuplicateSignal(name) => write!(f, "duplicate signal `{name}`"),
            RtlError::WidthOutOfRange { signal, width } => {
                write!(
                    f,
                    "width {width} of `{signal}` outside supported range 1..=64"
                )
            }
            RtlError::CombinationalCycle(name) => {
                write!(f, "combinational cycle through `{name}`")
            }
            RtlError::InvalidExprId(id) => write!(f, "invalid expression id {id:?}"),
            RtlError::NotABinaryOp(id) => {
                write!(f, "expression {id:?} is not a binary operation")
            }
            RtlError::NotAConstant(id) => write!(f, "expression {id:?} is not a constant"),
            RtlError::UndoOrder { expected, found } => write!(
                f,
                "undo applied out of order: expected arena length {expected}, found {found}"
            ),
            RtlError::MultipleDrivers(name) => write!(f, "signal `{name}` has multiple drivers"),
            RtlError::MissingInput(name) => write!(f, "missing value for input `{name}`"),
            RtlError::Hierarchy(msg) => write!(f, "hierarchy error: {msg}"),
            RtlError::KeyTooShort { required, provided } => {
                write!(f, "key has {provided} bits but design requires {required}")
            }
            RtlError::LaneOutOfRange { requested, lanes } => {
                write!(
                    f,
                    "lane {requested} out of range for a {lanes}-lane simulator"
                )
            }
        }
    }
}

impl std::error::Error for RtlError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, RtlError>;
