//! # mlrl-rtl — RTL substrate for ML-resilient logic locking
//!
//! This crate provides the register-transfer-level foundation of the
//! DAC'22 *"Designing ML-Resilient Locking at Register-Transfer Level"*
//! reproduction:
//!
//! - an arena-based RTL intermediate representation ([`ast`]) in which
//!   locking transformations are O(1) and undoable,
//! - a Verilog-subset [lexer](lexer) and [parser](parser) plus a
//!   round-tripping [emitter](emit) (the paper uses Pyverilog; we ship our
//!   own front end),
//! - an RTL [simulator](sim) used to verify that locking preserves function
//!   under the correct key and corrupts it under wrong keys,
//! - seeded [benchmark design generators](bench_designs) standing in for the
//!   paper's evaluation set (DES3 … I2C_SL, N_2046, N_1023),
//! - deterministic traversal and operation-census utilities ([`visit`])
//!   that the locking algorithms and the attack build on.
//!
//! ## Quick example
//!
//! ```
//! use mlrl_rtl::{bench_designs, visit};
//!
//! let spec = bench_designs::benchmark_by_name("FIR").expect("known benchmark");
//! let module = bench_designs::generate(&spec, 42);
//! let census = visit::op_census(&module);
//! assert_eq!(census[&mlrl_rtl::op::BinaryOp::Mul], 32);
//! let verilog = mlrl_rtl::emit::emit_verilog(&module)?;
//! let reparsed = mlrl_rtl::parser::parse_verilog(&verilog)?;
//! assert_eq!(visit::op_census(&reparsed), census);
//! # Ok::<(), mlrl_rtl::error::RtlError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod bench_designs;
pub mod emit;
pub mod equiv;
pub mod error;
pub mod hier;
pub mod lexer;
pub mod op;
pub mod parser;
pub mod sim;
pub mod stats;
pub mod tape;
pub mod transform;
pub mod visit;

pub use ast::{Expr, ExprId, Module};
pub use error::{Result, RtlError};
pub use op::{BinaryOp, UnaryOp};
