//! Train/test splitting and stratified k-fold cross-validation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;

/// Splits `data` into `(train, test)` with `test_fraction` of samples held
/// out, shuffled deterministically by `seed`.
///
/// # Panics
///
/// Panics if `test_fraction` is not in `(0, 1)` or either side would be
/// empty.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((data.len() as f64) * test_fraction).round() as usize;
    let n_test = n_test.clamp(1, data.len() - 1);
    let (test_idx, train_idx) = indices.split_at(n_test);
    (data.subset(train_idx), data.subset(test_idx))
}

/// Stratified k-fold splitter: every fold approximates the full class
/// distribution, so accuracy estimates stay unbiased on the skewed label
/// distributions that partially-balanced locking produces.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    folds: Vec<Vec<usize>>,
}

impl StratifiedKFold {
    /// Assigns samples to `k` folds round-robin within each class,
    /// after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > data.len()`.
    pub fn new(data: &Dataset, k: usize, seed: u64) -> Self {
        assert!(k >= 2, "k must be at least 2");
        assert!(k <= data.len(), "k may not exceed the sample count");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut folds = vec![Vec::new(); k];
        for class in 0..data.n_classes() {
            let mut members: Vec<usize> = (0..data.len())
                .filter(|&i| data.label(i) == class)
                .collect();
            members.shuffle(&mut rng);
            for (j, idx) in members.into_iter().enumerate() {
                folds[j % k].push(idx);
            }
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The `(train, validation)` datasets of fold `fold`.
    ///
    /// # Panics
    ///
    /// Panics if `fold >= k`.
    pub fn split(&self, data: &Dataset, fold: usize) -> (Dataset, Dataset) {
        let val_idx = &self.folds[fold];
        let train_idx: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (data.subset(&train_idx), data.subset(val_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(n: usize) -> Dataset {
        // 25% class 0, 75% class 1.
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..n).map(|i| usize::from(i % 4 != 0)).collect();
        Dataset::from_rows(x, y).unwrap()
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = skewed(100);
        let (train, test) = train_test_split(&ds, 0.3, 1);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_deterministic() {
        let ds = skewed(50);
        let (a, _) = train_test_split(&ds, 0.2, 9);
        let (b, _) = train_test_split(&ds, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn kfold_partitions_disjointly() {
        let ds = skewed(97);
        let kf = StratifiedKFold::new(&ds, 5, 3);
        let mut seen = vec![false; ds.len()];
        for fold in &kf.folds {
            for &i in fold {
                assert!(!seen[i], "sample {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn kfold_preserves_class_ratio() {
        let ds = skewed(200);
        let kf = StratifiedKFold::new(&ds, 4, 0);
        for fold in 0..4 {
            let (_, val) = kf.split(&ds, fold);
            let counts = val.class_counts();
            let ratio = counts[1] as f64 / val.len() as f64;
            assert!((ratio - 0.75).abs() < 0.05, "fold {fold} ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn kfold_rejects_k_one() {
        let ds = skewed(10);
        let _ = StratifiedKFold::new(&ds, 1, 0);
    }

    #[test]
    fn split_train_val_cover_everything() {
        let ds = skewed(30);
        let kf = StratifiedKFold::new(&ds, 3, 1);
        let (train, val) = kf.split(&ds, 0);
        assert_eq!(train.len() + val.len(), 30);
    }
}
