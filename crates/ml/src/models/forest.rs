//! Random forest: bagged decision trees with feature subsampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

use super::{Classifier, DecisionTree};

/// Random forest classifier: majority vote over CART trees trained on
/// bootstrap samples with per-tree feature subsets (√d features).
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, RandomForest};
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]],
///     vec![0, 1, 1, 0],
/// )?;
/// let mut rf = RandomForest::new(15, 6, 0);
/// rf.fit(&ds);
/// assert_eq!(rf.predict(&[0.0, 0.0]), 0);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        Self {
            n_trees: n_trees.max(1),
            max_depth,
            seed,
            trees: Vec::new(),
            n_classes: 2,
        }
    }

    /// Reasonable defaults for locality datasets.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(25, 10, seed)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        self.trees.clear();
        self.n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = data.len();
        let n_features = data.n_features();
        let subset_size = ((n_features as f64).sqrt().ceil() as usize).clamp(1, n_features);
        for _ in 0..self.n_trees {
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let boot = data.subset(&sample);
            let mut features: Vec<usize> = (0..n_features).collect();
            features.shuffle(&mut rng);
            features.truncate(subset_size);
            let mut tree = DecisionTree::new(self.max_depth, 2).with_feature_subset(features);
            tree.fit(&boot);
            self.trees.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for tree in &self.trees {
            let c = tree.predict(row);
            if c < votes.len() {
                votes[c] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical, xor};

    #[test]
    fn solves_xor() {
        let train = xor(500, 1);
        let test = xor(200, 2);
        let mut rf = RandomForest::with_defaults(3);
        rf.fit(&train);
        assert!(accuracy(&rf, &test) > 0.9);
    }

    #[test]
    fn separates_blobs() {
        let mut rf = RandomForest::with_defaults(1);
        rf.fit(&blobs(300, 5));
        assert!(accuracy(&rf, &blobs(150, 6)) > 0.95);
    }

    #[test]
    fn categorical_structure() {
        let mut rf = RandomForest::with_defaults(2);
        rf.fit(&categorical(500, 0.05, 7));
        assert!(accuracy(&rf, &categorical(200, 0.0, 8)) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blobs(120, 11);
        let mut a = RandomForest::new(10, 6, 42);
        let mut b = RandomForest::new(10, 6, 42);
        a.fit(&train);
        b.fit(&train);
        for i in 0..train.len() {
            assert_eq!(a.predict(train.row(i)), b.predict(train.row(i)));
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let train = blobs(100, 13);
        let mut rf = RandomForest::new(1, 8, 0);
        rf.fit(&train);
        assert!(accuracy(&rf, &train) > 0.9);
    }
}
