//! AdaBoost (SAMME) over decision stumps — binary/multiclass boosting.
//!
//! Rounds out the auto-ml pool with a boosting family: auto-sklearn's
//! search space includes AdaBoost, and on locality data boosting over
//! one-feature stumps recovers per-indicator majorities with strong
//! resistance to label noise.

use crate::dataset::Dataset;

use super::Classifier;

/// A one-split decision stump.
#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f64,
    /// predicted class when `row[feature] <= threshold`
    left: usize,
    /// predicted class otherwise
    right: usize,
}

impl Stump {
    fn predict(&self, row: &[f64]) -> usize {
        if row[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// AdaBoost.SAMME with decision stumps.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{AdaBoost, Classifier};
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]],
///     vec![0, 0, 1, 1],
/// )?;
/// let mut ab = AdaBoost::new(10);
/// ab.fit(&ds);
/// assert_eq!(ab.predict(&[0.1]), 0);
/// assert_eq!(ab.predict(&[0.9]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaBoost {
    rounds: usize,
    stumps: Vec<(f64, Stump)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Creates an untrained booster with `rounds` stumps.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds: rounds.max(1),
            stumps: Vec::new(),
            n_classes: 2,
        }
    }

    /// Defaults for locality-sized problems.
    pub fn with_defaults() -> Self {
        Self::new(30)
    }

    /// Finds the weighted-error-minimizing stump.
    fn best_stump(data: &Dataset, weights: &[f64]) -> Option<(Stump, f64)> {
        let n_classes = data.n_classes();
        let mut best: Option<(Stump, f64)> = None;
        for feature in 0..data.n_features() {
            let mut values: Vec<f64> = (0..data.len()).map(|i| data.row(i)[feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            values.dedup();
            // Midpoints between distinct values plus an extreme threshold.
            let mut thresholds: Vec<f64> = values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
            if let Some(first) = values.first() {
                thresholds.push(first - 1.0);
            }
            for &threshold in &thresholds {
                // Weighted class votes on each side.
                let mut left_votes = vec![0.0f64; n_classes];
                let mut right_votes = vec![0.0f64; n_classes];
                for i in 0..data.len() {
                    if data.row(i)[feature] <= threshold {
                        left_votes[data.label(i)] += weights[i];
                    } else {
                        right_votes[data.label(i)] += weights[i];
                    }
                }
                let argmax = |v: &[f64]| {
                    v.iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                };
                let stump = Stump {
                    feature,
                    threshold,
                    left: argmax(&left_votes),
                    right: argmax(&right_votes),
                };
                let error: f64 = (0..data.len())
                    .filter(|&i| stump.predict(data.row(i)) != data.label(i))
                    .map(|i| weights[i])
                    .sum();
                if best.as_ref().map(|(_, e)| error < *e).unwrap_or(true) {
                    best = Some((stump, error));
                }
            }
        }
        best
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        self.stumps.clear();
        self.n_classes = data.n_classes().max(2);
        let n = data.len();
        let mut weights = vec![1.0 / n as f64; n];
        let k = self.n_classes as f64;
        for _ in 0..self.rounds {
            let Some((stump, error)) = Self::best_stump(data, &weights) else {
                break;
            };
            let error = error.clamp(1e-12, 1.0);
            if error >= 1.0 - 1.0 / k {
                break; // no better than chance: stop boosting
            }
            // SAMME weight.
            let alpha = ((1.0 - error) / error).ln() + (k - 1.0).ln();
            self.stumps.push((alpha, stump));
            // Re-weight and normalize.
            let mut sum = 0.0;
            for (i, w) in weights.iter_mut().enumerate() {
                if stump.predict(data.row(i)) != data.label(i) {
                    *w *= alpha.exp();
                }
                sum += *w;
            }
            for w in &mut weights {
                *w /= sum;
            }
            if error < 1e-9 {
                break; // perfect stump
            }
        }
        if self.stumps.is_empty() {
            // Degenerate data: fall back to a majority stump.
            let majority = data.majority_class();
            self.stumps.push((
                1.0,
                Stump {
                    feature: 0,
                    threshold: f64::INFINITY,
                    left: majority,
                    right: majority,
                },
            ));
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.stumps.is_empty(), "predict called before fit");
        let mut votes = vec![0.0f64; self.n_classes];
        for (alpha, stump) in &self.stumps {
            votes[stump.predict(row).min(self.n_classes - 1)] += alpha;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "adaboost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical};

    #[test]
    fn separates_blobs() {
        let mut ab = AdaBoost::with_defaults();
        ab.fit(&blobs(200, 1));
        assert!(accuracy(&ab, &blobs(100, 2)) > 0.95);
    }

    #[test]
    fn boosting_beats_single_stump_on_conjunctions() {
        // label = (x0 > 0.5) AND (x1 > 0.5): one axis-aligned stump tops
        // out near 75%, an additive stump ensemble represents it exactly.
        // (XOR is the known blind spot of stump boosting: every stump is
        // chance there, so SAMME stops immediately — not a useful test.)
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let make = |n: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut x = Vec::new();
            let mut y = Vec::new();
            for _ in 0..n {
                let a: f64 = rng.gen();
                let b: f64 = rng.gen();
                x.push(vec![a, b]);
                y.push(usize::from(a > 0.5 && b > 0.5));
            }
            Dataset::from_rows(x, y).unwrap()
        };
        let train = make(500, 3);
        let test = make(300, 4);
        let mut one = AdaBoost::new(1);
        one.fit(&train);
        let mut many = AdaBoost::new(60);
        many.fit(&train);
        let single = accuracy(&one, &test);
        let boosted = accuracy(&many, &test);
        assert!(single < 0.9, "one stump cannot do AND exactly: {single}");
        assert!(
            boosted > single + 0.03,
            "boosting must help: {single} -> {boosted}"
        );
        assert!(
            boosted > 0.93,
            "ensemble should approach the concept: {boosted}"
        );
    }

    #[test]
    fn noisy_categorical_majorities() {
        let mut ab = AdaBoost::with_defaults();
        ab.fit(&categorical(500, 0.1, 5));
        assert!(accuracy(&ab, &categorical(200, 0.0, 6)) > 0.9);
    }

    #[test]
    fn degenerate_single_class_data() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![0, 0]).unwrap();
        let mut ab = AdaBoost::with_defaults();
        ab.fit(&ds);
        assert_eq!(ab.predict(&[5.0]), 0);
    }

    #[test]
    fn constant_features_fall_back_to_majority() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]], vec![1, 1, 0]).unwrap();
        let mut ab = AdaBoost::with_defaults();
        ab.fit(&ds);
        assert_eq!(ab.predict(&[1.0]), 1);
    }
}
