//! Classifier implementations.
//!
//! All models implement the object-safe [`Classifier`] trait so the
//! [auto-ml search](crate::automl) can treat them uniformly — the stand-in
//! for the paper's auto-sklearn [13]. The families cover the spectrum
//! auto-sklearn would explore on a small categorical problem: a majority
//! baseline, a linear model, instance-based learning, a generative model,
//! and axis-aligned trees/ensembles.

mod adaboost;
mod forest;
mod knn;
mod logistic;
mod majority;
mod mlp;
mod naive_bayes;
mod tree;

pub use adaboost::AdaBoost;
pub use forest::RandomForest;
pub use knn::KNearestNeighbors;
pub use logistic::LogisticRegression;
pub use majority::MajorityClass;
pub use mlp::Mlp;
pub use naive_bayes::GaussianNaiveBayes;
pub use tree::DecisionTree;

use crate::dataset::Dataset;

/// A trainable classifier.
///
/// Implementations must be deterministic given their construction
/// parameters (seeded RNGs), so attack evaluations are reproducible.
pub trait Classifier: std::fmt::Debug {
    /// Fits the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);

    /// Predicts the class of one feature row.
    ///
    /// # Panics
    ///
    /// May panic if called before [`Classifier::fit`] or with a row of the
    /// wrong width.
    fn predict(&self, row: &[f64]) -> usize;

    /// Predicts a batch of rows.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Short human-readable model name.
    fn name(&self) -> &'static str;
}

/// Accuracy of `model` on `data`, in `[0, 1]`.
pub fn accuracy(model: &dyn Classifier, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = (0..data.len())
        .filter(|&i| model.predict(data.row(i)) == data.label(i))
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Linearly separable 2-class blob data.
    pub fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![
                cx + rng.gen_range(-0.8..0.8),
                cx + rng.gen_range(-0.8..0.8),
            ]);
            y.push(class);
        }
        Dataset::from_rows(x, y).unwrap()
    }

    /// The XOR problem: not linearly separable.
    pub fn xor(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            x.push(vec![
                a as u8 as f64 + rng.gen_range(-0.2..0.2),
                b as u8 as f64 + rng.gen_range(-0.2..0.2),
            ]);
            y.push((a ^ b) as usize);
        }
        Dataset::from_rows(x, y).unwrap()
    }

    /// Categorical one-hot data mimicking SnapShot localities: class is a
    /// noisy function of which indicator is set.
    pub fn categorical(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let code = rng.gen_range(0..4usize);
            let mut row = vec![0.0; 4];
            row[code] = 1.0;
            let label = usize::from(code >= 2);
            let label = if rng.gen_bool(noise) {
                1 - label
            } else {
                label
            };
            x.push(row);
            y.push(label);
        }
        Dataset::from_rows(x, y).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::blobs;
    use super::*;

    #[test]
    fn accuracy_of_perfect_and_broken_models() {
        #[derive(Debug)]
        struct Fixed(usize);
        impl Classifier for Fixed {
            fn fit(&mut self, _: &Dataset) {}
            fn predict(&self, _: &[f64]) -> usize {
                self.0
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let ds = blobs(10, 0);
        let zeros = Fixed(0);
        assert!((accuracy(&zeros, &ds) - 0.5).abs() < 1e-9);
    }
}
