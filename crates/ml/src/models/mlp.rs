//! Single-hidden-layer multilayer perceptron.
//!
//! The original SnapShot attack [6] trains neural networks (found by
//! neuroevolution); this MLP puts an equivalent hypothesis class into the
//! auto-ml candidate pool. ReLU hidden layer, softmax output, seeded SGD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

use super::Classifier;

/// One-hidden-layer MLP classifier.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, Mlp};
///
/// // XOR — beyond any linear model.
/// let ds = Dataset::from_rows(
///     vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]],
///     vec![0, 1, 1, 0],
/// )?;
/// let mut mlp = Mlp::new(8, 0.3, 400, 0);
/// mlp.fit(&ds);
/// assert_eq!(mlp.predict(&[0.0, 1.0]), 1);
/// assert_eq!(mlp.predict(&[1.0, 1.0]), 0);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    hidden: usize,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    /// w1[h][feature+1] (last = bias), w2[class][h+1] (last = bias)
    w1: Vec<Vec<f64>>,
    w2: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates an untrained MLP with `hidden` ReLU units.
    pub fn new(hidden: usize, learning_rate: f64, epochs: usize, seed: u64) -> Self {
        Self {
            hidden: hidden.max(1),
            learning_rate,
            epochs,
            seed,
            w1: Vec::new(),
            w2: Vec::new(),
        }
    }

    /// Defaults tuned for locality-sized problems.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(16, 0.1, 120, seed)
    }

    fn forward(&self, row: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h: Vec<f64> = self
            .w1
            .iter()
            .map(|w| {
                let bias = *w.last().expect("bias");
                let z: f64 = w[..w.len() - 1]
                    .iter()
                    .zip(row)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + bias;
                z.max(0.0)
            })
            .collect();
        let scores: Vec<f64> = self
            .w2
            .iter()
            .map(|w| {
                let bias = *w.last().expect("bias");
                w[..w.len() - 1]
                    .iter()
                    .zip(&h)
                    .map(|(wi, hi)| wi * hi)
                    .sum::<f64>()
                    + bias
            })
            .collect();
        (h, scores)
    }
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) {
        let n_features = data.n_features();
        let n_classes = data.n_classes().max(2);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = (2.0 / (n_features.max(1) as f64)).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| {
                (0..=n_features)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect()
            })
            .collect();
        self.w2 = (0..n_classes)
            .map(|_| {
                (0..=self.hidden)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect()
            })
            .collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = data.row(i);
                let target = data.label(i);
                let (h, scores) = self.forward(row);
                let probs = softmax(&scores);
                // Output layer gradient.
                let dout: Vec<f64> = probs
                    .iter()
                    .enumerate()
                    .map(|(c, p)| p - usize::from(c == target) as f64)
                    .collect();
                // Hidden gradient through ReLU.
                let mut dh = vec![0.0; self.hidden];
                for (c, w) in self.w2.iter().enumerate() {
                    for (j, dh_j) in dh.iter_mut().enumerate() {
                        *dh_j += dout[c] * w[j];
                    }
                }
                let lr = self.learning_rate;
                for (c, w) in self.w2.iter_mut().enumerate() {
                    for (j, wj) in w[..self.hidden].iter_mut().enumerate() {
                        *wj -= lr * dout[c] * h[j];
                    }
                    let bias = w.last_mut().expect("bias");
                    *bias -= lr * dout[c];
                }
                for (j, w) in self.w1.iter_mut().enumerate() {
                    if h[j] <= 0.0 {
                        continue; // ReLU dead for this sample
                    }
                    for (wi, xi) in w[..n_features].iter_mut().zip(row) {
                        *wi -= lr * dh[j] * xi;
                    }
                    let bias = w.last_mut().expect("bias");
                    *bias -= lr * dh[j];
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let (_, scores) = self.forward(row);
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical, xor};

    #[test]
    fn solves_xor() {
        let train = xor(400, 1);
        let test = xor(200, 2);
        let mut mlp = Mlp::with_defaults(3);
        mlp.fit(&train);
        let acc = accuracy(&mlp, &test);
        assert!(acc > 0.9, "MLP must solve XOR, got {acc}");
    }

    #[test]
    fn separates_blobs() {
        let mut mlp = Mlp::with_defaults(1);
        mlp.fit(&blobs(200, 3));
        assert!(accuracy(&mlp, &blobs(100, 4)) > 0.95);
    }

    #[test]
    fn categorical_structure() {
        let mut mlp = Mlp::with_defaults(2);
        mlp.fit(&categorical(500, 0.05, 5));
        assert!(accuracy(&mlp, &categorical(200, 0.0, 6)) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = xor(150, 7);
        let mut a = Mlp::with_defaults(9);
        let mut b = Mlp::with_defaults(9);
        a.fit(&train);
        b.fit(&train);
        for i in 0..train.len() {
            assert_eq!(a.predict(train.row(i)), b.predict(train.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn unfitted_predict_panics() {
        let mlp = Mlp::with_defaults(0);
        let _ = mlp.predict(&[0.0]);
    }
}
