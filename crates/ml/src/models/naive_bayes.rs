//! Gaussian naive Bayes classifier.

use crate::dataset::Dataset;

use super::Classifier;

/// Gaussian naive Bayes: per-class feature means/variances with Laplace
/// variance smoothing, argmax of log-likelihood + log-prior.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, GaussianNaiveBayes};
///
/// let ds = Dataset::from_rows(
///     vec![vec![-3.0], vec![-2.5], vec![2.5], vec![3.0]],
///     vec![0, 0, 1, 1],
/// )?;
/// let mut nb = GaussianNaiveBayes::new();
/// nb.fit(&ds);
/// assert_eq!(nb.predict(&[-2.0]), 0);
/// assert_eq!(nb.predict(&[2.0]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    /// per class: (log_prior, means, variances)
    classes: Vec<(f64, Vec<f64>, Vec<f64>)>,
}

const VAR_SMOOTHING: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) {
        self.classes.clear();
        let n_features = data.n_features();
        for class in 0..data.n_classes() {
            let rows: Vec<&[f64]> = (0..data.len())
                .filter(|&i| data.label(i) == class)
                .map(|i| data.row(i))
                .collect();
            if rows.is_empty() {
                // Empty class: strongly negative prior so it never wins.
                self.classes.push((
                    f64::NEG_INFINITY,
                    vec![0.0; n_features],
                    vec![1.0; n_features],
                ));
                continue;
            }
            let n = rows.len() as f64;
            let log_prior = (n / data.len() as f64).ln();
            let mut means = vec![0.0; n_features];
            for row in &rows {
                for (m, x) in means.iter_mut().zip(*row) {
                    *m += x;
                }
            }
            for m in &mut means {
                *m /= n;
            }
            let mut vars = vec![0.0; n_features];
            for row in &rows {
                for ((v, m), x) in vars.iter_mut().zip(&means).zip(*row) {
                    *v += (x - m) * (x - m);
                }
            }
            for v in &mut vars {
                *v = *v / n + VAR_SMOOTHING;
            }
            self.classes.push((log_prior, means, vars));
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.classes.is_empty(), "predict called before fit");
        let mut best = (0usize, f64::NEG_INFINITY);
        for (class, (log_prior, means, vars)) in self.classes.iter().enumerate() {
            let mut ll = *log_prior;
            for ((x, m), v) in row.iter().zip(means).zip(vars) {
                ll += -0.5 * ((x - m) * (x - m) / v + (2.0 * std::f64::consts::PI * v).ln());
            }
            if ll > best.1 {
                best = (class, ll);
            }
        }
        best.0
    }

    fn name(&self) -> &'static str {
        "gaussian-naive-bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical};

    #[test]
    fn separates_blobs() {
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&blobs(200, 1));
        assert!(accuracy(&nb, &blobs(100, 2)) > 0.95);
    }

    #[test]
    fn categorical_structure() {
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&categorical(500, 0.05, 3));
        assert!(accuracy(&nb, &categorical(200, 0.0, 4)) > 0.9);
    }

    #[test]
    fn respects_priors_on_skewed_data() {
        // 90% class 1 with identical features: prior dominates.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![1.0]);
            y.push(usize::from(i >= 10));
        }
        let ds = Dataset::from_rows(x, y).unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&ds);
        assert_eq!(nb.predict(&[1.0]), 1);
    }

    #[test]
    fn missing_class_never_predicted() {
        // Labels {0, 2}: class 1 has no samples.
        let ds = Dataset::from_rows(
            vec![vec![-3.0], vec![-2.9], vec![3.0], vec![2.9]],
            vec![0, 0, 2, 2],
        )
        .unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&ds);
        for probe in [-5.0, 0.0, 5.0] {
            assert_ne!(nb.predict(&[probe]), 1);
        }
    }
}
