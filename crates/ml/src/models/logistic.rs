//! Multinomial logistic regression trained with mini-batch SGD.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;

use super::Classifier;

/// Multinomial logistic regression (softmax) with L2 regularization,
/// trained by seeded stochastic gradient descent.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, LogisticRegression};
///
/// // y = 1 iff x > 0 — linearly separable.
/// let ds = Dataset::from_rows(
///     vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]],
///     vec![0, 0, 1, 1],
/// )?;
/// let mut lr = LogisticRegression::new(0.5, 200, 1e-4, 0);
/// lr.fit(&ds);
/// assert_eq!(lr.predict(&[-3.0]), 0);
/// assert_eq!(lr.predict(&[3.0]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    learning_rate: f64,
    epochs: usize,
    l2: f64,
    seed: u64,
    /// weights[class][feature], last entry per class is the bias
    weights: Vec<Vec<f64>>,
}

impl LogisticRegression {
    /// Creates an untrained model.
    pub fn new(learning_rate: f64, epochs: usize, l2: f64, seed: u64) -> Self {
        Self {
            learning_rate,
            epochs,
            l2,
            seed,
            weights: Vec::new(),
        }
    }

    /// Reasonable defaults for small categorical problems.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(0.3, 100, 1e-4, seed)
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                let bias = *w.last().expect("fitted weights include bias");
                w[..w.len() - 1]
                    .iter()
                    .zip(row)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + bias
            })
            .collect()
    }
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        let n_features = data.n_features();
        let n_classes = data.n_classes().max(2);
        self.weights = vec![vec![0.0; n_features + 1]; n_classes];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = data.row(i);
                let target = data.label(i);
                let probs = softmax(&self.scores(row));
                for (class, w) in self.weights.iter_mut().enumerate() {
                    let err = probs[class] - usize::from(class == target) as f64;
                    let lr = self.learning_rate;
                    for (wi, xi) in w[..n_features].iter_mut().zip(row) {
                        *wi -= lr * (err * xi + self.l2 * *wi);
                    }
                    let bias = w.last_mut().expect("bias present");
                    *bias -= lr * err;
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.weights.is_empty(), "predict called before fit");
        let scores = self.scores(row);
        scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite scores"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical, xor};

    #[test]
    fn separates_blobs() {
        let train = blobs(200, 1);
        let test = blobs(100, 2);
        let mut lr = LogisticRegression::with_defaults(0);
        lr.fit(&train);
        assert!(accuracy(&lr, &test) > 0.95);
    }

    #[test]
    fn cannot_solve_xor() {
        // Sanity: a linear model stays near chance on XOR.
        let train = xor(300, 3);
        let mut lr = LogisticRegression::with_defaults(0);
        lr.fit(&train);
        let acc = accuracy(&lr, &train);
        assert!(acc < 0.7, "linear model should not fit XOR (got {acc})");
    }

    #[test]
    fn handles_one_hot_categorical() {
        let train = categorical(400, 0.05, 5);
        let test = categorical(200, 0.05, 6);
        let mut lr = LogisticRegression::with_defaults(0);
        lr.fit(&train);
        assert!(accuracy(&lr, &test) > 0.85);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blobs(100, 9);
        let mut a = LogisticRegression::with_defaults(4);
        let mut b = LogisticRegression::with_defaults(4);
        a.fit(&train);
        b.fit(&train);
        let probe = vec![0.3, -0.2];
        assert_eq!(a.predict(&probe), b.predict(&probe));
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn unfitted_predict_panics() {
        let lr = LogisticRegression::with_defaults(0);
        let _ = lr.predict(&[0.0]);
    }
}
