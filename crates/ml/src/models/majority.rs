//! Majority-class baseline.

use crate::dataset::Dataset;

use super::Classifier;

/// Predicts the most frequent training class for every input — the floor
/// any learned model must beat. On a perfectly balanced SnapShot training
/// set (an ERA-locked design) no model can beat this baseline, which is
/// exactly the paper's resilience argument.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, MajorityClass};
///
/// let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 0])?;
/// let mut m = MajorityClass::new();
/// m.fit(&ds);
/// assert_eq!(m.predict(&[9.0]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MajorityClass {
    class: usize,
}

impl MajorityClass {
    /// Creates an unfitted baseline (predicts class 0 until fitted).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for MajorityClass {
    fn fit(&mut self, data: &Dataset) {
        self.class = data.majority_class();
    }

    fn predict(&self, _row: &[f64]) -> usize {
        self.class
    }

    fn name(&self) -> &'static str {
        "majority-class"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;

    #[test]
    fn predicts_majority_everywhere() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![2, 2, 2, 0],
        )
        .unwrap();
        let mut m = MajorityClass::new();
        m.fit(&ds);
        assert_eq!(m.predict(&[0.0]), 2);
        assert_eq!(m.predict(&[100.0]), 2);
        assert!((accuracy(&m, &ds) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let m = MajorityClass::new();
        assert_eq!(m.predict(&[1.0]), 0);
    }
}
