//! k-nearest-neighbours classifier.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;

use super::Classifier;

/// k-NN with Euclidean distance and majority vote (ties broken towards the
/// smaller class index, deterministically).
///
/// Fitting memorizes a bounded sample of the training set
/// (`max_train_size`) so huge SnapShot training sets stay tractable.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, KNearestNeighbors};
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]],
///     vec![0, 0, 1, 1],
/// )?;
/// let mut knn = KNearestNeighbors::new(3, 10_000);
/// knn.fit(&ds);
/// assert_eq!(knn.predict(&[0.05]), 0);
/// assert_eq!(knn.predict(&[4.9]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    max_train_size: usize,
    train: Option<Dataset>,
}

impl KNearestNeighbors {
    /// Creates an untrained k-NN model.
    pub fn new(k: usize, max_train_size: usize) -> Self {
        Self {
            k: k.max(1),
            max_train_size: max_train_size.max(1),
            train: None,
        }
    }

    /// Reasonable defaults for locality datasets.
    pub fn with_defaults() -> Self {
        Self::new(15, 4000)
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, data: &Dataset) {
        if data.len() <= self.max_train_size {
            self.train = Some(data.clone());
        } else {
            // Deterministic thinning via a seeded shuffle — a plain stride
            // would alias with any periodic class pattern in the data.
            let mut indices: Vec<usize> = (0..data.len()).collect();
            indices.shuffle(&mut StdRng::seed_from_u64(data.len() as u64));
            indices.truncate(self.max_train_size);
            self.train = Some(data.subset(&indices));
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        let train = self.train.as_ref().expect("predict called before fit");
        let mut dists: Vec<(f64, usize)> = (0..train.len())
            .map(|i| {
                let d: f64 = train
                    .row(i)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, train.label(i))
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        let mut votes = vec![0usize; train.n_classes()];
        for (_, label) in &dists[..k] {
            votes[*label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "k-nearest-neighbors"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, xor};

    #[test]
    fn separates_blobs() {
        let mut knn = KNearestNeighbors::new(5, 10_000);
        knn.fit(&blobs(200, 1));
        assert!(accuracy(&knn, &blobs(100, 2)) > 0.95);
    }

    #[test]
    fn solves_xor() {
        let mut knn = KNearestNeighbors::new(7, 10_000);
        knn.fit(&xor(400, 3));
        assert!(accuracy(&knn, &xor(200, 4)) > 0.9);
    }

    #[test]
    fn k_one_memorizes_training_set() {
        let train = blobs(50, 5);
        let mut knn = KNearestNeighbors::new(1, 10_000);
        knn.fit(&train);
        assert!((accuracy(&knn, &train) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thinning_caps_training_size() {
        let train = blobs(1000, 6);
        let mut knn = KNearestNeighbors::new(3, 100);
        knn.fit(&train);
        assert!(knn.train.as_ref().unwrap().len() <= 100);
        // Still accurate on this easy problem.
        assert!(accuracy(&knn, &blobs(100, 7)) > 0.9);
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn unfitted_predict_panics() {
        let knn = KNearestNeighbors::with_defaults();
        let _ = knn.predict(&[0.0]);
    }
}
