//! CART decision tree with Gini impurity.

use crate::dataset::Dataset;

use super::Classifier;

/// Node of a fitted tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// rows with `row[feature] <= threshold`
        left: usize,
        right: usize,
    },
}

/// Axis-aligned CART decision tree (Gini impurity, binary splits).
///
/// The workhorse of the SnapShot attack in this reproduction: one-hot
/// operator-code features give clean axis-aligned structure a tree captures
/// exactly.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
/// use mlrl_ml::models::{Classifier, DecisionTree};
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 0.9], vec![0.9, 0.1]],
///     vec![0, 1, 0, 1],
/// )?;
/// let mut tree = DecisionTree::new(4, 1);
/// tree.fit(&ds);
/// assert_eq!(tree.predict(&[0.0, 1.0]), 0);
/// assert_eq!(tree.predict(&[1.0, 0.0]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    nodes: Vec<Node>,
    /// Restrict candidate features (used by random forests); `None` = all.
    feature_subset: Option<Vec<usize>>,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        Self {
            max_depth,
            min_samples_split: min_samples_split.max(1),
            nodes: Vec::new(),
            feature_subset: None,
        }
    }

    /// Reasonable defaults for locality datasets.
    pub fn with_defaults() -> Self {
        Self::new(12, 2)
    }

    /// Restricts splits to `features` (random-forest support).
    pub(crate) fn with_feature_subset(mut self, features: Vec<usize>) -> Self {
        self.feature_subset = Some(features);
        self
    }

    fn build(&mut self, data: &Dataset, indices: &[usize], depth: usize) -> usize {
        let majority = majority_of(data, indices);
        let done = depth >= self.max_depth
            || indices.len() < self.min_samples_split
            || is_pure(data, indices);
        if done {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        match best_split(data, indices, self.feature_subset.as_deref()) {
            None => {
                self.nodes.push(Node::Leaf { class: majority });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.row(i)[feature] <= threshold);
                if li.is_empty() || ri.is_empty() {
                    self.nodes.push(Node::Leaf { class: majority });
                    return self.nodes.len() - 1;
                }
                // Reserve the split slot before recursing.
                self.nodes.push(Node::Leaf { class: majority });
                let slot = self.nodes.len() - 1;
                let left = self.build(data, &li, depth + 1);
                let right = self.build(data, &ri, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

fn majority_of(data: &Dataset, indices: &[usize]) -> usize {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in indices {
        counts[data.label(i)] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn is_pure(data: &Dataset, indices: &[usize]) -> bool {
    let first = data.label(indices[0]);
    indices.iter().all(|&i| data.label(i) == first)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

/// Finds the `(feature, threshold)` split minimizing weighted Gini, or
/// `None` if no split improves purity.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    feature_subset: Option<&[usize]>,
) -> Option<(usize, f64)> {
    let n_classes = data.n_classes();
    let total = indices.len();
    let mut parent_counts = vec![0usize; n_classes];
    for &i in indices {
        parent_counts[data.label(i)] += 1;
    }
    let parent_gini = gini(&parent_counts, total);
    let mut best: Option<(f64, usize, f64)> = None;

    let all_features: Vec<usize> = (0..data.n_features()).collect();
    let features = feature_subset.unwrap_or(&all_features);

    for &feature in features {
        // Sort indices by this feature; sweep thresholds between distinct
        // values.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| {
            data.row(a)[feature]
                .partial_cmp(&data.row(b)[feature])
                .expect("finite features")
        });
        let mut left_counts = vec![0usize; n_classes];
        for w in 0..sorted.len().saturating_sub(1) {
            left_counts[data.label(sorted[w])] += 1;
            let cur = data.row(sorted[w])[feature];
            let next = data.row(sorted[w + 1])[feature];
            if cur == next {
                continue;
            }
            let left_n = w + 1;
            let right_n = total - left_n;
            let right_counts: Vec<usize> = parent_counts
                .iter()
                .zip(&left_counts)
                .map(|(p, l)| p - l)
                .collect();
            let weighted = (left_n as f64 * gini(&left_counts, left_n)
                + right_n as f64 * gini(&right_counts, right_n))
                / total as f64;
            if weighted + 1e-12 < parent_gini && best.map(|(b, _, _)| weighted < b).unwrap_or(true)
            {
                best = Some((weighted, feature, (cur + next) / 2.0));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        self.nodes.clear();
        let indices: Vec<usize> = (0..data.len()).collect();
        self.build(data, &indices, 0);
    }

    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "predict called before fit");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::accuracy;
    use crate::models::test_fixtures::{blobs, categorical, xor};

    #[test]
    fn solves_xor() {
        let train = xor(400, 1);
        let test = xor(200, 2);
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&train);
        assert!(accuracy(&tree, &test) > 0.95, "tree must capture XOR");
    }

    #[test]
    fn separates_blobs() {
        let train = blobs(200, 3);
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&train);
        assert!(accuracy(&tree, &blobs(100, 4)) > 0.95);
    }

    #[test]
    fn depth_zero_is_majority() {
        let train = categorical(100, 0.0, 5);
        let mut tree = DecisionTree::new(0, 2);
        tree.fit(&train);
        let maj = train.majority_class();
        for i in 0..train.len() {
            assert_eq!(tree.predict(train.row(i)), maj);
        }
    }

    #[test]
    fn pure_node_stops_early() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 1]).unwrap();
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&ds);
        assert_eq!(tree.nodes.len(), 1, "pure data needs a single leaf");
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn learns_noisy_categorical_majority_structure() {
        let train = categorical(600, 0.1, 7);
        let test = categorical(300, 0.0, 8);
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&train);
        assert!(accuracy(&tree, &test) > 0.95);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let ds = Dataset::from_rows(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![0, 1, 0, 1],
        )
        .unwrap();
        let mut tree = DecisionTree::with_defaults();
        tree.fit(&ds);
        assert_eq!(
            tree.nodes.len(),
            1,
            "no split possible on constant features"
        );
    }
}
