//! Datasets for supervised classification.
//!
//! The SnapShot-RTL attack produces *localities*: small categorical feature
//! vectors (`[C1, C2]` operator codes) labelled with key-bit values. This
//! module stores such data densely and provides the categorical one-hot
//! encoding the models consume.

use std::collections::BTreeSet;
use std::fmt;

/// A dense, labelled classification dataset.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::Dataset;
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0, 1.0], vec![1.0, 0.0]],
///     vec![0, 1],
/// )?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.n_features(), 2);
/// assert_eq!(ds.n_classes(), 2);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

/// Errors constructing a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Rows and labels have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Feature rows have inconsistent widths.
    RaggedRows,
    /// The dataset holds no samples.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            DatasetError::RaggedRows => write!(f, "feature rows have inconsistent widths"),
            DatasetError::Empty => write!(f, "dataset holds no samples"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from feature rows and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on empty input, ragged rows, or mismatched
    /// lengths.
    pub fn from_rows(x: Vec<Vec<f64>>, y: Vec<usize>) -> Result<Self, DatasetError> {
        if x.len() != y.len() {
            return Err(DatasetError::LengthMismatch {
                rows: x.len(),
                labels: y.len(),
            });
        }
        if x.is_empty() {
            return Err(DatasetError::Empty);
        }
        let width = x[0].len();
        if x.iter().any(|r| r.len() != width) {
            return Err(DatasetError::RaggedRows);
        }
        let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
        Ok(Self { x, y, n_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Number of classes (`max(label) + 1`).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.y[i]
    }

    /// All feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// A new dataset containing the samples at `indices` (in order).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Self {
        Self {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// The majority class label.
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// One-hot encoder for categorical integer feature columns.
///
/// SnapShot localities are pairs of operator codes; the encoder maps each
/// distinct code per column to an indicator feature, which lets linear and
/// distance-based models treat codes symmetrically.
///
/// # Examples
///
/// ```
/// use mlrl_ml::dataset::OneHotEncoder;
///
/// let rows = vec![vec![1u32, 7], vec![2, 7], vec![1, 9]];
/// let enc = OneHotEncoder::fit(&rows);
/// let dense = enc.transform(&rows[0]);
/// // Column 0 has codes {1, 2}; column 1 has {7, 9}: 4 indicators total.
/// assert_eq!(dense.len(), 4);
/// assert_eq!(dense.iter().filter(|v| **v == 1.0).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotEncoder {
    /// Sorted distinct codes per input column.
    vocab: Vec<Vec<u32>>,
}

impl OneHotEncoder {
    /// Learns the per-column vocabularies from `rows`.
    pub fn fit(rows: &[Vec<u32>]) -> Self {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); width];
        for row in rows {
            for (col, &v) in row.iter().enumerate() {
                sets[col].insert(v);
            }
        }
        Self {
            vocab: sets.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Total dense width after encoding.
    pub fn width(&self) -> usize {
        self.vocab.iter().map(|v| v.len()).sum()
    }

    /// Encodes one categorical row into a dense 0/1 vector. Codes unseen
    /// during [`OneHotEncoder::fit`] encode as all-zero in their column.
    pub fn transform(&self, row: &[u32]) -> Vec<f64> {
        let mut out = vec![0.0; self.width()];
        let mut offset = 0;
        for (col, vocab) in self.vocab.iter().enumerate() {
            if let Some(&code) = row.get(col) {
                if let Ok(pos) = vocab.binary_search(&code) {
                    out[offset + pos] = 1.0;
                }
            }
            offset += vocab.len();
        }
        out
    }

    /// Encodes many rows.
    pub fn transform_all(&self, rows: &[Vec<u32>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(
            Dataset::from_rows(vec![vec![1.0]], vec![0, 1]).unwrap_err(),
            DatasetError::LengthMismatch { rows: 1, labels: 2 }
        );
        assert_eq!(
            Dataset::from_rows(vec![], vec![]).unwrap_err(),
            DatasetError::Empty
        );
        assert_eq!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0]).unwrap_err(),
            DatasetError::RaggedRows
        );
    }

    #[test]
    fn class_statistics() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 1, 1, 1],
        )
        .unwrap();
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![1, 3]);
        assert_eq!(ds.majority_class(), 1);
    }

    #[test]
    fn subset_selects_in_order() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 0]).unwrap();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.rows(), &[vec![2.0], vec![0.0]]);
        assert_eq!(sub.labels(), &[0, 0]);
        assert_eq!(sub.n_classes(), 2, "subset keeps the parent class count");
    }

    #[test]
    fn one_hot_round_trip() {
        let rows = vec![vec![5u32, 100], vec![9, 100], vec![5, 200]];
        let enc = OneHotEncoder::fit(&rows);
        assert_eq!(enc.width(), 4);
        assert_eq!(enc.transform(&[5, 100]), vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(enc.transform(&[9, 200]), vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn one_hot_unseen_code_is_zero() {
        let enc = OneHotEncoder::fit(&[vec![1u32], vec![2]]);
        assert_eq!(enc.transform(&[3]), vec![0.0, 0.0]);
    }

    #[test]
    fn one_hot_distinct_rows_distinct_encodings() {
        let rows: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i % 5, i / 5]).collect();
        let enc = OneHotEncoder::fit(&rows);
        let encoded = enc.transform_all(&rows);
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                if rows[i] != rows[j] {
                    assert_ne!(encoded[i], encoded[j]);
                }
            }
        }
    }
}
