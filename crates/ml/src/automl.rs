//! Auto-ml model search — the stand-in for auto-sklearn [13].
//!
//! The paper lets auto-sklearn search model families and hyper-parameters
//! for 600 s per attack iteration. This module performs the same job
//! deterministically: a candidate grid over five model families is scored by
//! stratified k-fold cross-validation; the winner is refit on the full
//! training set. On SnapShot's tiny categorical feature space every
//! competent family reaches the Bayes rate of the locality distribution, so
//! the *choice* of stack does not move the evaluation — the label
//! distribution induced by locking does (see DESIGN.md, substitution 2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::models::{
    accuracy, AdaBoost, Classifier, DecisionTree, GaussianNaiveBayes, KNearestNeighbors,
    LogisticRegression, MajorityClass, Mlp, RandomForest,
};
use crate::split::StratifiedKFold;

/// Configuration of the auto-ml search.
#[derive(Debug, Clone)]
pub struct AutoMlConfig {
    /// Cross-validation folds (≥ 2).
    pub folds: usize,
    /// Seed for fold assignment and stochastic models.
    pub seed: u64,
    /// Cap on training samples; larger sets are deterministically thinned.
    /// Keeps the k-NN/forest candidates tractable on 100k+-sample
    /// SnapShot training sets.
    pub max_train_samples: usize,
    /// Restrict the candidate families (empty = all).
    pub families: Vec<ModelFamily>,
    /// One-standard-error-style selection margin: a challenger must beat
    /// the incumbent's CV accuracy by more than this to take the lead.
    /// Candidates are ordered simple → flexible, so near-ties resolve to
    /// the simpler model (majority, then trees, ... then logistic).
    pub selection_margin: f64,
}

impl Default for AutoMlConfig {
    fn default() -> Self {
        Self {
            folds: 3,
            seed: 0,
            max_train_samples: 6000,
            families: Vec::new(),
            selection_margin: 0.01,
        }
    }
}

/// Candidate model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Majority baseline (always included as the floor).
    Majority,
    /// Multinomial logistic regression.
    Logistic,
    /// CART decision tree.
    Tree,
    /// Random forest.
    Forest,
    /// k-nearest neighbours.
    Knn,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Single-hidden-layer MLP (the SnapShot-style neural model).
    Mlp,
    /// AdaBoost over decision stumps.
    AdaBoost,
}

/// Outcome of a search: the refit best model and its CV score.
#[derive(Debug)]
pub struct AutoMlOutcome {
    /// Winner, refit on the full (possibly thinned) training set.
    pub model: Box<dyn Classifier>,
    /// Mean CV accuracy of the winner.
    pub cv_accuracy: f64,
    /// `(candidate name, mean CV accuracy)` leaderboard, best first.
    pub leaderboard: Vec<(String, f64)>,
}

fn candidates(cfg: &AutoMlConfig) -> Vec<(String, Box<dyn Classifier>)> {
    // Ordered simple -> flexible; the selection margin resolves near-ties
    // towards the front of this list.
    let all = [
        ModelFamily::Majority,
        ModelFamily::Tree,
        ModelFamily::Forest,
        ModelFamily::AdaBoost,
        ModelFamily::Knn,
        ModelFamily::NaiveBayes,
        ModelFamily::Mlp,
        ModelFamily::Logistic,
    ];
    let wanted: Vec<ModelFamily> = if cfg.families.is_empty() {
        all.to_vec()
    } else {
        let mut fams = cfg.families.clone();
        if !fams.contains(&ModelFamily::Majority) {
            fams.push(ModelFamily::Majority);
        }
        fams
    };
    let mut out: Vec<(String, Box<dyn Classifier>)> = Vec::new();
    for fam in wanted {
        match fam {
            ModelFamily::Majority => {
                out.push(("majority".into(), Box::new(MajorityClass::new())));
            }
            ModelFamily::Logistic => {
                for (lr, epochs) in [(0.3, 60), (0.1, 120)] {
                    out.push((
                        format!("logistic(lr={lr},epochs={epochs})"),
                        Box::new(LogisticRegression::new(lr, epochs, 1e-4, cfg.seed)),
                    ));
                }
            }
            ModelFamily::Tree => {
                for depth in [6, 12] {
                    out.push((
                        format!("tree(depth={depth})"),
                        Box::new(DecisionTree::new(depth, 2)),
                    ));
                }
            }
            ModelFamily::Forest => {
                out.push((
                    "forest(trees=25,depth=10)".into(),
                    Box::new(RandomForest::new(25, 10, cfg.seed)),
                ));
            }
            ModelFamily::Knn => {
                for k in [5, 15] {
                    out.push((
                        format!("knn(k={k})"),
                        Box::new(KNearestNeighbors::new(k, 3000)),
                    ));
                }
            }
            ModelFamily::NaiveBayes => {
                out.push(("naive-bayes".into(), Box::new(GaussianNaiveBayes::new())));
            }
            ModelFamily::Mlp => {
                out.push((
                    "mlp(hidden=16)".into(),
                    Box::new(Mlp::new(16, 0.1, 60, cfg.seed)),
                ));
            }
            ModelFamily::AdaBoost => {
                out.push(("adaboost(rounds=30)".into(), Box::new(AdaBoost::new(30))));
            }
        }
    }
    out
}

/// Thins a dataset deterministically to at most `cap` samples via a seeded
/// shuffle (a plain stride would alias with periodic class patterns).
fn thin(data: &Dataset, cap: usize, seed: u64) -> Dataset {
    if data.len() <= cap {
        return data.clone();
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    indices.truncate(cap);
    data.subset(&indices)
}

/// Runs the search: CV-scores every candidate, refits the best on the full
/// training data and returns it.
///
/// # Panics
///
/// Panics if `train` has fewer samples than `cfg.folds`.
///
/// # Examples
///
/// ```
/// use mlrl_ml::automl::{auto_fit, AutoMlConfig};
/// use mlrl_ml::dataset::Dataset;
///
/// let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 2) as f64]).collect();
/// let y: Vec<usize> = (0..60).map(|i| i % 2).collect();
/// let train = Dataset::from_rows(x, y)?;
/// let outcome = auto_fit(&train, &AutoMlConfig::default());
/// assert!(outcome.cv_accuracy > 0.95);
/// assert_eq!(outcome.model.predict(&[1.0]), 1);
/// # Ok::<(), mlrl_ml::dataset::DatasetError>(())
/// ```
pub fn auto_fit(train: &Dataset, cfg: &AutoMlConfig) -> AutoMlOutcome {
    let train = thin(train, cfg.max_train_samples, cfg.seed);
    let folds = cfg.folds.max(2).min(train.len());
    let kfold = StratifiedKFold::new(&train, folds, cfg.seed);

    let mut leaderboard: Vec<(String, f64)> = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    let mut models = candidates(cfg);
    for (idx, (name, model)) in models.iter_mut().enumerate() {
        let mut scores = Vec::with_capacity(folds);
        for fold in 0..folds {
            let (tr, val) = kfold.split(&train, fold);
            if tr.is_empty() || val.is_empty() {
                continue;
            }
            model.fit(&tr);
            scores.push(accuracy(model.as_ref(), &val));
        }
        let mean = if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        leaderboard.push((name.clone(), mean));
        // One-standard-error-style rule: the earliest (simplest) candidate
        // keeps the lead unless a challenger clearly beats it — majority
        // wins on balanced data, trees beat logistic on near-ties.
        if best
            .map(|(_, b)| mean > b + cfg.selection_margin)
            .unwrap_or(true)
        {
            best = Some((idx, mean));
        }
    }
    let (best_idx, cv_accuracy) = best.expect("at least one candidate");
    let (_, mut model) = models.swap_remove(best_idx);
    model.fit(&train);
    leaderboard.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    AutoMlOutcome {
        model,
        cv_accuracy,
        leaderboard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_fixtures::{categorical, xor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn picks_a_nonlinear_model_for_xor() {
        let train = xor(400, 1);
        let outcome = auto_fit(&train, &AutoMlConfig::default());
        assert!(
            outcome.cv_accuracy > 0.9,
            "leaderboard: {:?}",
            outcome.leaderboard
        );
        let test = xor(200, 2);
        let acc = crate::models::accuracy(outcome.model.as_ref(), &test);
        assert!(acc > 0.9);
    }

    #[test]
    fn balanced_random_labels_stay_at_chance() {
        // The ERA situation: features carry no label information.
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..600)
            .map(|_| {
                let mut row = vec![0.0; 4];
                row[rng.gen_range(0..4usize)] = 1.0;
                row
            })
            .collect();
        let y: Vec<usize> = (0..600).map(|_| rng.gen_range(0..2)).collect();
        let train = Dataset::from_rows(x, y).unwrap();
        let outcome = auto_fit(&train, &AutoMlConfig::default());
        assert!(
            outcome.cv_accuracy < 0.6,
            "no model should beat chance: {:?}",
            outcome.leaderboard
        );
    }

    #[test]
    fn thinning_respects_cap() {
        let train = categorical(5000, 0.1, 4);
        let cfg = AutoMlConfig {
            max_train_samples: 500,
            ..Default::default()
        };
        let outcome = auto_fit(&train, &cfg);
        assert!(outcome.cv_accuracy > 0.8);
    }

    #[test]
    fn leaderboard_is_sorted_and_complete() {
        let train = categorical(300, 0.05, 5);
        let outcome = auto_fit(&train, &AutoMlConfig::default());
        assert!(outcome.leaderboard.len() >= 6);
        for w in outcome.leaderboard.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn family_restriction_is_honoured() {
        let train = categorical(300, 0.05, 6);
        let cfg = AutoMlConfig {
            families: vec![ModelFamily::Tree],
            ..Default::default()
        };
        let outcome = auto_fit(&train, &cfg);
        // tree grid (2) + implicit majority floor (1)
        assert_eq!(outcome.leaderboard.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = categorical(300, 0.1, 7);
        let a = auto_fit(&train, &AutoMlConfig::default());
        let b = auto_fit(&train, &AutoMlConfig::default());
        assert_eq!(a.leaderboard, b.leaderboard);
        assert_eq!(a.cv_accuracy, b.cv_accuracy);
    }
}
