//! Classification metrics beyond plain accuracy.
//!
//! KPA is an accuracy, but diagnosing *why* an attack works needs more:
//! on the skewed label distributions of partially balanced locking, a
//! majority predictor scores high accuracy while its balanced accuracy
//! sits at 50% — exactly the "educated guess" effect of §5.1.

use crate::dataset::Dataset;
use crate::models::Classifier;

/// A confusion matrix over `n` classes: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates `model` on `data`.
    pub fn evaluate(model: &dyn Classifier, data: &Dataset) -> Self {
        let n = data.n_classes().max(1);
        let mut counts = vec![vec![0usize; n]; n];
        for i in 0..data.len() {
            let actual = data.label(i);
            let predicted = model.predict(data.row(i)).min(n - 1);
            counts[actual][predicted] += 1;
        }
        Self { counts }
    }

    /// Builds directly from label pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_pairs(actual: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label count mismatch");
        let n = n_classes.max(1);
        let mut counts = vec![vec![0usize; n]; n];
        for (&a, &p) in actual.iter().zip(predicted) {
            counts[a.min(n - 1)][p.min(n - 1)] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// `counts[actual][predicted]`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of `class` (true-positive rate), `None` if the class has no
    /// samples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = self.counts[class].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / row as f64)
        }
    }

    /// Precision of `class`, `None` if the class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: usize = (0..self.n_classes()).map(|i| self.counts[i][class]).sum();
        if col == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / col as f64)
        }
    }

    /// F1 score of `class`.
    pub fn f1(&self, class: usize) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Balanced accuracy: mean per-class recall. The honest score on a
    /// skewed label distribution — a majority predictor gets `1/n`-ish
    /// here no matter how skewed the data.
    pub fn balanced_accuracy(&self) -> f64 {
        let recalls: Vec<f64> = (0..self.n_classes())
            .filter_map(|c| self.recall(c))
            .collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_pairs(&[0, 1, 1, 0], &[0, 1, 1, 0], 2);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.balanced_accuracy(), 1.0);
        assert_eq!(cm.f1(0), Some(1.0));
        assert_eq!(cm.f1(1), Some(1.0));
    }

    #[test]
    fn majority_predictor_on_skewed_labels() {
        // 90 of class 1, 10 of class 0, predictor says 1 always.
        let actual: Vec<usize> = (0..100).map(|i| usize::from(i >= 10)).collect();
        let predicted = vec![1usize; 100];
        let cm = ConfusionMatrix::from_pairs(&actual, &predicted, 2);
        assert!((cm.accuracy() - 0.9).abs() < 1e-9);
        assert!(
            (cm.balanced_accuracy() - 0.5).abs() < 1e-9,
            "balanced acc exposes the trick"
        );
        assert_eq!(cm.precision(0), None, "class 0 never predicted");
        assert_eq!(cm.recall(0), Some(0.0));
    }

    #[test]
    fn counts_and_total() {
        let cm = ConfusionMatrix::from_pairs(&[0, 0, 1], &[1, 0, 1], 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.total(), 3);
    }

    #[test]
    fn evaluate_uses_a_model() {
        use crate::models::MajorityClass;
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1, 0],
        )
        .unwrap();
        let mut m = MajorityClass::new();
        m.fit(&ds);
        let cm = ConfusionMatrix::evaluate(&m, &ds);
        assert!((cm.accuracy() - 0.75).abs() < 1e-9);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn from_pairs_validates_lengths() {
        let _ = ConfusionMatrix::from_pairs(&[0], &[], 2);
    }
}
