//! # mlrl-ml — self-contained ML stack for the SnapShot-RTL attack
//!
//! The paper trains its RTL-adapted SnapShot attack with auto-sklearn [13],
//! a Python auto-ml library. This crate is the from-scratch Rust
//! substitution (DESIGN.md, substitution 2): datasets and one-hot encoding
//! ([`dataset`]), train/test splitting and stratified k-fold CV ([`split`]),
//! five classifier families plus a majority baseline ([`models`]), and a
//! deterministic auto-ml model search ([`automl`]).
//!
//! ## Quick example
//!
//! ```
//! use mlrl_ml::automl::{auto_fit, AutoMlConfig};
//! use mlrl_ml::dataset::Dataset;
//!
//! // Learn y = x0 on a trivial indicator problem.
//! let x: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 2) as f64]).collect();
//! let y: Vec<usize> = (0..40).map(|i| i % 2).collect();
//! let train = Dataset::from_rows(x, y)?;
//! let outcome = auto_fit(&train, &AutoMlConfig::default());
//! assert_eq!(outcome.model.predict(&[0.0]), 0);
//! # Ok::<(), mlrl_ml::dataset::DatasetError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod automl;
pub mod dataset;
pub mod metrics;
pub mod models;
pub mod split;

pub use automl::{auto_fit, AutoMlConfig, AutoMlOutcome};
pub use dataset::{Dataset, OneHotEncoder};
pub use models::Classifier;
