//! Error types for the netlist crate.

use std::fmt;

/// Errors produced while lowering, mutating, or simulating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A referenced net id does not exist in the netlist.
    InvalidNetId(u32),
    /// A port name was not found (or has the wrong direction).
    UnknownPort(String),
    /// Two ports or nets were declared with the same name.
    DuplicateName(String),
    /// The gates form a combinational cycle through this net.
    CombinationalCycle(u32),
    /// A net is driven by more than one gate / flip-flop / input.
    MultipleDrivers(u32),
    /// A net that must be driven has no driver.
    Undriven(u32),
    /// The RTL construct cannot be lowered to gates.
    Lower(String),
    /// `**` was applied to a non-constant exponent. Bit-blasting a variable
    /// exponent is unbounded; real synthesis flows reject it too.
    VariableExponent,
    /// A simulator lane index or batch width exceeded the 64-lane word.
    LaneOutOfRange {
        /// Lane index or batch width requested.
        requested: usize,
        /// Number of lanes a word carries.
        lanes: usize,
    },
    /// The key vector handed to the simulator is shorter than the netlist's
    /// key width.
    KeyTooShort {
        /// Bits required by the netlist.
        required: usize,
        /// Bits provided.
        provided: usize,
    },
    /// The operation requires a purely combinational netlist but flip-flops
    /// are present.
    Sequential,
    /// A locking operation failed (no lockable wire left, bad target, ...).
    Lock(String),
    /// The text serialization could not be parsed back into a netlist.
    Serdes(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InvalidNetId(id) => write!(f, "invalid net id n{id}"),
            NetlistError::UnknownPort(name) => write!(f, "unknown port `{name}`"),
            NetlistError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            NetlistError::CombinationalCycle(id) => {
                write!(f, "combinational cycle through net n{id}")
            }
            NetlistError::MultipleDrivers(id) => write!(f, "net n{id} has multiple drivers"),
            NetlistError::Undriven(id) => write!(f, "net n{id} has no driver"),
            NetlistError::Lower(msg) => write!(f, "lowering error: {msg}"),
            NetlistError::VariableExponent => {
                write!(f, "cannot bit-blast `**` with a non-constant exponent")
            }
            NetlistError::LaneOutOfRange { requested, lanes } => {
                write!(
                    f,
                    "lane index/batch width {requested} exceeds the {lanes}-lane word"
                )
            }
            NetlistError::KeyTooShort { required, provided } => {
                write!(f, "key has {provided} bits but netlist requires {required}")
            }
            NetlistError::Sequential => {
                write!(
                    f,
                    "operation requires a combinational netlist but flip-flops are present"
                )
            }
            NetlistError::Lock(msg) => write!(f, "locking error: {msg}"),
            NetlistError::Serdes(msg) => write!(f, "netlist serdes error: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NetlistError>;
