//! Constant folding: tied-0/1 nets propagate forward through the gate
//! truth tables.
//!
//! A single topological walk evaluates every gate whose inputs are all
//! known constants via [`GateKind::eval`] — the same kernel the
//! simulators use, so folding can never disagree with simulation. Folded
//! gates are deleted and their uses rewired to `CONST0`/`CONST1`;
//! partially-constant gates (`a & 1`, `x ^ 0`, ...) are left for the
//! rewrite pass's identity/annihilator rules.

use crate::ir::{NetId, Netlist};

use super::{const_net, retain_live, topo_gate_order, Replacer};

/// Runs one folding sweep. Returns the number of gates folded away.
pub(super) fn run(netlist: &mut Netlist) -> usize {
    let order = topo_gate_order(netlist);
    let mut value: Vec<Option<bool>> = vec![None; netlist.net_count()];
    value[NetId::CONST0.index()] = Some(false);
    value[NetId::CONST1.index()] = Some(true);

    let mut repl = Replacer::identity(netlist.net_count());
    let mut dead = vec![false; netlist.gates.len()];
    let mut folded = 0usize;

    for &gi in &order {
        let g = netlist.gates[gi as usize];
        let mut ins = [false; 3];
        let mut known = true;
        for (slot, inp) in ins.iter_mut().zip(g.inputs.iter()) {
            match value[inp.index()] {
                Some(v) => *slot = v,
                None => {
                    known = false;
                    break;
                }
            }
        }
        if !known {
            continue;
        }
        let out = g.kind.eval(&ins[..g.kind.arity()]);
        value[g.output.index()] = Some(out);
        repl.set(g.output, const_net(out));
        dead[gi as usize] = true;
        folded += 1;
    }

    if folded == 0 {
        return 0;
    }
    repl.apply(netlist);
    retain_live(netlist, &dead);
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn folds_constant_cones_transitively() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let one = n.add_gate(GateKind::Or, [NetId::CONST1, NetId::CONST0]);
        let zero = n.add_gate(GateKind::Not, [one]);
        let keep = n.add_gate(GateKind::Xor, [a, zero]);
        n.add_output_port("y", vec![keep]);
        n.add_output_port("k", vec![one]);

        let folded = run(&mut n);
        assert_eq!(folded, 2);
        assert!(n.validate().is_ok());
        // The surviving XOR now reads CONST0 directly; the constant
        // output port was rewired to CONST1.
        assert_eq!(n.gates().len(), 1);
        assert_eq!(n.gates()[0].inputs[1], NetId::CONST0);
        assert_eq!(n.port("k").unwrap().bits[0], NetId::CONST1);
    }

    #[test]
    fn folds_nothing_without_constants() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x = n.add_gate(GateKind::Nand, [a, b]);
        n.add_output_port("y", vec![x]);
        assert_eq!(run(&mut n), 0);
        assert_eq!(n.gates().len(), 1);
    }
}
