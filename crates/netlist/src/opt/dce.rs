//! Dead-gate elimination over the CSR [`FanoutIndex`].
//!
//! Worklist formulation of [`Netlist::sweep`]: every gate starts with a
//! read count — its fan-out pins (from the CSR index) plus its uses as
//! an output-port bit or flip-flop data pin. Gates whose count is zero
//! are dead; deleting one decrements the counts of its input drivers,
//! cascading the sweep backward through the cone in O(pins) total
//! without re-walking the netlist per round. Net ids are preserved,
//! exactly like [`Netlist::sweep`].

use crate::ir::{FanoutIndex, Netlist, NO_DRIVER};

use super::retain_live;

/// Runs one dead-gate sweep. Returns the number of gates removed.
pub(super) fn run(netlist: &mut Netlist) -> usize {
    let fanout = FanoutIndex::of(netlist);
    let driver = netlist.driver_index();

    // Reads of a net from the observation points the cone walk in
    // `observable_cone` roots at: output ports and dff data pins.
    let mut external = vec![0u32; netlist.net_count()];
    for p in &netlist.outputs {
        for &b in &p.bits {
            external[b.index()] += 1;
        }
    }
    for f in &netlist.dffs {
        external[f.d.index()] += 1;
    }

    let mut reads: Vec<u32> = netlist
        .gates
        .iter()
        .map(|g| fanout.fanout(g.output).len() as u32 + external[g.output.index()])
        .collect();

    let mut dead = vec![false; netlist.gates.len()];
    let mut worklist: Vec<u32> = (0..netlist.gates.len() as u32)
        .filter(|&gi| reads[gi as usize] == 0)
        .collect();
    let mut removed = 0usize;

    while let Some(gi) = worklist.pop() {
        if dead[gi as usize] {
            continue;
        }
        dead[gi as usize] = true;
        removed += 1;
        for &inp in &netlist.gates[gi as usize].inputs {
            let di = driver[inp.index()];
            if di == NO_DRIVER || dead[di as usize] {
                continue;
            }
            reads[di as usize] -= 1;
            if reads[di as usize] == 0 {
                worklist.push(di);
            }
        }
    }

    if removed == 0 {
        return 0;
    }
    retain_live(netlist, &dead);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn removes_dead_cones_but_keeps_dff_feeders() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let live = n.add_gate(GateKind::And, [a, b]);
        // Dead two-gate cone: the NOT feeds only the OR, which feeds
        // nothing.
        let d1 = n.add_gate(GateKind::Not, [a]);
        let _d2 = n.add_gate(GateKind::Or, [d1, b]);
        // A gate feeding only a flip-flop is live.
        let fed = n.add_gate(GateKind::Xor, [a, b]);
        let q = n.add_dff();
        n.set_dff_data(q, fed).unwrap();
        n.add_output_port("y", vec![live]);

        let removed = run(&mut n);
        assert_eq!(removed, 2);
        assert!(n.validate().is_ok());
        assert_eq!(n.gates().len(), 2);
        assert!(n.gates().iter().any(|g| g.output == live));
        assert!(n.gates().iter().any(|g| g.output == fed));
    }

    #[test]
    fn agrees_with_the_cone_based_sweep() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 2);
        let x = n.add_gate(GateKind::Xor, [a[0], a[1]]);
        let _dead = n.add_gate(GateKind::Nor, [x, a[0]]);
        n.add_output_port("y", vec![x]);
        let mut clone = n.clone();
        let by_worklist = run(&mut n);
        let by_cone = clone.sweep();
        assert_eq!(by_worklist, by_cone);
        assert_eq!(n.gates(), clone.gates());
    }
}
