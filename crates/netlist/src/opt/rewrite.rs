//! Local rewrite rules: buffer forwarding, double-inverter collapse,
//! identity/annihilator absorption, and (in the full set) inverter
//! fusion and XOR-chain cancellation.
//!
//! Every rule is a peephole over one gate and, for the fusion rules, the
//! driver of one of its operands. Rules either *forward* the gate's
//! output to an existing net (the gate dies) or rewrite the gate in
//! place to a cheaper kind; no rule ever allocates a net or a gate, so
//! the pass strictly reduces the measure `(gate count, operand pins,
//! inverter count)` and the fixed-point driver terminates.
//!
//! Basic set (`O1`):
//! - `BUF(a) → a`; `NOT(NOT(a)) → a`; `NOT(0/1) → 1/0`
//! - identity/annihilator absorption for every 2-input kind
//!   (`a&0 → 0`, `a&1 → a`, `a|1 → 1`, `a^0 → a`, `a^1 → NOT(a)`, ...)
//! - equal-operand collapse (`a&a → a`, `a^a → 0`, `NAND(a,a) → NOT(a)`, ...)
//! - MUX shortcuts: constant select, equal branches, `MUX(s,1,0) → s`,
//!   `MUX(s,0,1) → NOT(s)`, constant-branch strength reduction
//!   (`MUX(s,a,0) → AND(s,a)`, `MUX(s,1,b) → OR(s,b)`)
//!
//! Full set (`O2`) adds driver-pattern rules:
//! - complement detection: `a & NOT(a) → 0`, `a | NOT(a) → 1`,
//!   `a ^ NOT(a) → 1`, and duals
//! - inverter fusion into a single-use consumer: `NOT(AND(a,b)) →
//!   NAND(a,b)` (and OR/XOR/NAND/NOR/XNOR duals), `XOR(NOT(a), b) →
//!   XNOR(a,b)`, `XNOR(NOT(a), b) → XOR(a,b)`
//! - MUX select inversion swap: `MUX(NOT(s), a, b) → MUX(s, b, a)`
//! - XOR-chain cancellation: `XOR(a, XOR(a, b)) → b` (all operand
//!   positions, XNOR variants fold to the inverted branch's complement
//!   only when it already exists, so no gate is ever added)
//!
//! The single-use condition on fusion rules is a profitability check,
//! not a soundness one: the producer gate is left in place and the DCE
//! pass deletes it only if the fusion removed its last reader.

use crate::ir::{GateKind, NetId, Netlist, NO_DRIVER};

use super::{retain_live, topo_gate_order, Replacer};

/// Basic rule set: folding-adjacent local rewrites (`O1`).
pub(super) fn run_basic(netlist: &mut Netlist) -> usize {
    run(netlist, false)
}

/// Full rule set: basic plus inverter fusion and chain cancellation
/// (`O2`).
pub(super) fn run_full(netlist: &mut Netlist) -> usize {
    run(netlist, true)
}

/// What a rule decided for one gate.
enum Action {
    /// No rule matched.
    Keep,
    /// Forward the output to this net and delete the gate.
    Forward(NetId),
    /// Replace kind and operands in place (same output net).
    Become(GateKind, [NetId; 3], usize),
}

fn run(netlist: &mut Netlist, full: bool) -> usize {
    let order = topo_gate_order(netlist);
    let driver = netlist.driver_index();
    // Pin-read counts per net, for the single-use profitability check of
    // the fusion rules. Approximate under in-pass rewiring, which only
    // shifts *when* a fusion fires, never its soundness.
    let mut reads = vec![0u32; netlist.net_count()];
    for g in &netlist.gates {
        for &inp in &g.inputs {
            reads[inp.index()] += 1;
        }
    }
    for p in &netlist.outputs {
        for &b in &p.bits {
            reads[b.index()] += 1;
        }
    }
    for f in &netlist.dffs {
        reads[f.d.index()] += 1;
    }

    let mut repl = Replacer::identity(netlist.net_count());
    let mut dead = vec![false; netlist.gates.len()];
    let mut changed = 0usize;

    for &gi in &order {
        // Resolve operands through this pass's replacements first, so
        // rules see the post-rewrite structure.
        let mut ins = [NetId::CONST0; 3];
        let arity = netlist.gates[gi as usize].inputs.len();
        for (slot, &inp) in ins.iter_mut().zip(netlist.gates[gi as usize].inputs.iter()) {
            *slot = repl.resolve(inp);
        }
        let kind = netlist.gates[gi as usize].kind;

        let ctx = Ctx {
            netlist,
            driver: &driver,
            dead: &dead,
            reads: &reads,
            full,
        };
        let action = rewrite_gate(&ctx, kind, &ins[..arity]);

        let g = &mut netlist.gates[gi as usize];
        match action {
            Action::Keep => {
                // Still commit the operand resolution.
                for (slot, &resolved) in g.inputs.iter_mut().zip(ins.iter()) {
                    *slot = resolved;
                }
            }
            Action::Forward(target) => {
                repl.set(g.output, target);
                dead[gi as usize] = true;
                changed += 1;
            }
            Action::Become(new_kind, new_ins, new_arity) => {
                g.kind = new_kind;
                g.inputs = crate::ir::GateInputs::new(&new_ins[..new_arity]);
                changed += 1;
            }
        }
    }

    if changed == 0 {
        return 0;
    }
    repl.apply(netlist);
    retain_live(netlist, &dead);
    changed
}

/// Read-only context a rule can consult.
struct Ctx<'a> {
    netlist: &'a Netlist,
    driver: &'a [u32],
    dead: &'a [bool],
    reads: &'a [u32],
    full: bool,
}

impl Ctx<'_> {
    /// The live gate driving `net`, if any.
    fn driver_of(&self, net: NetId) -> Option<&crate::ir::Gate> {
        let di = self.driver[net.index()];
        if di == NO_DRIVER || self.dead[di as usize] {
            return None;
        }
        Some(&self.netlist.gates[di as usize])
    }

    /// `Some(x)` when `net` is (or is driven by) the complement of `x`.
    fn complement_of(&self, net: NetId) -> Option<NetId> {
        match net {
            NetId::CONST0 => Some(NetId::CONST1),
            NetId::CONST1 => Some(NetId::CONST0),
            _ => {
                let g = self.driver_of(net)?;
                (g.kind == GateKind::Not).then(|| g.inputs[0])
            }
        }
    }

    /// Whether `net` has exactly one reader (the gate being rewritten).
    fn single_use(&self, net: NetId) -> bool {
        self.reads[net.index()] <= 1
    }
}

fn rewrite_gate(ctx: &Ctx<'_>, kind: GateKind, ins: &[NetId]) -> Action {
    use GateKind::*;
    let c0 = NetId::CONST0;
    let c1 = NetId::CONST1;
    match kind {
        Buf => Action::Forward(ins[0]),
        Not => {
            let a = ins[0];
            if a == c0 {
                return Action::Forward(c1);
            }
            if a == c1 {
                return Action::Forward(c0);
            }
            if let Some(g) = ctx.driver_of(a) {
                match g.kind {
                    // Double-inverter collapse.
                    Not => return Action::Forward(g.inputs[0]),
                    // Inverter fusion: NOT(AND) → NAND etc., when the
                    // producer feeds only this inverter.
                    And | Or | Xor | Nand | Nor | Xnor if ctx.full && ctx.single_use(a) => {
                        let fused = match g.kind {
                            And => Nand,
                            Or => Nor,
                            Xor => Xnor,
                            Nand => And,
                            Nor => Or,
                            Xnor => Xor,
                            _ => unreachable!(),
                        };
                        return Action::Become(fused, [g.inputs[0], g.inputs[1], c0], 2);
                    }
                    _ => {}
                }
            }
            Action::Keep
        }
        And | Or | Nand | Nor | Xor | Xnor => rewrite_binary(ctx, kind, ins[0], ins[1]),
        Mux => rewrite_mux(ctx, ins[0], ins[1], ins[2]),
    }
}

fn rewrite_binary(ctx: &Ctx<'_>, kind: GateKind, a: NetId, b: NetId) -> Action {
    use GateKind::*;
    let c0 = NetId::CONST0;
    let c1 = NetId::CONST1;
    let not_of = |x: NetId| Action::Become(Not, [x, c0, c0], 1);

    // Equal-operand collapse.
    if a == b {
        return match kind {
            And | Or => Action::Forward(a),
            Xor => Action::Forward(c0),
            Xnor => Action::Forward(c1),
            Nand | Nor => not_of(a),
            _ => unreachable!(),
        };
    }
    // Identity / annihilator absorption. Normalize "constant on one
    // side" to (x, konst).
    let (x, konst) = if a == c0 || a == c1 {
        (b, a)
    } else if b == c0 || b == c1 {
        (a, b)
    } else {
        // Complement detection (full set): a op NOT(a).
        if ctx.full {
            let complementary = ctx.complement_of(a) == Some(b) || ctx.complement_of(b) == Some(a);
            if complementary {
                return match kind {
                    And | Nor => Action::Forward(c0),
                    Or | Nand | Xor => Action::Forward(c1),
                    Xnor => Action::Forward(c0),
                    _ => unreachable!(),
                };
            }
            // Inverter absorption into XOR/XNOR: the parity chain
            // absorbs a NOT by flipping kind.
            if matches!(kind, Xor | Xnor) {
                for (inv, other) in [(a, b), (b, a)] {
                    if let Some(orig) = ctx.complement_of(inv) {
                        if !inv.is_const() && ctx.single_use(inv) {
                            let flipped = if kind == Xor { Xnor } else { Xor };
                            return Action::Become(flipped, [orig, other, c0], 2);
                        }
                    }
                }
                // XOR-chain cancellation: XOR(a, XOR(a, b)) → b.
                if kind == Xor {
                    for (chain, other) in [(a, b), (b, a)] {
                        if let Some(g) = ctx.driver_of(chain) {
                            if g.kind == Xor {
                                if g.inputs[0] == other {
                                    return Action::Forward(g.inputs[1]);
                                }
                                if g.inputs[1] == other {
                                    return Action::Forward(g.inputs[0]);
                                }
                            }
                        }
                    }
                }
            }
        }
        return Action::Keep;
    };
    let konst_is_one = konst == c1;
    match (kind, konst_is_one) {
        (And, false) => Action::Forward(c0),
        (And, true) => Action::Forward(x),
        (Or, false) => Action::Forward(x),
        (Or, true) => Action::Forward(c1),
        (Nand, false) => Action::Forward(c1),
        (Nand, true) => not_of(x),
        (Nor, false) => not_of(x),
        (Nor, true) => Action::Forward(c0),
        (Xor, false) => Action::Forward(x),
        (Xor, true) => not_of(x),
        (Xnor, false) => not_of(x),
        (Xnor, true) => Action::Forward(x),
        _ => unreachable!(),
    }
}

fn rewrite_mux(ctx: &Ctx<'_>, s: NetId, a: NetId, b: NetId) -> Action {
    use GateKind::*;
    let c0 = NetId::CONST0;
    let c1 = NetId::CONST1;
    if s == c1 {
        return Action::Forward(a);
    }
    if s == c0 {
        return Action::Forward(b);
    }
    if a == b {
        return Action::Forward(a);
    }
    if a == c1 && b == c0 {
        return Action::Forward(s);
    }
    if a == c0 && b == c1 {
        return Action::Become(Not, [s, c0, c0], 1);
    }
    // Constant-branch strength reduction to a 2-input cell.
    if b == c0 {
        return Action::Become(And, [s, a, c0], 2);
    }
    if a == c1 {
        return Action::Become(Or, [s, b, c0], 2);
    }
    // sel ? a : a-or-s shortcuts: MUX(s, a, s) = s AND a; MUX(s, s, b) =
    // s OR b — `s` selects itself.
    if b == s {
        return Action::Become(And, [s, a, c0], 2);
    }
    if a == s {
        return Action::Become(Or, [s, b, c0], 2);
    }
    // Select-inversion branch swap (full set): MUX(NOT(t), a, b) →
    // MUX(t, b, a). Sound regardless of the inverter's other readers;
    // DCE reaps it once unused.
    if ctx.full {
        if let Some(t) = ctx.complement_of(s) {
            if !s.is_const() {
                return Action::Become(Mux, [t, b, a], 3);
            }
        }
    }
    Action::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Netlist;

    fn single_out(n: &Netlist) -> NetId {
        n.port("y").unwrap().bits[0]
    }

    #[test]
    fn buffers_forward_and_double_inverters_collapse() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let n1 = n.add_gate(GateKind::Not, [a]);
        let n2 = n.add_gate(GateKind::Not, [n1]);
        let b = n.add_gate(GateKind::Buf, [n2]);
        n.add_output_port("y", vec![b]);
        run_basic(&mut n);
        assert!(n.validate().is_ok());
        assert_eq!(single_out(&n), a);
    }

    #[test]
    fn identity_and_annihilator_rules_fire() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let and1 = n.add_gate(GateKind::And, [a, NetId::CONST1]); // → a
        let or0 = n.add_gate(GateKind::Or, [and1, NetId::CONST0]); // → a
        let xor1 = n.add_gate(GateKind::Xor, [or0, NetId::CONST1]); // → NOT(a)
        n.add_output_port("y", vec![xor1]);
        let changed = run_basic(&mut n);
        assert!(changed >= 3);
        assert!(n.validate().is_ok());
        // Everything reduced to a single NOT(a).
        let live: Vec<_> = n
            .gates()
            .iter()
            .filter(|g| g.output == single_out(&n))
            .collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].kind, GateKind::Not);
        assert_eq!(live[0].inputs[0], a);
    }

    #[test]
    fn mux_shortcuts_reduce_to_two_input_cells() {
        let mut n = Netlist::new("t");
        let s = n.add_input_port("s", 1)[0];
        let a = n.add_input_port("a", 1)[0];
        let m = n.add_gate(GateKind::Mux, [s, a, NetId::CONST0]);
        n.add_output_port("y", vec![m]);
        run_basic(&mut n);
        assert_eq!(n.gates()[0].kind, GateKind::And);
        assert_eq!(&n.gates()[0].inputs[..], &[s, a]);
    }

    #[test]
    fn full_set_fuses_single_use_inverters() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let and = n.add_gate(GateKind::And, [a, b]);
        let not = n.add_gate(GateKind::Not, [and]);
        n.add_output_port("y", vec![not]);
        let changed = run_full(&mut n);
        assert!(changed >= 1);
        // The inverter became a NAND; the AND is now dead (DCE's job).
        let g = n
            .gates()
            .iter()
            .find(|g| g.output == single_out(&n))
            .unwrap();
        assert_eq!(g.kind, GateKind::Nand);
        assert_eq!(&g.inputs[..], &[a, b]);
    }

    #[test]
    fn full_set_cancels_xor_chains() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x1 = n.add_gate(GateKind::Xor, [a, b]);
        let x2 = n.add_gate(GateKind::Xor, [a, x1]); // a ^ (a ^ b) = b
        n.add_output_port("y", vec![x2]);
        run_full(&mut n);
        assert_eq!(single_out(&n), b);
    }

    #[test]
    fn basic_set_leaves_fusion_patterns_alone() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let and = n.add_gate(GateKind::And, [a, b]);
        let not = n.add_gate(GateKind::Not, [and]);
        n.add_output_port("y", vec![not]);
        run_basic(&mut n);
        assert_eq!(n.gates().len(), 2, "fusion is an O2 rule");
    }
}
