//! Cut sweeping: exact functional merging and resynthesis over small
//! cones.
//!
//! Structural hashing ([`super::cse`]) only merges gates that look the
//! same; this pass merges gates that *compute* the same. Each gate gets
//! one cut — the union of its operands' cuts while it stays within
//! [`MAX_LEAVES`] leaves, else the gate's own output — and the exact
//! truth table of its function over those leaves (at most `2^6 = 64`
//! rows, one `u64`). Tables are canonicalized by support reduction:
//! variables the function does not depend on are dropped, so `a & (a |
//! b)` reduces to the projection of `a` and absorption laws fall out
//! for free. Then, in one topological walk:
//!
//! - a `(leaves, table)` pair already interned forwards the gate to the
//!   first net that computed it (functional CSE — sound because both
//!   nets compute the identical function of identical nets);
//! - constants and projections forward to `CONST0`/`CONST1`/the leaf
//!   itself (the map is seeded with them);
//! - a cone whose reduced function fits a *single* library cell is
//!   rewritten in place to that cell over the cut leaves (`NOT`,
//!   any 2-input cell, inhibitions via an existing complement net, or a
//!   `MUX` for 3-leaf select functions), bypassing the interior cone,
//!   which the DCE pass then reaps if nothing else reads it.
//!
//! Everything is verified exactly at the truth-table level — no
//! sampling, no SAT — so the pass can never merge two nets that differ
//! on any assignment.

use std::collections::HashMap;

use crate::ir::{GateInputs, GateKind, NetId, Netlist, NO_DRIVER};

use super::{retain_live, topo_gate_order, Replacer};

/// Cut size bound: 6 leaves = 64-row truth table = one `u64`.
const MAX_LEAVES: usize = 6;

/// Truth-table pattern of variable `j` (replicated to 64 bits).
const VAR: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// One net's cut: sorted leaf nets plus the function's truth table over
/// them, replicated to fill the `u64` (so bitwise ops and comparisons
/// work at any leaf count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Cut {
    leaves: [NetId; MAX_LEAVES],
    len: u8,
    table: u64,
}

impl Cut {
    fn leaf(net: NetId) -> Self {
        let mut leaves = [NetId::CONST0; MAX_LEAVES];
        leaves[0] = net;
        Self {
            leaves,
            len: 1,
            table: VAR[0],
        }
    }

    fn constant(v: bool) -> Self {
        Self {
            leaves: [NetId::CONST0; MAX_LEAVES],
            len: 0,
            table: if v { u64::MAX } else { 0 },
        }
    }

    fn leaves(&self) -> &[NetId] {
        &self.leaves[..self.len as usize]
    }
}

/// Replicates the low `2^vars` bits of `table` to fill 64 bits.
fn replicate(table: u64, vars: usize) -> u64 {
    let mut width = 1u32 << vars;
    let mut t = if width >= 64 {
        return table;
    } else {
        table & ((1u64 << width) - 1)
    };
    while width < 64 {
        t |= t << width;
        width *= 2;
    }
    t
}

/// Re-expresses `table` (over `old` leaves) over the superset `new`.
fn expand(table: u64, old: &[NetId], new: &[NetId]) -> u64 {
    if old.len() == new.len() {
        return table;
    }
    let mut pos = [0usize; MAX_LEAVES];
    for (i, l) in old.iter().enumerate() {
        pos[i] = new.iter().position(|x| x == l).expect("old ⊆ new");
    }
    let rows = 1u64 << new.len();
    let mut out = 0u64;
    for a in 0..rows {
        let mut idx = 0usize;
        for (i, _) in old.iter().enumerate() {
            if a >> pos[i] & 1 == 1 {
                idx |= 1 << i;
            }
        }
        if table >> idx & 1 == 1 {
            out |= 1 << a;
        }
    }
    replicate(out, new.len())
}

/// Drops every variable the function does not depend on, compacting the
/// table. Returns the canonical cut.
fn reduce_support(mut cut: Cut) -> Cut {
    let mut j = 0usize;
    while j < cut.len as usize {
        let shift = 1u32 << j;
        let cof1 = (cut.table & VAR[j]) >> shift;
        let cof0 = cut.table & !VAR[j];
        if cof1 != cof0 {
            j += 1;
            continue;
        }
        // Independent of variable j: rebuild the table without it.
        let new_vars = cut.len as usize - 1;
        let rows = 1u64 << new_vars;
        let mut out = 0u64;
        for a in 0..rows {
            let low = a & ((1u64 << j) - 1);
            let high = (a >> j) << (j + 1);
            if cut.table >> (high | low) & 1 == 1 {
                out |= 1 << a;
            }
        }
        cut.table = replicate(out, new_vars);
        for i in j..new_vars {
            cut.leaves[i] = cut.leaves[i + 1];
        }
        cut.leaves[new_vars] = NetId::CONST0;
        cut.len = new_vars as u8;
        // Re-check the same position (a new variable shifted into it).
    }
    cut
}

/// Applies `kind`'s boolean function to operand tables (all already over
/// one shared leaf order).
fn apply_kind(kind: GateKind, t: &[u64]) -> u64 {
    use GateKind::*;
    match kind {
        Buf => t[0],
        Not => !t[0],
        And => t[0] & t[1],
        Or => t[0] | t[1],
        Nand => !(t[0] & t[1]),
        Nor => !(t[0] | t[1]),
        Xor => t[0] ^ t[1],
        Xnor => !(t[0] ^ t[1]),
        Mux => (t[0] & t[1]) | (!t[0] & t[2]),
    }
}

/// Runs one cut-sweeping pass. Returns the number of changes (gates
/// forwarded to an equivalent net plus in-place resyntheses).
pub(super) fn run(netlist: &mut Netlist) -> usize {
    let order = topo_gate_order(netlist);
    // Forwarding a gate to an earlier-interned net is sound (can never
    // introduce a structural cycle) only when the order is a *true*
    // topological order. Lowered netlists are DAGs so this always holds;
    // on hostile cyclic input the DFS order is degraded, so bail out.
    {
        let driver = netlist.driver_index();
        let mut pos = vec![u32::MAX; netlist.gates.len()];
        for (p, &gi) in order.iter().enumerate() {
            pos[gi as usize] = p as u32;
        }
        for &gi in &order {
            for &inp in netlist.gates[gi as usize].inputs.iter() {
                let di = driver[inp.index()];
                if di != NO_DRIVER && pos[di as usize] >= pos[gi as usize] {
                    return 0;
                }
            }
        }
    }
    let mut cuts: Vec<Option<Cut>> = vec![None; netlist.net_count()];
    cuts[NetId::CONST0.index()] = Some(Cut::constant(false));
    cuts[NetId::CONST1.index()] = Some(Cut::constant(true));

    let mut func: HashMap<Cut, NetId> = HashMap::with_capacity(netlist.gates.len() * 2);
    func.insert(Cut::constant(false), NetId::CONST0);
    func.insert(Cut::constant(true), NetId::CONST1);

    let mut repl = Replacer::identity(netlist.net_count());
    let mut dead = vec![false; netlist.gates.len()];
    let mut changed = 0usize;

    for &gi in &order {
        // Resolve operands through this pass's replacements and commit.
        let arity = netlist.gates[gi as usize].inputs.len();
        let mut ins = [NetId::CONST0; 3];
        for (slot, inp) in ins
            .iter_mut()
            .zip(netlist.gates[gi as usize].inputs.iter_mut())
        {
            *inp = repl.resolve(*inp);
            *slot = *inp;
        }
        let g = netlist.gates[gi as usize];

        // Seed self-cuts for leaf operands (inputs, key bits, dff state,
        // oversized cones) on first sight.
        for &inp in &ins[..arity] {
            if cuts[inp.index()].is_none() {
                let c = Cut::leaf(inp);
                cuts[inp.index()] = Some(c);
                func.entry(c).or_insert(inp);
            }
        }

        // Merge operand cuts; fall back to an opaque self-cut when the
        // union outgrows the bound.
        let cut = merge_cuts(g.kind, &ins[..arity], &cuts).map(reduce_support);
        let cut = match cut {
            Some(c) => c,
            None => {
                let c = Cut::leaf(g.output);
                cuts[g.output.index()] = Some(c);
                func.entry(c).or_insert(g.output);
                continue;
            }
        };

        if let Some(&rep) = func.get(&cut) {
            // Another net already computes exactly this function of
            // exactly these nets.
            repl.set(g.output, rep);
            dead[gi as usize] = true;
            changed += 1;
            continue;
        }

        // Single-cell resynthesis over the cut leaves.
        if let Some((kind, operands, n)) = resynthesize(&cut, &func) {
            let g = &mut netlist.gates[gi as usize];
            if g.kind != kind || g.inputs[..] != operands[..n] {
                g.kind = kind;
                g.inputs = GateInputs::new(&operands[..n]);
                changed += 1;
            }
        }

        cuts[g.output.index()] = Some(cut);
        func.insert(cut, g.output);
    }

    repl.apply(netlist);
    retain_live(netlist, &dead);
    changed
}

/// Union of the operands' stored cuts plus the gate function over the
/// union leaves, or `None` when the union exceeds [`MAX_LEAVES`].
fn merge_cuts(kind: GateKind, ins: &[NetId], cuts: &[Option<Cut>]) -> Option<Cut> {
    let mut union: Vec<NetId> = Vec::with_capacity(MAX_LEAVES);
    for &inp in ins {
        let c = cuts[inp.index()].as_ref().expect("operand cut seeded");
        for &l in c.leaves() {
            if !union.contains(&l) {
                union.push(l);
            }
        }
    }
    if union.len() > MAX_LEAVES {
        return None;
    }
    union.sort();
    let mut tables = [0u64; 3];
    for (slot, &inp) in tables.iter_mut().zip(ins.iter()) {
        let c = cuts[inp.index()].as_ref().expect("operand cut seeded");
        *slot = expand(c.table, c.leaves(), &union);
    }
    let mut leaves = [NetId::CONST0; MAX_LEAVES];
    leaves[..union.len()].copy_from_slice(&union);
    Some(Cut {
        leaves,
        len: union.len() as u8,
        table: apply_kind(kind, &tables[..ins.len().max(1)]),
    })
}

/// A single library cell implementing `cut`'s function directly over its
/// leaves, if one exists: `(kind, operands, operand count)`.
///
/// Inhibition functions (`a & !b` and duals) are mapped only when a net
/// computing the needed complement is already interned — the pass never
/// allocates gates or nets.
fn resynthesize(cut: &Cut, func: &HashMap<Cut, NetId>) -> Option<(GateKind, [NetId; 3], usize)> {
    use GateKind::*;
    let ls = cut.leaves();
    match ls.len() {
        1 => {
            // Projections/constants were caught by the functional map;
            // the only remaining 1-support function is the complement.
            debug_assert_eq!(cut.table, !VAR[0]);
            Some((Not, [ls[0], NetId::CONST0, NetId::CONST0], 1))
        }
        2 => {
            let (a, b) = (VAR[0], VAR[1]);
            let two_in = |kind: GateKind| Some((kind, [ls[0], ls[1], NetId::CONST0], 2));
            match cut.table {
                t if t == a & b => two_in(And),
                t if t == a | b => two_in(Or),
                t if t == !(a & b) => two_in(Nand),
                t if t == !(a | b) => two_in(Nor),
                t if t == a ^ b => two_in(Xor),
                t if t == !(a ^ b) => two_in(Xnor),
                // Inhibition / implication: need an existing complement.
                t if t == a & !b => inhibition(And, ls[0], ls[1], func),
                t if t == !a & b => inhibition(And, ls[1], ls[0], func),
                t if t == a | !b => inhibition(Or, ls[0], ls[1], func),
                t if t == !a | b => inhibition(Or, ls[1], ls[0], func),
                _ => None,
            }
        }
        3 => {
            // MUX recognition: table == sel ? x : y over some assignment
            // of the three leaves.
            for sel in 0..3usize {
                for (x, y) in [(0usize, 1usize, 2usize), (0, 2, 1), (1, 2, 0)]
                    .into_iter()
                    .filter_map(|(p, q, r)| {
                        if p == sel {
                            Some((q, r))
                        } else if q == sel {
                            Some((p, r))
                        } else if r == sel {
                            Some((p, q))
                        } else {
                            None
                        }
                    })
                    .flat_map(|(p, q)| [(p, q), (q, p)])
                {
                    let t = (VAR[sel] & VAR[x]) | (!VAR[sel] & VAR[y]);
                    if cut.table == t {
                        return Some((Mux, [ls[sel], ls[x], ls[y]], 3));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// `keep op !inv`, if a net computing `!inv` is interned.
fn inhibition(
    kind: GateKind,
    keep: NetId,
    inv: NetId,
    func: &HashMap<Cut, NetId>,
) -> Option<(GateKind, [NetId; 3], usize)> {
    let mut want = Cut::leaf(inv);
    want.table = !want.table;
    let not_net = *func.get(&want)?;
    Some((kind, [keep, not_net, NetId::CONST0], 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorption_falls_out_of_support_reduction() {
        // a & (a | b) == a
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let or = n.add_gate(GateKind::Or, [a, b]);
        let and = n.add_gate(GateKind::And, [a, or]);
        n.add_output_port("y", vec![and]);
        let changed = run(&mut n);
        assert!(changed >= 1);
        assert!(n.validate().is_ok());
        assert_eq!(n.port("y").unwrap().bits[0], a);
    }

    #[test]
    fn functionally_equal_structures_merge() {
        // Distribution: a&b | a&c == a & (b|c).
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let c = n.add_input_port("c", 1)[0];
        let ab = n.add_gate(GateKind::And, [a, b]);
        let ac = n.add_gate(GateKind::And, [a, c]);
        let sum = n.add_gate(GateKind::Or, [ab, ac]);
        let bc = n.add_gate(GateKind::Or, [b, c]);
        let flat = n.add_gate(GateKind::And, [a, bc]);
        n.add_output_port("y", vec![sum]);
        n.add_output_port("z", vec![flat]);
        run(&mut n);
        assert!(n.validate().is_ok());
        assert_eq!(
            n.port("y").unwrap().bits[0],
            n.port("z").unwrap().bits[0],
            "both cones compute a & (b|c)"
        );
    }

    #[test]
    fn two_gate_cones_resynthesize_to_one_cell() {
        // NOT(a) AND NOT(b) == NOR(a, b) — needs resynthesis, the
        // operands' inverters are shared so rewrite-fusion won't fire.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let na = n.add_gate(GateKind::Not, [a]);
        let nb = n.add_gate(GateKind::Not, [b]);
        let and = n.add_gate(GateKind::And, [na, nb]);
        n.add_output_port("y", vec![and]);
        n.add_output_port("p", vec![na]); // keep inverters multi-use
        n.add_output_port("q", vec![nb]);
        run(&mut n);
        assert!(n.validate().is_ok());
        let g = n
            .gates()
            .iter()
            .find(|g| g.output == n.port("y").unwrap().bits[0])
            .unwrap();
        assert_eq!(g.kind, GateKind::Nor);
        assert_eq!(&g.inputs[..], &[a, b]);
    }

    #[test]
    fn mux_recognition_rebuilds_and_or_selects() {
        // (s & x) | (!s & y) == MUX(s, x, y).
        let mut n = Netlist::new("t");
        let s = n.add_input_port("s", 1)[0];
        let x = n.add_input_port("x", 1)[0];
        let y = n.add_input_port("y", 1)[0];
        let ns = n.add_gate(GateKind::Not, [s]);
        let sx = n.add_gate(GateKind::And, [s, x]);
        let nsy = n.add_gate(GateKind::And, [ns, y]);
        let or = n.add_gate(GateKind::Or, [sx, nsy]);
        n.add_output_port("o", vec![or]);
        n.add_output_port("k", vec![ns]);
        run(&mut n);
        assert!(n.validate().is_ok());
        let g = n
            .gates()
            .iter()
            .find(|g| g.output == n.port("o").unwrap().bits[0])
            .unwrap();
        assert_eq!(g.kind, GateKind::Mux);
        assert_eq!(&g.inputs[..], &[s, x, y]);
    }

    #[test]
    fn table_plumbing_round_trips() {
        let a = NetId(10);
        let b = NetId(11);
        let c = NetId(12);
        // f(a) = a over [a], expanded to [a,b,c], is still VAR of a's slot.
        let t = expand(VAR[0], &[a], &[a, b, c]);
        assert_eq!(t, VAR[0]);
        let t = expand(VAR[0], &[b], &[a, b, c]);
        assert_eq!(t, VAR[1]);
        // Support reduction strips the padding variable back out.
        let mut cut = Cut {
            leaves: [a, b, c, NetId::CONST0, NetId::CONST0, NetId::CONST0],
            len: 3,
            table: VAR[1],
        };
        cut = reduce_support(cut);
        assert_eq!(cut.leaves(), &[b]);
        assert_eq!(cut.table, VAR[0]);
    }
}
