//! Binaryen-style optimization pass pipeline over the gate IR.
//!
//! One IR, many small passes, validation between: every pass is a
//! self-contained rewrite of a [`Netlist`] that preserves the observable
//! function (outputs and flip-flop next-state as functions of inputs,
//! key bits, and current state) for *every* key value — key bits are
//! ordinary input nets, so sound boolean optimization can never
//! specialize a locked design to one key.
//!
//! The pipeline is driven to a fixed point by [`optimize`]: each round
//! runs the level's pass list in order and the loop stops when a full
//! round changes nothing. After every pass the netlist is re-validated
//! ([`Netlist::validate`]), the discipline binaryen applies between its
//! passes — an invariant violation is a pass bug and panics immediately
//! rather than corrupting downstream consumers.
//!
//! Passes (see the per-pass modules for the exact rule sets):
//!
//! - [`const_fold`] — propagates tied-0/1 nets through
//!   [`GateKind::eval`]'s truth tables; gates whose inputs are all
//!   constant fold to `CONST0`/`CONST1`.
//! - [`rewrite`] — local strength reduction: buffer forwarding,
//!   double-inverter collapse, identity/annihilator absorption
//!   (`a&1 = a`, `a|1 = 1`, `a^a = 0`, MUX with constant or equal
//!   branches, ...), and at `O2` inverter-fusion rules that merge a
//!   single-use inverter into its consumer (`NOT(AND) → NAND`,
//!   `XOR(NOT a, b) → XNOR(a, b)`, MUX select-inversion branch swap)
//!   plus XOR-chain cancellation (`a ^ (a ^ b) → b`).
//! - [`cse`] — structural hashing: hash-cons on `(kind, operands)` with
//!   commutative operands sorted, so structurally identical gates share
//!   one output net.
//! - [`cut_sweep`] (`O2` only) — exact functional merging over ≤6-leaf
//!   cuts: per-net truth tables with support reduction, so absorption
//!   laws, functionally-duplicate cones, and single-cell resyntheses
//!   (`NOT(a)·NOT(b) → NOR`, AND/OR select networks → `MUX`) all fall
//!   out of one truth-table hash.
//! - [`dce`] — dead-gate elimination over the CSR
//!   [`FanoutIndex`](crate::ir::FanoutIndex):
//!   worklist removal of gates with no path to an output port or
//!   flip-flop data pin.
//!
//! Telemetry: when observability is enabled ([`mlrl_obs::enabled`]) the
//! driver wraps the whole run in a `phase.opt` span, each pass in an
//! `opt.pass.<name>` span, and publishes `opt.gates_removed`,
//! `opt.iterations`, and per-pass `opt.pass.<name>.removed` counters —
//! the source of `mlrl report`'s optimizer row.

mod const_fold;
mod cse;
mod cut_sweep;
mod dce;
mod rewrite;

use crate::ir::{GateKind, NetId, Netlist, NO_DRIVER};

/// Optimization effort level — the campaign axis (`opt_level = o2` in a
/// spec file, `--opt-level o2` on the CLI).
///
/// - `O0` (default): the pipeline is a no-op; canonical byte streams and
///   cache keys are exactly the pre-optimizer ones.
/// - `O1`: constant folding, basic rewrites, dead-gate elimination.
/// - `O2`: `O1` plus structural hashing (CSE) and the fusion rewrite
///   set, run to a joint fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optimization (the historical lowering, byte-for-byte).
    #[default]
    O0,
    /// Constant folding + basic rewrites + dead-gate elimination.
    O1,
    /// `O1` plus structural hashing, inverter-fusion rewrites, and
    /// truth-table cut sweeping.
    O2,
}

impl OptLevel {
    /// Every level, in increasing effort order. The single source of the
    /// valid-token list in parse errors.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// Spec/CLI token of this level.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "o0",
            OptLevel::O1 => "o1",
            OptLevel::O2 => "o2",
        }
    }

    /// Parses a spec/CLI token (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a message listing every valid level token.
    pub fn parse(token: &str) -> Result<Self, String> {
        let lower = token.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|l| l.name() == lower)
            .ok_or_else(|| {
                let expected: Vec<&str> = Self::ALL.iter().map(|l| l.name()).collect();
                format!(
                    "unknown opt level `{token}` (expected one of: {})",
                    expected.join(", ")
                )
            })
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`optimize`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Gate count before the pipeline ran.
    pub gates_before: usize,
    /// Gate count after the pipeline converged.
    pub gates_after: usize,
    /// Fixed-point rounds executed (including the final no-change round).
    pub iterations: usize,
}

impl OptStats {
    /// Gates removed by the run.
    pub fn removed(&self) -> usize {
        self.gates_before.saturating_sub(self.gates_after)
    }

    /// Fraction of gates removed, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            self.removed() as f64 / self.gates_before as f64
        }
    }
}

/// One registered pass: display/telemetry names plus the entry point,
/// which returns the number of changes it made (rewrites + removals).
struct Pass {
    name: &'static str,
    span: &'static str,
    counter: &'static str,
    run: fn(&mut Netlist) -> usize,
}

const CONST_FOLD: Pass = Pass {
    name: "const_fold",
    span: "opt.pass.const_fold",
    counter: "opt.pass.const_fold.removed",
    run: const_fold::run,
};
const REWRITE_BASIC: Pass = Pass {
    name: "rewrite",
    span: "opt.pass.rewrite",
    counter: "opt.pass.rewrite.removed",
    run: rewrite::run_basic,
};
const REWRITE_FULL: Pass = Pass {
    name: "rewrite",
    span: "opt.pass.rewrite",
    counter: "opt.pass.rewrite.removed",
    run: rewrite::run_full,
};
const CSE: Pass = Pass {
    name: "cse",
    span: "opt.pass.cse",
    counter: "opt.pass.cse.removed",
    run: cse::run,
};
const CUT_SWEEP: Pass = Pass {
    name: "cut_sweep",
    span: "opt.pass.cut_sweep",
    counter: "opt.pass.cut_sweep.removed",
    run: cut_sweep::run,
};
const DCE: Pass = Pass {
    name: "dce",
    span: "opt.pass.dce",
    counter: "opt.pass.dce.removed",
    run: dce::run,
};

/// Hard cap on fixed-point rounds. Every pass strictly reduces a
/// well-founded measure (gate count, then total operand count, then
/// inverter count), so convergence is guaranteed; the cap is a backstop
/// against a pass bug turning into an infinite loop.
const MAX_ROUNDS: usize = 64;

/// Runs the `level`'s pass list over `netlist` to a fixed point.
///
/// The observable function is preserved for every input, state, and key
/// assignment; net ids of surviving logic are preserved (dead nets
/// simply become undriven, as [`Netlist::sweep`] leaves them).
///
/// # Panics
///
/// Panics if a pass breaks a structural invariant ([`Netlist::validate`]
/// fails) — that is a pass bug, never a property of the input netlist.
pub fn optimize(netlist: &mut Netlist, level: OptLevel) -> OptStats {
    let gates_before = netlist.gates.len();
    let passes: &[Pass] = match level {
        OptLevel::O0 => &[],
        OptLevel::O1 => &[CONST_FOLD, REWRITE_BASIC, DCE],
        OptLevel::O2 => &[CONST_FOLD, REWRITE_FULL, CSE, CUT_SWEEP, DCE],
    };
    if passes.is_empty() {
        return OptStats {
            gates_before,
            gates_after: gates_before,
            iterations: 0,
        };
    }

    let _phase = mlrl_obs::span("phase.opt");
    let mut iterations = 0;
    while iterations < MAX_ROUNDS {
        iterations += 1;
        let mut changed = 0usize;
        for pass in passes {
            let before = netlist.gates.len();
            let n = {
                let _s = mlrl_obs::span(pass.span);
                (pass.run)(netlist)
            };
            if let Err(e) = netlist.validate() {
                panic!("optimizer pass `{}` broke the netlist: {e}", pass.name);
            }
            if n > 0 {
                mlrl_obs::counter_add(pass.counter, (before - netlist.gates.len()) as u64);
            }
            changed += n;
        }
        if changed == 0 {
            break;
        }
    }

    let stats = OptStats {
        gates_before,
        gates_after: netlist.gates.len(),
        iterations,
    };
    mlrl_obs::counter_add("opt.gates_removed", stats.removed() as u64);
    mlrl_obs::counter_add("opt.iterations", iterations as u64);
    stats
}

// -- shared pass machinery ------------------------------------------------

/// Gate indices in dependency order: a gate appears after the drivers of
/// all its inputs. Iterative DFS over the dense driver index; a back
/// edge (combinational cycle — never produced by the lowerer, but the
/// passes must not hang on hostile input) is skipped, which degrades the
/// order locally without affecting soundness.
fn topo_gate_order(netlist: &Netlist) -> Vec<u32> {
    let driver = netlist.driver_index();
    // 0 = unvisited, 1 = on stack, 2 = emitted.
    let mut state = vec![0u8; netlist.gates.len()];
    let mut order = Vec::with_capacity(netlist.gates.len());
    let mut stack: Vec<(u32, u8)> = Vec::new();
    for root in 0..netlist.gates.len() as u32 {
        if state[root as usize] != 0 {
            continue;
        }
        state[root as usize] = 1;
        stack.push((root, 0));
        while let Some((gi, cursor)) = stack.last_mut() {
            let g = &netlist.gates[*gi as usize];
            if (*cursor as usize) < g.inputs.len() {
                let inp = g.inputs[*cursor as usize];
                *cursor += 1;
                let di = driver[inp.index()];
                if di != NO_DRIVER && state[di as usize] == 0 {
                    state[di as usize] = 1;
                    stack.push((di, 0));
                }
            } else {
                state[*gi as usize] = 2;
                order.push(*gi);
                stack.pop();
            }
        }
    }
    order
}

/// Use-site rewiring map: `old net -> replacement net`, resolved with
/// path compression so replacement chains (`a -> b -> c`) collapse in
/// one [`Replacer::apply`] sweep. Only *uses* are rewired (gate inputs,
/// flip-flop data pins, output-port bits); drivers keep their output
/// nets, so the single-driver invariant is untouched and dead drivers
/// fall to the DCE pass.
struct Replacer {
    map: Vec<NetId>,
    changed: bool,
}

impl Replacer {
    fn identity(net_count: usize) -> Self {
        Self {
            map: (0..net_count as u32).map(NetId).collect(),
            changed: false,
        }
    }

    /// Redirects every use of `old` to `new`.
    fn set(&mut self, old: NetId, new: NetId) {
        debug_assert_eq!(self.map[old.index()], old, "net replaced twice");
        self.map[old.index()] = new;
        self.changed = true;
    }

    /// Final target of `net`, compressing the chain walked.
    fn resolve(&mut self, net: NetId) -> NetId {
        let mut root = net;
        while self.map[root.index()] != root {
            root = self.map[root.index()];
        }
        let mut cur = net;
        while self.map[cur.index()] != cur {
            let next = self.map[cur.index()];
            self.map[cur.index()] = root;
            cur = next;
        }
        root
    }

    /// Rewires every use site in one sweep. No-op when nothing was
    /// [`Replacer::set`].
    fn apply(&mut self, netlist: &mut Netlist) {
        if !self.changed {
            return;
        }
        for g in &mut netlist.gates {
            for inp in g.inputs.iter_mut() {
                let mut root = *inp;
                while self.map[root.index()] != root {
                    root = self.map[root.index()];
                }
                *inp = root;
            }
        }
        for f in &mut netlist.dffs {
            let mut root = f.d;
            while self.map[root.index()] != root {
                root = self.map[root.index()];
            }
            f.d = root;
        }
        for p in &mut netlist.outputs {
            for b in &mut p.bits {
                let mut root = *b;
                while self.map[root.index()] != root {
                    root = self.map[root.index()];
                }
                *b = root;
            }
        }
    }
}

/// Drops the gates flagged in `dead` (indexed by gate position).
fn retain_live(netlist: &mut Netlist, dead: &[bool]) {
    let mut i = 0;
    netlist.gates.retain(|_| {
        let keep = !dead[i];
        i += 1;
        keep
    });
}

/// The constant net carrying `v`.
fn const_net(v: bool) -> NetId {
    if v {
        NetId::CONST1
    } else {
        NetId::CONST0
    }
}

/// True for kinds whose two operands commute (operand order is
/// canonicalized before structural hashing).
fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Gate;

    fn two_bit_adder() -> Netlist {
        // y = a ^ b with carry logic and some redundancy for the passes
        // to chew on.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x1 = n.add_gate(GateKind::Xor, [a, b]);
        let x2 = n.add_gate(GateKind::Xor, [a, b]); // CSE victim
        let buf = n.add_gate(GateKind::Buf, [x2]);
        let dead = n.add_gate(GateKind::And, [a, b]); // no reader
        let _ = dead;
        n.add_output_port("y", vec![x1]);
        n.add_output_port("z", vec![buf]);
        n
    }

    #[test]
    fn opt_level_tokens_round_trip_and_errors_list_levels() {
        for level in OptLevel::ALL {
            assert_eq!(OptLevel::parse(level.name()).unwrap(), level);
            assert_eq!(
                OptLevel::parse(&level.name().to_ascii_uppercase()).unwrap(),
                level
            );
        }
        let err = OptLevel::parse("os").unwrap_err();
        for level in OptLevel::ALL {
            assert!(
                err.contains(level.name()),
                "{err} should list {}",
                level.name()
            );
        }
    }

    #[test]
    fn o0_is_a_no_op() {
        let mut n = two_bit_adder();
        let before = n.clone();
        let stats = optimize(&mut n, OptLevel::O0);
        assert_eq!(stats.removed(), 0);
        assert_eq!(stats.iterations, 0);
        assert_eq!(n, before);
    }

    #[test]
    fn o2_reaches_a_fixed_point_and_shrinks_redundancy() {
        let mut n = two_bit_adder();
        let stats = optimize(&mut n, OptLevel::O2);
        assert!(n.validate().is_ok());
        // One XOR survives; the duplicate, the buffer, and the dead AND
        // all fold away.
        assert_eq!(n.gates().len(), 1);
        assert_eq!(stats.gates_after, 1);
        assert!(stats.iterations >= 2, "runs until a no-change round");
        // Both outputs now read the surviving XOR.
        let y = n.port("y").unwrap().bits[0];
        let z = n.port("z").unwrap().bits[0];
        assert_eq!(y, z);
    }

    #[test]
    fn topo_order_visits_drivers_first() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let x = n.add_gate(GateKind::Not, [a]);
        let y = n.add_gate(GateKind::And, [x, a]);
        n.add_output_port("y", vec![y]);
        // Force non-topological storage order: swap the two gates.
        n.gates.swap(0, 1);
        let order = topo_gate_order(&n);
        let pos = |out: NetId| {
            order
                .iter()
                .position(|&gi| n.gates[gi as usize].output == out)
                .unwrap()
        };
        assert!(pos(x) < pos(y));
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn replacer_compresses_chains() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let g1 = n.add_gate(GateKind::Buf, [a]);
        let g2 = n.add_gate(GateKind::Buf, [g1]);
        n.add_output_port("y", vec![g2]);
        let mut r = Replacer::identity(n.net_count());
        r.set(g1, a);
        r.set(g2, g1);
        assert_eq!(r.resolve(g2), a);
        r.apply(&mut n);
        assert_eq!(n.port("y").unwrap().bits[0], a);
        // Drivers are untouched; the two bufs are now dead but present.
        assert_eq!(n.gates().len(), 2);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn retain_live_drops_flagged_gates() {
        let mut n = two_bit_adder();
        let dead = vec![false, true, false, true];
        retain_live(&mut n, &dead);
        assert_eq!(n.gates().len(), 2);
        assert!(n.gates().iter().all(|g: &Gate| g.kind != GateKind::And));
    }
}
