//! Structural hashing (hash-consing / CSE): gates with the same kind
//! and operands share one output.
//!
//! A topological walk interns every gate under `(kind, operands)` with
//! commutative operands sorted; a gate whose key is already interned is
//! deleted and its uses rewired to the first occurrence's output. The
//! walk resolves operands through the replacements made earlier in the
//! same pass, so chains of duplicates (duplicated subtrees, not just
//! single gates) collapse in one run.

use std::collections::HashMap;

use crate::ir::{GateKind, NetId, Netlist};

use super::{commutative, retain_live, topo_gate_order, Replacer};

/// Runs one hash-consing sweep. Returns the number of gates merged away.
pub(super) fn run(netlist: &mut Netlist) -> usize {
    let order = topo_gate_order(netlist);
    let mut repl = Replacer::identity(netlist.net_count());
    let mut dead = vec![false; netlist.gates.len()];
    let mut table: HashMap<(GateKind, [NetId; 3]), NetId> =
        HashMap::with_capacity(netlist.gates.len());
    let mut merged = 0usize;

    for &gi in &order {
        let g = netlist.gates[gi as usize];
        let mut key = [NetId::CONST0; 3];
        for (slot, &inp) in key.iter_mut().zip(g.inputs.iter()) {
            *slot = repl.resolve(inp);
        }
        if commutative(g.kind) && key[1] < key[0] {
            key.swap(0, 1);
        }
        match table.entry((g.kind, key)) {
            std::collections::hash_map::Entry::Occupied(rep) => {
                repl.set(g.output, *rep.get());
                dead[gi as usize] = true;
                merged += 1;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(g.output);
            }
        }
    }

    if merged == 0 {
        return 0;
    }
    repl.apply(netlist);
    retain_live(netlist, &dead);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_subtrees_in_one_run() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        // Two copies of NOT(AND(a, b)), built independently.
        let and1 = n.add_gate(GateKind::And, [a, b]);
        let not1 = n.add_gate(GateKind::Not, [and1]);
        let and2 = n.add_gate(GateKind::And, [b, a]); // commuted operands
        let not2 = n.add_gate(GateKind::Not, [and2]);
        n.add_output_port("y", vec![not1]);
        n.add_output_port("z", vec![not2]);

        let merged = run(&mut n);
        assert_eq!(merged, 2, "duplicate AND and duplicate NOT both merge");
        assert!(n.validate().is_ok());
        assert_eq!(n.gates().len(), 2);
        assert_eq!(n.port("y").unwrap().bits[0], n.port("z").unwrap().bits[0]);
    }

    #[test]
    fn mux_operand_order_is_significant() {
        let mut n = Netlist::new("t");
        let s = n.add_input_port("s", 1)[0];
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let m1 = n.add_gate(GateKind::Mux, [s, a, b]);
        let m2 = n.add_gate(GateKind::Mux, [s, b, a]);
        n.add_output_port("y", vec![m1]);
        n.add_output_port("z", vec![m2]);
        assert_eq!(
            run(&mut n),
            0,
            "sel?a:b and sel?b:a are different functions"
        );
        assert_eq!(n.gates().len(), 2);
    }
}
