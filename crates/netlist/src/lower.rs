//! Bit-blasting lowering from RTL modules to gate-level netlists.
//!
//! This is the "synthesis" step of the paper's flow (Fig. 1): a designer
//! locks at RTL, synthesis lowers the design to gates, and the attacker
//! receives the gate-level netlist. The lowering is *bit-exact* with the RTL
//! simulator: every expression is computed on a 64-bit [`Lane`] with
//! wrapping semantics, and values are masked to the signal width only at
//! assignment — identical to `mlrl_rtl::sim`. Cross-level equivalence is
//! asserted by [`crate::equiv`] and the integration tests.
//!
//! Key-controlled ternaries survive lowering as MUX trees driven by the
//! netlist's dedicated key inputs, so RTL-locked designs stay locked (and
//! attackable) at gate level.

use std::collections::HashMap;

use mlrl_rtl::ast::{Expr, ExprId, Module, NetKind, PortDir, SeqStmt};
use mlrl_rtl::op::{BinaryOp, UnaryOp};

use crate::build::{Lane, NetlistBuilder};
use crate::error::{NetlistError, Result};
use crate::ir::Netlist;

/// Lowers a flat RTL module to a gate-level netlist.
///
/// Input ports, output ports, and the key inputs of the module map to
/// netlist ports of the same names and widths; `reg` signals become D
/// flip-flop words; `wire` signals disappear into the gate network.
///
/// # Errors
///
/// - [`NetlistError::Lower`] if the module still contains instances
///   (flatten first) or a signal lacks a driver.
/// - [`NetlistError::VariableExponent`] if `**` appears with a
///   non-constant exponent (real synthesis rejects this too).
/// - [`NetlistError::CombinationalCycle`] if continuous assignments form a
///   cycle.
///
/// # Examples
///
/// ```
/// use mlrl_rtl::parser::parse_verilog;
/// use mlrl_netlist::lower::lower_module;
///
/// let m = parse_verilog("
/// module t(a, b, y);
///   input [7:0] a, b;
///   output [7:0] y;
///   assign y = a + b;
/// endmodule")?;
/// let n = lower_module(&m)?;
/// assert!(n.validate().is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower_module(module: &Module) -> Result<Netlist> {
    Lowering::new(module)?.run()
}

struct Lowering<'m> {
    module: &'m Module,
    builder: NetlistBuilder,
    /// Signal name -> its current lane (masked to the signal width).
    lanes: HashMap<String, Lane>,
    /// Reg name -> state lane, for wiring next-state data at the end.
    reg_lanes: HashMap<String, Lane>,
    /// Memoized expression lowering (valid because every `Ident` lane is
    /// final before any expression reading it is lowered).
    memo: HashMap<ExprId, Lane>,
}

impl<'m> Lowering<'m> {
    fn new(module: &'m Module) -> Result<Self> {
        if !module.instances().is_empty() {
            return Err(NetlistError::Lower(format!(
                "module `{}` contains instances; flatten it first",
                module.name()
            )));
        }
        Ok(Self {
            module,
            builder: NetlistBuilder::new(Netlist::new(module.name())),
            lanes: HashMap::new(),
            reg_lanes: HashMap::new(),
            memo: HashMap::new(),
        })
    }

    fn run(mut self) -> Result<Netlist> {
        // Ports and registers first: they are the sources of every cone.
        for p in self.module.ports() {
            if p.dir == PortDir::Input {
                let lane = self.builder.input_lane(&p.name, p.width as usize);
                self.lanes.insert(p.name.clone(), lane);
            }
        }
        // Pre-allocate the full key so netlist key bit i is K[i].
        self.builder
            .reserve_key_bits(self.module.key_width() as usize);
        for n in self.module.nets() {
            if n.kind == NetKind::Reg {
                let lane = self.builder.dff_lane(n.width as usize);
                self.lanes.insert(n.name.clone(), lane);
                self.reg_lanes.insert(n.name.clone(), lane);
            }
        }
        // Output ports may also be driven as regs in always blocks; regs
        // above already claimed those names. Everything else gets its lane
        // from its continuous assignment below.

        // Continuous assignments in dependency order.
        for idx in levelize_assigns(self.module)? {
            let assign = &self.module.assigns()[idx];
            let lane = self.lower_expr(assign.rhs)?;
            let width = self
                .module
                .signal_width(&assign.lhs)
                .ok_or_else(|| NetlistError::Lower(format!("unknown signal `{}`", assign.lhs)))?;
            let masked = self.builder.mask_lane(lane, width as usize);
            self.lanes.insert(assign.lhs.clone(), masked);
        }

        // Clocked processes: compute next-state lanes with last-write-wins
        // and pre-edge reads, exactly like the RTL simulator's two-phase
        // commit.
        let mut next: HashMap<String, Lane> = self.reg_lanes.clone();
        for block in self.module.always_blocks() {
            let body = block.body.clone();
            self.walk_stmts(&body, &mut next)?;
        }
        for (name, next_lane) in next {
            let q_lane = self.reg_lanes[&name];
            let width = self
                .module
                .signal_width(&name)
                .ok_or_else(|| NetlistError::Lower(format!("unknown reg `{name}`")))?
                as usize;
            let masked = self.builder.mask_lane(next_lane, width);
            self.builder.connect_dff_lane(q_lane, masked, width);
        }

        // Output ports read their signal lane.
        for p in self.module.ports() {
            if p.dir == PortDir::Output {
                let lane = self.lanes.get(&p.name).copied().ok_or_else(|| {
                    NetlistError::Lower(format!("output `{}` has no driver", p.name))
                })?;
                self.builder
                    .output_from_lane(&p.name, lane, p.width as usize);
            }
        }
        let mut netlist = self.builder.finish();
        // Dead-logic sweep, as synthesis would do: gates above the masked
        // signal widths have no observable fanout.
        netlist.sweep();
        netlist.validate()?;
        Ok(netlist)
    }

    fn walk_stmts(&mut self, stmts: &[SeqStmt], next: &mut HashMap<String, Lane>) -> Result<()> {
        for s in stmts {
            match s {
                SeqStmt::NonBlocking { lhs, rhs } => {
                    let lane = self.lower_expr(*rhs)?;
                    next.insert(lhs.clone(), lane);
                }
                SeqStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let cond_lane = self.lower_expr(*cond)?;
                    let c = self.builder.or_reduce(cond_lane);
                    let mut then_map = next.clone();
                    let mut else_map = next.clone();
                    self.walk_stmts(then_body, &mut then_map)?;
                    self.walk_stmts(else_body, &mut else_map)?;
                    let names: std::collections::BTreeSet<String> =
                        then_map.keys().chain(else_map.keys()).cloned().collect();
                    for name in names {
                        let q = self.reg_lanes.get(&name).copied().ok_or_else(|| {
                            NetlistError::Lower(format!(
                                "always block writes non-reg signal `{name}`"
                            ))
                        })?;
                        let t = then_map.get(&name).copied().unwrap_or(q);
                        let e = else_map.get(&name).copied().unwrap_or(q);
                        next.insert(name, self.builder.mux_lane(c, t, e));
                    }
                }
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, id: ExprId) -> Result<Lane> {
        if let Some(&lane) = self.memo.get(&id) {
            return Ok(lane);
        }
        let expr = self
            .module
            .expr(id)
            .map_err(|e| NetlistError::Lower(e.to_string()))?
            .clone();
        let lane = match expr {
            Expr::Const { value, width } => {
                let v = match width {
                    Some(w) if w < 64 => value & ((1u64 << w) - 1),
                    _ => value,
                };
                self.builder.const_lane(v)
            }
            Expr::Ident(name) => self
                .lanes
                .get(&name)
                .copied()
                .ok_or_else(|| NetlistError::Lower(format!("unknown signal `{name}`")))?,
            Expr::KeyBit(i) => self.builder.key_slice_lane(i, 1),
            Expr::KeySlice { lsb, width } => self.builder.key_slice_lane(lsb, width),
            Expr::Index { base, bit } => {
                let lane = self
                    .lanes
                    .get(&base)
                    .copied()
                    .ok_or_else(|| NetlistError::Lower(format!("unknown signal `{base}`")))?;
                // The simulator reads bit min(bit, 63) of the masked value.
                self.builder.bit_lane(lane.bit(bit.min(63) as usize))
            }
            Expr::Unary { op, arg } => {
                let a = self.lower_expr(arg)?;
                match op {
                    UnaryOp::Not => self.builder.not_lane(a),
                    UnaryOp::Neg => self.builder.neg(a),
                    UnaryOp::LNot => {
                        let any = self.builder.or_reduce(a);
                        let z = self.builder.not(any);
                        self.builder.bit_lane(z)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                self.lower_binary(op, a, b)?
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c_lane = self.lower_expr(cond)?;
                let c = self.builder.or_reduce(c_lane);
                let t = self.lower_expr(then_expr)?;
                let e = self.lower_expr(else_expr)?;
                self.builder.mux_lane(c, t, e)
            }
        };
        self.memo.insert(id, lane);
        Ok(lane)
    }

    fn lower_binary(&mut self, op: BinaryOp, a: Lane, b: Lane) -> Result<Lane> {
        let b_ = &mut self.builder;
        Ok(match op {
            BinaryOp::Add => b_.add(a, b),
            BinaryOp::Sub => b_.sub(a, b),
            BinaryOp::Mul => b_.mul(a, b),
            BinaryOp::Div => b_.divmod(a, b).0,
            BinaryOp::Mod => b_.divmod(a, b).1,
            BinaryOp::Pow => {
                let e = b_.lane_const(b).ok_or(NetlistError::VariableExponent)?;
                b_.pow_const(a, e)
            }
            BinaryOp::And => b_.and_lane(a, b),
            BinaryOp::Or => b_.or_lane(a, b),
            BinaryOp::Xor => b_.xor_lane(a, b),
            BinaryOp::Xnor => b_.xnor_lane(a, b),
            BinaryOp::Shl => b_.shl(a, b),
            BinaryOp::Shr => b_.shr(a, b),
            BinaryOp::Lt => {
                let bit = b_.lt(a, b);
                b_.bit_lane(bit)
            }
            BinaryOp::Gt => {
                let bit = b_.lt(b, a);
                b_.bit_lane(bit)
            }
            BinaryOp::Le => {
                let gt = b_.lt(b, a);
                let bit = b_.not(gt);
                b_.bit_lane(bit)
            }
            BinaryOp::Ge => {
                let lt = b_.lt(a, b);
                let bit = b_.not(lt);
                b_.bit_lane(bit)
            }
            BinaryOp::Eq => {
                let bit = b_.eq(a, b);
                b_.bit_lane(bit)
            }
            BinaryOp::Neq => {
                let e = b_.eq(a, b);
                let bit = b_.not(e);
                b_.bit_lane(bit)
            }
            BinaryOp::LAnd => {
                let x = b_.or_reduce(a);
                let y = b_.or_reduce(b);
                let bit = b_.and(x, y);
                b_.bit_lane(bit)
            }
            BinaryOp::LOr => {
                let x = b_.or_reduce(a);
                let y = b_.or_reduce(b);
                let bit = b_.or(x, y);
                b_.bit_lane(bit)
            }
        })
    }
}

/// Topologically orders continuous assignments (same discipline as the RTL
/// simulator: regs are state, not combinational dependencies).
fn levelize_assigns(module: &Module) -> Result<Vec<usize>> {
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, a) in module.assigns().iter().enumerate() {
        driver.insert(a.lhs.as_str(), i);
    }
    let regs: std::collections::HashSet<&str> = module
        .nets()
        .iter()
        .filter(|n| n.kind == NetKind::Reg)
        .map(|n| n.name.as_str())
        .collect();

    fn deps(module: &Module, id: ExprId, out: &mut Vec<String>) {
        if let Ok(expr) = module.expr(id) {
            match expr {
                Expr::Ident(name) => out.push(name.clone()),
                Expr::Index { base, .. } => out.push(base.clone()),
                _ => {}
            }
            for c in expr.children() {
                deps(module, c, out);
            }
        }
    }

    let n = module.assigns().len();
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(start, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                state[i] = 2;
                order.push(i);
                continue;
            }
            if state[i] == 2 {
                continue;
            }
            state[i] = 1;
            stack.push((i, true));
            let mut d = Vec::new();
            deps(module, module.assigns()[i].rhs, &mut d);
            for name in d {
                if regs.contains(name.as_str()) {
                    continue;
                }
                if let Some(&j) = driver.get(name.as_str()) {
                    match state[j] {
                        0 => stack.push((j, false)),
                        1 => {
                            return Err(NetlistError::CombinationalCycle(0));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetlistSimulator;
    use mlrl_rtl::parser::parse_verilog;
    use mlrl_rtl::sim::Simulator;

    fn cross_check(src: &str, inputs: &[(&str, &[u64])]) {
        let m = parse_verilog(src).unwrap();
        let n = lower_module(&m).unwrap();
        let mut rtl = Simulator::new(&m).unwrap();
        let mut gate = NetlistSimulator::new(&n).unwrap();
        let rounds = inputs.iter().map(|(_, vs)| vs.len()).max().unwrap_or(0);
        for r in 0..rounds {
            for (name, vs) in inputs {
                let v = vs[r.min(vs.len() - 1)];
                rtl.set_input(name, v).unwrap();
                gate.set_input(name, v).unwrap();
            }
            rtl.settle().unwrap();
            gate.settle().unwrap();
            for p in m.ports() {
                if p.dir == mlrl_rtl::ast::PortDir::Output {
                    assert_eq!(
                        rtl.get(&p.name).unwrap(),
                        gate.output(&p.name).unwrap(),
                        "port {} round {r}",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn arithmetic_chain_matches_rtl() {
        cross_check(
            "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n wire [7:0] w;\n assign w = a * b;\n assign y = w - a;\nendmodule",
            &[("a", &[0, 3, 255, 17]), ("b", &[0, 5, 255, 9])],
        );
    }

    #[test]
    fn mixed_width_carry_behaviour_matches() {
        // (a + b) >> 1 keeps the carry above 8 bits alive at 64-bit width in
        // the RTL simulator; the lowering must reproduce that.
        cross_check(
            "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n assign y = (a + b) >> 1;\nendmodule",
            &[("a", &[200, 255, 128]), ("b", &[100, 255, 128])],
        );
    }

    #[test]
    fn predicates_and_ternary_match() {
        cross_check(
            "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n assign y = (a > b) ? a % b : a ^ b;\nendmodule",
            &[("a", &[10, 0, 200, 7]), ("b", &[3, 0, 201, 7])],
        );
    }

    #[test]
    fn key_mux_lowered_netlist_obeys_key() {
        let m = parse_verilog(
            "module t(K, a, b, y);\n input [0:0] K;\n input [7:0] a, b;\n output [7:0] y;\n assign y = K[0] ? a + b : a - b;\nendmodule",
        )
        .unwrap();
        let n = lower_module(&m).unwrap();
        assert_eq!(n.key_width(), 1);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 10).unwrap();
        sim.set_input("b", 3).unwrap();
        sim.set_key(&[true]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 13);
        sim.set_key(&[false]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 7);
    }

    #[test]
    fn sequential_counter_matches_rtl() {
        let src = "module t(clk, en, q);\n input clk;\n input en;\n output [7:0] q;\n reg [7:0] cnt;\n assign q = cnt;\n always @(posedge clk) begin\n if (en) begin\n cnt <= cnt + 1;\n end\n end\nendmodule";
        let m = parse_verilog(src).unwrap();
        let n = lower_module(&m).unwrap();
        let mut rtl = Simulator::new(&m).unwrap();
        let mut gate = NetlistSimulator::new(&n).unwrap();
        rtl.set_input("en", 1).unwrap();
        gate.set_input("en", 1).unwrap();
        for _ in 0..5 {
            rtl.tick().unwrap();
            gate.tick().unwrap();
        }
        assert_eq!(rtl.get("q").unwrap(), 5);
        assert_eq!(gate.output("q").unwrap(), 5);
    }

    #[test]
    fn variable_exponent_is_rejected() {
        let m = parse_verilog(
            "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n assign y = a ** b;\nendmodule",
        )
        .unwrap();
        assert!(matches!(
            lower_module(&m),
            Err(NetlistError::VariableExponent)
        ));
    }

    #[test]
    fn constant_exponent_is_lowered() {
        cross_check(
            "module t(a, b, y);\n input [7:0] a, b;\n output [7:0] y;\n assign y = a ** 3 + b;\nendmodule",
            &[("a", &[0, 2, 5, 255]), ("b", &[1, 4, 9, 255])],
        );
    }

    #[test]
    fn unary_ops_match() {
        cross_check(
            "module t(a, y0, y1, y2);\n input [7:0] a;\n output [7:0] y0, y1, y2;\n assign y0 = ~a;\n assign y1 = -a;\n assign y2 = !a;\nendmodule",
            &[("a", &[0, 1, 128, 255])],
        );
    }

    #[test]
    fn division_and_shift_ops_match() {
        cross_check(
            "module t(a, b, y0, y1, y2);\n input [7:0] a, b;\n output [7:0] y0, y1, y2;\n assign y0 = a / b;\n assign y1 = a << b;\n assign y2 = a >> 2;\nendmodule",
            &[("a", &[0, 7, 255, 90]), ("b", &[0, 2, 9, 70])],
        );
    }
}
