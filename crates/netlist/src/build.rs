//! Word-level circuit builder over [`Netlist`].
//!
//! The RTL simulator evaluates every expression on full 64-bit values with
//! wrapping semantics and masks only when a value is assigned to a signal
//! (see `mlrl_rtl::sim`). To be *bit-exact* with it, the builder represents
//! every intermediate value as a [`Lane`] of 64 bit-nets and relies on
//! aggressive constant folding plus structural hashing to collapse the upper
//! bits — signal values are stored masked, so an 8-bit signal contributes 56
//! constant-0 nets and the arithmetic above bit 7 folds away for free.
//!
//! All gate-construction helpers simplify eagerly:
//! identical operands, constant operands, and double negations never emit a
//! gate, and structurally identical gates are shared (hash-consing).

use std::collections::HashMap;

use crate::ir::{GateKind, NetId, Netlist};

/// Width of every builder lane. Matches the RTL simulator's `u64` values.
pub const LANE_WIDTH: usize = 64;

/// A 64-bit word as an array of bit nets, index 0 = LSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane(pub [NetId; LANE_WIDTH]);

impl Lane {
    /// Lane holding the constant 0.
    pub fn zero() -> Self {
        Lane([NetId::CONST0; LANE_WIDTH])
    }

    /// Bit net at position `i` (LSB = 0).
    pub fn bit(&self, i: usize) -> NetId {
        self.0[i]
    }

    /// The low `width` bits of this lane.
    pub fn low_bits(&self, width: usize) -> Vec<NetId> {
        self.0[..width.min(LANE_WIDTH)].to_vec()
    }
}

/// Builder that adds simplified, hash-consed logic to a [`Netlist`].
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::ir::Netlist;
///
/// let mut b = NetlistBuilder::new(Netlist::new("adder"));
/// let a = b.input_lane("a", 8);
/// let c = b.input_lane("b", 8);
/// let sum = b.add(a, c);
/// b.output_from_lane("y", sum, 8);
/// let netlist = b.finish();
/// assert!(netlist.validate().is_ok());
/// // 8-bit ripple-carry: the 56 upper bits folded to constants.
/// assert!(netlist.gates().len() < 60);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
    /// Constant value of a net, if known. Indexed by net id.
    consts: Vec<Option<bool>>,
    /// Structural hashing: (kind, inputs) -> existing output net.
    cse: HashMap<(GateKind, [NetId; 3]), NetId>,
    /// Involution cache: net -> its inverse, in both directions.
    inverses: HashMap<NetId, NetId>,
}

impl NetlistBuilder {
    /// Wraps an existing netlist (usually a fresh one).
    pub fn new(netlist: Netlist) -> Self {
        let mut consts = vec![None; netlist.net_count()];
        consts[NetId::CONST0.index()] = Some(false);
        consts[NetId::CONST1.index()] = Some(true);
        Self {
            netlist,
            consts,
            cse: HashMap::new(),
            inverses: HashMap::new(),
        }
    }

    /// Consumes the builder and returns the finished netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    /// Read-only view of the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Constant value of `net`, if the builder proved one.
    pub fn const_of(&self, net: NetId) -> Option<bool> {
        self.consts.get(net.index()).copied().flatten()
    }

    /// Constant value of a whole lane, if every bit is constant.
    pub fn lane_const(&self, lane: Lane) -> Option<u64> {
        let mut v = 0u64;
        for (i, &b) in lane.0.iter().enumerate() {
            if self.const_of(b)? {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// The net carrying constant `v`.
    pub fn const_net(&self, v: bool) -> NetId {
        if v {
            NetId::CONST1
        } else {
            NetId::CONST0
        }
    }

    /// Lane holding the 64-bit constant `value`.
    pub fn const_lane(&self, value: u64) -> Lane {
        let mut lane = Lane::zero();
        for (i, slot) in lane.0.iter_mut().enumerate() {
            *slot = self.const_net(value >> i & 1 == 1);
        }
        lane
    }

    /// Declares an input port and returns it as a zero-extended lane.
    pub fn input_lane(&mut self, name: &str, width: usize) -> Lane {
        let bits = self.netlist.add_input_port(name, width);
        self.grow_consts();
        let mut lane = Lane::zero();
        lane.0[..width].copy_from_slice(&bits);
        lane
    }

    /// Declares a fresh key bit and returns its net.
    pub fn key_bit(&mut self) -> NetId {
        let (_, net) = self.netlist.add_key_bit();
        self.grow_consts();
        net
    }

    /// Ensures at least `n` key input nets exist, so that netlist key bit
    /// `i` is `K[i]` regardless of the order key references are lowered.
    pub fn reserve_key_bits(&mut self, n: usize) {
        while self.netlist.key_width() < n {
            self.key_bit();
        }
    }

    /// Key bits `lsb..lsb+width` as a zero-extended lane, allocating key
    /// inputs as needed so that bit `i` of the netlist key is `K[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`LANE_WIDTH`] (a key *slice* is a lowered
    /// constant, which is at most 64 bits; whole-design keys can be wider
    /// and are reserved with [`NetlistBuilder::reserve_key_bits`]).
    pub fn key_slice_lane(&mut self, lsb: u32, width: u32) -> Lane {
        assert!(width as usize <= LANE_WIDTH, "key slice wider than a lane");
        self.reserve_key_bits((lsb + width) as usize);
        let mut lane = Lane::zero();
        for b in 0..width as usize {
            lane.0[b] = self.netlist.key_bits()[lsb as usize + b];
        }
        lane
    }

    /// Declares a flip-flop word of `width` bits and returns its state lane
    /// (zero-extended). Data inputs are connected later via
    /// [`NetlistBuilder::connect_dff_lane`].
    pub fn dff_lane(&mut self, width: usize) -> Lane {
        let mut lane = Lane::zero();
        for slot in lane.0.iter_mut().take(width) {
            *slot = self.netlist.add_dff();
        }
        self.grow_consts();
        lane
    }

    /// Connects the next-state lane of a flip-flop word declared with
    /// [`NetlistBuilder::dff_lane`].
    ///
    /// # Panics
    ///
    /// Panics if `q_lane` does not consist of flip-flop state nets.
    pub fn connect_dff_lane(&mut self, q_lane: Lane, d_lane: Lane, width: usize) {
        for i in 0..width {
            self.netlist
                .set_dff_data(q_lane.0[i], d_lane.0[i])
                .expect("q lane must be dff state nets");
        }
    }

    /// Binds the low `width` bits of `lane` to a fresh output port.
    pub fn output_from_lane(&mut self, name: &str, lane: Lane, width: usize) {
        self.netlist.add_output_port(name, lane.low_bits(width));
    }

    /// Masks a lane to `width` bits (upper bits become constant 0), the
    /// netlist analogue of the simulator's assignment masking.
    pub fn mask_lane(&self, lane: Lane, width: usize) -> Lane {
        let mut out = Lane::zero();
        out.0[..width.min(LANE_WIDTH)].copy_from_slice(&lane.0[..width.min(LANE_WIDTH)]);
        out
    }

    fn grow_consts(&mut self) {
        self.consts.resize(self.netlist.net_count(), None);
    }

    fn raw_gate(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let mut key = [NetId::CONST0; 3];
        key[..inputs.len()].copy_from_slice(&inputs);
        if let Some(&out) = self.cse.get(&(kind, key)) {
            return out;
        }
        let out = self.netlist.add_gate(kind, inputs);
        self.grow_consts();
        self.cse.insert((kind, key), out);
        out
    }

    // ---- bit-level constructors with simplification --------------------

    /// NOT with folding and involution sharing.
    pub fn not(&mut self, a: NetId) -> NetId {
        if let Some(v) = self.const_of(a) {
            return self.const_net(!v);
        }
        if let Some(&inv) = self.inverses.get(&a) {
            return inv;
        }
        let out = self.raw_gate(GateKind::Not, vec![a]);
        self.inverses.insert(a, out);
        self.inverses.insert(out, a);
        out
    }

    /// AND with folding: `a&0=0`, `a&1=a`, `a&a=a`, `a&!a=0`.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        let (a, b) = sort2(a, b);
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return NetId::CONST0,
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.inverses.get(&a) == Some(&b) {
            return NetId::CONST0;
        }
        self.raw_gate(GateKind::And, vec![a, b])
    }

    /// OR with folding: `a|1=1`, `a|0=a`, `a|a=a`, `a|!a=1`.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        let (a, b) = sort2(a, b);
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return NetId::CONST1,
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.inverses.get(&a) == Some(&b) {
            return NetId::CONST1;
        }
        self.raw_gate(GateKind::Or, vec![a, b])
    }

    /// XOR with folding: `a^0=a`, `a^1=!a`, `a^a=0`, `a^!a=1`.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        let (a, b) = sort2(a, b);
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return NetId::CONST0;
        }
        if self.inverses.get(&a) == Some(&b) {
            return NetId::CONST1;
        }
        self.raw_gate(GateKind::Xor, vec![a, b])
    }

    /// XNOR via XOR + inversion folding.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// MUX `sel ? a : b` with folding: constant select, equal branches, and
    /// boolean-shortcut branches.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        match self.const_of(sel) {
            Some(true) => return a,
            Some(false) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), Some(false)) => return sel,
            (Some(false), Some(true)) => return self.not(sel),
            (Some(true), None) => return self.or(sel, b),
            (Some(false), None) => {
                let ns = self.not(sel);
                return self.and(ns, b);
            }
            (None, Some(true)) => {
                let ns = self.not(sel);
                return self.or(ns, a);
            }
            (None, Some(false)) => return self.and(sel, a),
            _ => {}
        }
        self.raw_gate(GateKind::Mux, vec![sel, a, b])
    }

    /// Full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(a, b);
        let t2 = self.and(axb, cin);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    // ---- word-level operations (all wrap at 64 bits) --------------------

    /// Per-bit NOT of a lane (upper constant-0 bits become constant 1, as in
    /// the simulator's 64-bit `!v`).
    pub fn not_lane(&mut self, a: Lane) -> Lane {
        let mut out = Lane::zero();
        for i in 0..LANE_WIDTH {
            out.0[i] = self.not(a.0[i]);
        }
        out
    }

    /// Per-bit binary op on two lanes.
    fn zip_lane(&mut self, a: Lane, b: Lane, f: fn(&mut Self, NetId, NetId) -> NetId) -> Lane {
        let mut out = Lane::zero();
        for i in 0..LANE_WIDTH {
            out.0[i] = f(self, a.0[i], b.0[i]);
        }
        out
    }

    /// Bitwise AND.
    pub fn and_lane(&mut self, a: Lane, b: Lane) -> Lane {
        self.zip_lane(a, b, Self::and)
    }

    /// Bitwise OR.
    pub fn or_lane(&mut self, a: Lane, b: Lane) -> Lane {
        self.zip_lane(a, b, Self::or)
    }

    /// Bitwise XOR.
    pub fn xor_lane(&mut self, a: Lane, b: Lane) -> Lane {
        self.zip_lane(a, b, Self::xor)
    }

    /// Bitwise XNOR (64-bit, so upper bits of narrow operands become 1).
    pub fn xnor_lane(&mut self, a: Lane, b: Lane) -> Lane {
        self.zip_lane(a, b, Self::xnor)
    }

    /// Per-bit MUX of two lanes.
    pub fn mux_lane(&mut self, sel: NetId, a: Lane, b: Lane) -> Lane {
        let mut out = Lane::zero();
        for i in 0..LANE_WIDTH {
            out.0[i] = self.mux(sel, a.0[i], b.0[i]);
        }
        out
    }

    /// OR-reduction: 1 iff any bit of `a` is 1 (the simulator's `v != 0`).
    pub fn or_reduce(&mut self, a: Lane) -> NetId {
        let mut acc = NetId::CONST0;
        for i in 0..LANE_WIDTH {
            acc = self.or(acc, a.0[i]);
        }
        acc
    }

    /// Wrapping 64-bit addition (ripple carry).
    pub fn add(&mut self, a: Lane, b: Lane) -> Lane {
        self.add_with_carry(a, b, NetId::CONST0).0
    }

    /// Ripple-carry addition with explicit carry-in; returns `(sum, cout)`.
    pub fn add_with_carry(&mut self, a: Lane, b: Lane, cin: NetId) -> (Lane, NetId) {
        let mut out = Lane::zero();
        let mut carry = cin;
        for i in 0..LANE_WIDTH {
            let (s, c) = self.full_adder(a.0[i], b.0[i], carry);
            out.0[i] = s;
            carry = c;
        }
        (out, carry)
    }

    /// Wrapping 64-bit subtraction `a - b` as `a + !b + 1`.
    pub fn sub(&mut self, a: Lane, b: Lane) -> Lane {
        let nb = self.not_lane(b);
        self.add_with_carry(a, nb, NetId::CONST1).0
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: Lane) -> Lane {
        self.sub(Lane::zero(), a)
    }

    /// Unsigned `a < b` (borrow of `a - b`).
    pub fn lt(&mut self, a: Lane, b: Lane) -> NetId {
        let nb = self.not_lane(b);
        let (_, cout) = self.add_with_carry(a, nb, NetId::CONST1);
        // carry-out of a + ~b + 1 is 1 iff a >= b
        self.not(cout)
    }

    /// Equality over all 64 bits.
    pub fn eq(&mut self, a: Lane, b: Lane) -> NetId {
        let mut acc = NetId::CONST1;
        for i in 0..LANE_WIDTH {
            let x = self.xnor(a.0[i], b.0[i]);
            acc = self.and(acc, x);
        }
        acc
    }

    /// Boolean bit as a zero-extended lane.
    pub fn bit_lane(&self, bit: NetId) -> Lane {
        let mut lane = Lane::zero();
        lane.0[0] = bit;
        lane
    }

    /// Wrapping 64-bit multiplication (shift-and-add over the multiplier's
    /// non-constant-0 bits).
    pub fn mul(&mut self, a: Lane, b: Lane) -> Lane {
        let mut acc = self.const_lane(0);
        for i in 0..LANE_WIDTH {
            if self.const_of(b.0[i]) == Some(false) {
                continue;
            }
            // partial product: (a << i) AND-replicated with b[i]
            let mut pp = Lane::zero();
            for j in i..LANE_WIDTH {
                pp.0[j] = self.and(a.0[j - i], b.0[i]);
            }
            acc = self.add(acc, pp);
        }
        acc
    }

    /// Left shift by a variable amount (barrel shifter); amounts ≥ 64 give 0.
    pub fn shl(&mut self, a: Lane, amount: Lane) -> Lane {
        let mut cur = a;
        for k in 0..6 {
            let s = amount.0[k];
            if self.const_of(s) == Some(false) {
                continue;
            }
            let shift = 1usize << k;
            let mut shifted = Lane::zero();
            for j in shift..LANE_WIDTH {
                shifted.0[j] = cur.0[j - shift];
            }
            cur = self.mux_lane(s, shifted, cur);
        }
        self.zero_if_amount_overflows(cur, amount)
    }

    /// Right shift by a variable amount (barrel shifter); amounts ≥ 64 give 0.
    pub fn shr(&mut self, a: Lane, amount: Lane) -> Lane {
        let mut cur = a;
        for k in 0..6 {
            let s = amount.0[k];
            if self.const_of(s) == Some(false) {
                continue;
            }
            let shift = 1usize << k;
            let mut shifted = Lane::zero();
            for j in 0..LANE_WIDTH - shift {
                shifted.0[j] = cur.0[j + shift];
            }
            cur = self.mux_lane(s, shifted, cur);
        }
        self.zero_if_amount_overflows(cur, amount)
    }

    fn zero_if_amount_overflows(&mut self, value: Lane, amount: Lane) -> Lane {
        // any amount bit >= 6 set -> shift >= 64 -> result 0
        let mut big = NetId::CONST0;
        for i in 6..LANE_WIDTH {
            big = self.or(big, amount.0[i]);
        }
        let keep = self.not(big);
        let mut out = Lane::zero();
        for i in 0..LANE_WIDTH {
            out.0[i] = self.and(value.0[i], keep);
        }
        out
    }

    /// Unsigned restoring division; returns `(quotient, remainder)`, with the
    /// simulator's convention that division by zero yields `(0, 0)`.
    pub fn divmod(&mut self, a: Lane, b: Lane) -> (Lane, Lane) {
        let mut rem = self.const_lane(0);
        let mut quo = Lane::zero();
        for i in (0..LANE_WIDTH).rev() {
            // rem = (rem << 1) | a[i]
            let mut shifted = Lane::zero();
            for j in 1..LANE_WIDTH {
                shifted.0[j] = rem.0[j - 1];
            }
            shifted.0[0] = a.0[i];
            rem = shifted;
            // if rem >= b { rem -= b; q[i] = 1 }
            let ge = {
                let l = self.lt(rem, b);
                self.not(l)
            };
            let diff = self.sub(rem, b);
            rem = self.mux_lane(ge, diff, rem);
            quo.0[i] = ge;
        }
        // division by zero yields 0 for both quotient and remainder
        let bz = self.or_reduce(b);
        let mut q_out = Lane::zero();
        let mut r_out = Lane::zero();
        for i in 0..LANE_WIDTH {
            q_out.0[i] = self.and(quo.0[i], bz);
            r_out.0[i] = self.and(rem.0[i], bz);
        }
        (q_out, r_out)
    }

    /// Wrapping exponentiation with a *constant* exponent (square-and-
    /// multiply, exponent clamped to `u32::MAX` like the simulator).
    pub fn pow_const(&mut self, a: Lane, exponent: u64) -> Lane {
        let e = exponent.min(u32::MAX as u64) as u32;
        let mut result = self.const_lane(1);
        let mut square = a;
        let mut rest = e;
        while rest > 0 {
            if rest & 1 == 1 {
                result = self.mul(result, square);
            }
            rest >>= 1;
            if rest > 0 {
                square = self.mul(square, square);
            }
        }
        result
    }
}

fn sort2(a: NetId, b: NetId) -> (NetId, NetId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetlistSimulator;

    /// Builds a 2-input combinational netlist computing `f` and checks it
    /// against `expect` on a grid of values.
    fn check_binary(
        widths: (usize, usize),
        f: impl Fn(&mut NetlistBuilder, Lane, Lane) -> Lane,
        expect: impl Fn(u64, u64) -> u64,
    ) {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", widths.0);
        let c = b.input_lane("b", widths.1);
        let y = f(&mut b, a, c);
        b.output_from_lane("y", y, 64);
        let n = b.finish();
        n.validate().unwrap();
        let mut sim = NetlistSimulator::new(&n).unwrap();
        let mask_a = if widths.0 >= 64 {
            u64::MAX
        } else {
            (1 << widths.0) - 1
        };
        let mask_b = if widths.1 >= 64 {
            u64::MAX
        } else {
            (1 << widths.1) - 1
        };
        for av in [0u64, 1, 2, 3, 7, 12, 100, 255, 256, u64::MAX] {
            for bv in [0u64, 1, 2, 3, 5, 8, 63, 64, 200, u64::MAX] {
                let (av, bv) = (av & mask_a, bv & mask_b);
                sim.set_input("a", av).unwrap();
                sim.set_input("b", bv).unwrap();
                sim.settle().unwrap();
                assert_eq!(sim.output("y").unwrap(), expect(av, bv), "inputs {av} {bv}");
            }
        }
    }

    #[test]
    fn add_matches_wrapping_semantics() {
        check_binary((8, 8), |b, x, y| b.add(x, y), |x, y| x.wrapping_add(y));
        check_binary((64, 64), |b, x, y| b.add(x, y), |x, y| x.wrapping_add(y));
    }

    #[test]
    fn sub_wraps_to_full_64_bits() {
        check_binary((8, 8), |b, x, y| b.sub(x, y), |x, y| x.wrapping_sub(y));
    }

    #[test]
    fn mul_matches() {
        check_binary((8, 8), |b, x, y| b.mul(x, y), |x, y| x.wrapping_mul(y));
        check_binary((16, 4), |b, x, y| b.mul(x, y), |x, y| x.wrapping_mul(y));
    }

    #[test]
    fn divmod_matches_including_zero_divisor() {
        check_binary(
            (8, 8),
            |b, x, y| b.divmod(x, y).0,
            |x, y| x.checked_div(y).unwrap_or(0),
        );
        check_binary(
            (8, 8),
            |b, x, y| b.divmod(x, y).1,
            |x, y| x.checked_rem(y).unwrap_or(0),
        );
    }

    #[test]
    fn shifts_match_including_overflow_amounts() {
        check_binary(
            (8, 8),
            |b, x, y| b.shl(x, y),
            |x, y| if y >= 64 { 0 } else { x << y },
        );
        check_binary(
            (8, 8),
            |b, x, y| b.shr(x, y),
            |x, y| if y >= 64 { 0 } else { x >> y },
        );
    }

    #[test]
    fn comparisons_match() {
        check_binary(
            (8, 8),
            |b, x, y| {
                let bit = b.lt(x, y);
                b.bit_lane(bit)
            },
            |x, y| (x < y) as u64,
        );
        check_binary(
            (8, 8),
            |b, x, y| {
                let bit = b.eq(x, y);
                b.bit_lane(bit)
            },
            |x, y| (x == y) as u64,
        );
    }

    #[test]
    fn bitwise_ops_match_64_bit_semantics() {
        check_binary((8, 8), |b, x, y| b.xor_lane(x, y), |x, y| x ^ y);
        // XNOR on zero-extended operands sets the upper bits, like the sim.
        check_binary((8, 8), |b, x, y| b.xnor_lane(x, y), |x, y| !(x ^ y));
    }

    #[test]
    fn pow_const_matches() {
        for e in 0..6u64 {
            check_binary(
                (8, 1),
                |b, x, _| b.pow_const(x, e),
                |x, _| x.wrapping_pow(e as u32),
            );
        }
    }

    #[test]
    fn neg_and_not_match() {
        check_binary((8, 1), |b, x, _| b.neg(x), |x, _| x.wrapping_neg());
        check_binary((8, 1), |b, x, _| b.not_lane(x), |x, _| !x);
    }

    #[test]
    fn constant_folding_emits_no_gates_for_constant_inputs() {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let x = b.const_lane(25);
        let y = b.const_lane(17);
        let sum = b.add(x, y);
        assert_eq!(b.lane_const(sum), Some(42));
        let prod = b.mul(x, y);
        assert_eq!(b.lane_const(prod), Some(425));
        let (q, r) = b.divmod(x, y);
        assert_eq!(b.lane_const(q), Some(1));
        assert_eq!(b.lane_const(r), Some(8));
        assert!(b.finish().gates().is_empty());
    }

    #[test]
    fn hash_consing_shares_identical_gates() {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 2);
        let g1 = b.and(a.bit(0), a.bit(1));
        let g2 = b.and(a.bit(1), a.bit(0)); // commuted operands
        assert_eq!(g1, g2);
        assert_eq!(b.netlist().gates().len(), 1);
    }

    #[test]
    fn double_negation_folds() {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 1);
        let n1 = b.not(a.bit(0));
        let n2 = b.not(n1);
        assert_eq!(n2, a.bit(0));
    }

    #[test]
    fn mux_boolean_shortcuts() {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 3);
        let (s, x) = (a.bit(0), a.bit(1));
        assert_eq!(b.mux(NetId::CONST1, x, a.bit(2)), x);
        assert_eq!(b.mux(s, x, x), x);
        // sel ? 1 : b == sel | b
        let m = b.mux(s, NetId::CONST1, x);
        let o = b.or(s, x);
        assert_eq!(m, o);
    }
}
