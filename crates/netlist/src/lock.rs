//! Gate-level logic locking.
//!
//! Implements the traditional, post-synthesis locking family the paper
//! contrasts RTL locking against (Fig. 1 and §1): key gates are inserted
//! into an already-synthesized netlist with no semantic knowledge of the
//! design.
//!
//! Two schemes are provided:
//!
//! - [`xor_xnor_lock`] — EPIC-style random logic locking. A key bit of 0
//!   inserts an XOR gate on a wire, a key bit of 1 inserts an XNOR, so the
//!   correct key always restores the original signal. The *cell type alone*
//!   determines the key bit — the canonical structural leak that ML attacks
//!   exploit on gate-level locking (KPA ≈ 100 % for a structural attacker).
//! - [`mux_lock`] — key-controlled multiplexers choosing between the true
//!   wire and a decoy wire, the gate-level analogue of the paper's RTL
//!   operation obfuscation. Leakage now depends on how distinguishable true
//!   and decoy fan-ins are, not on the cell type.
//!
//! Both return a [`GateKey`] recording the inserted bits, so attacks can be
//! scored with the same KPA accounting as the RTL flow.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{NetlistError, Result};
use crate::ir::{GateKind, NetId, Netlist};

/// The correct key of a gate-level locked netlist, bit `i` = `K[i]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateKey {
    bits: Vec<bool>,
}

impl GateKey {
    /// Empty key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Key bits, index 0 = `K[0]`.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }
}

impl From<Vec<bool>> for GateKey {
    fn from(bits: Vec<bool>) -> Self {
        Self { bits }
    }
}

/// Which gate-level scheme to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateLockScheme {
    /// EPIC-style XOR/XNOR key gates (cell type leaks the key bit).
    XorXnor,
    /// Key-controlled MUX between the true wire and a random decoy.
    Mux,
}

/// Wires eligible for key-gate insertion: outputs of existing gates that can
/// influence an observation point. Dead gates are excluded (corrupting them
/// corrupts nothing), as are primary inputs so locking never bypasses the
/// logic it protects.
fn lockable_wires(netlist: &Netlist) -> Vec<NetId> {
    let cone = netlist.observable_cone();
    netlist
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|n| cone.contains(n))
        .collect()
}

/// Inserts `key_len` EPIC-style XOR/XNOR key gates on random wires.
///
/// For each selected wire `w` and random key bit `k`:
/// - `k = 0` → `XOR(w, K[i])` replaces `w` in all fanout,
/// - `k = 1` → `XNOR(w, K[i])` replaces `w` in all fanout.
///
/// With the correct key installed the netlist is functionally identical to
/// the input; any wrong bit inverts a wire.
///
/// # Errors
///
/// Returns [`NetlistError::Lock`] if the netlist has fewer gates than
/// requested key bits (each wire is locked at most once per call).
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::ir::Netlist;
/// use mlrl_netlist::lock::xor_xnor_lock;
/// use mlrl_netlist::equiv::check_netlists;
///
/// let mut b = NetlistBuilder::new(Netlist::new("t"));
/// let a = b.input_lane("a", 8);
/// let c = b.input_lane("b", 8);
/// let s = b.add(a, c);
/// b.output_from_lane("y", s, 8);
/// let original = b.finish();
///
/// let mut locked = original.clone();
/// let key = xor_xnor_lock(&mut locked, 4, 42)?;
/// let check = check_netlists(&original, &locked, &[], key.bits(), 100, 1)?;
/// assert!(check.is_equivalent());
/// # Ok::<(), mlrl_netlist::error::NetlistError>(())
/// ```
pub fn xor_xnor_lock(netlist: &mut Netlist, key_len: usize, seed: u64) -> Result<GateKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wires = lockable_wires(netlist);
    if wires.len() < key_len {
        return Err(NetlistError::Lock(format!(
            "requested {key_len} key bits but only {} lockable wires",
            wires.len()
        )));
    }
    wires.shuffle(&mut rng);
    let mut key = GateKey::new();
    for &wire in wires.iter().take(key_len) {
        let bit: bool = rng.gen();
        let (_, k) = netlist.add_key_bit();
        let fresh = netlist.add_net();
        let kind = if bit { GateKind::Xnor } else { GateKind::Xor };
        netlist.replace_uses(wire, fresh, None);
        netlist.add_gate_to(kind, vec![wire, k], fresh);
        key.push(bit);
    }
    netlist.validate()?;
    Ok(key)
}

/// Inserts `key_len` key-controlled MUX gates, each choosing between a true
/// wire and a random decoy wire.
///
/// For key bit 1 the true wire sits in the MUX's select-1 position, for key
/// bit 0 in the select-0 position — the same convention as the RTL ternary
/// locking of Fig. 3. The decoy is a random *other* gate output that is not
/// in the true wire's transitive fanout (to keep the netlist acyclic).
///
/// # Errors
///
/// Returns [`NetlistError::Lock`] if there are not enough distinct wires.
pub fn mux_lock(netlist: &mut Netlist, key_len: usize, seed: u64) -> Result<GateKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wires = lockable_wires(netlist);
    if wires.len() < key_len || wires.len() < 2 {
        return Err(NetlistError::Lock(format!(
            "requested {key_len} key bits but only {} lockable wires",
            wires.len()
        )));
    }
    wires.shuffle(&mut rng);
    let mut key = GateKey::new();
    // Maintained incrementally across insertions: each mux adds new paths
    // through its decoy, and a stale view could admit a combinational cycle.
    // Net-indexed dense adjacency (net -> reading gates); insertions below
    // grow the net space, so reads go through `fanout.get(..)`.
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); netlist.net_count()];
    for (i, g) in netlist.gates().iter().enumerate() {
        for inp in &g.inputs {
            fanout[inp.index()].push(i as u32);
        }
    }
    for &wire in wires.iter().take(key_len) {
        let forbidden = transitive_fanout(netlist, &fanout, wire);
        let decoy = match wires
            .iter()
            .copied()
            .filter(|&w| w != wire && !forbidden.contains(&w))
            .max_by_key(|_| rng.gen::<u32>())
        {
            Some(d) => d,
            // Wire feeds everything; fall back to a constant decoy.
            None => NetId::CONST0,
        };
        let bit: bool = rng.gen();
        let (_, k) = netlist.add_key_bit();
        let fresh = netlist.add_net();
        netlist.replace_uses(wire, fresh, None);
        // Mux inputs are [sel, a, b] -> sel ? a : b.
        let (a, b) = if bit { (wire, decoy) } else { (decoy, wire) };
        netlist.add_gate_to(GateKind::Mux, vec![k, a, b], fresh);
        // Update the fanout view: the old consumers of `wire` now hang off
        // `fresh`, and the new mux reads `wire`, `decoy`, and `k`.
        let gi = (netlist.gates().len() - 1) as u32;
        fanout.resize(netlist.net_count(), Vec::new());
        let moved = std::mem::take(&mut fanout[wire.index()]);
        fanout[fresh.index()] = moved;
        for input in [wire, decoy, k] {
            fanout[input.index()].push(gi);
        }
        key.push(bit);
    }
    netlist.validate()?;
    Ok(GateKey::from(key.bits().to_vec()))
}

/// Applies the selected scheme.
///
/// # Errors
///
/// Propagates the scheme's errors.
pub fn lock_netlist(
    netlist: &mut Netlist,
    scheme: GateLockScheme,
    key_len: usize,
    seed: u64,
) -> Result<GateKey> {
    match scheme {
        GateLockScheme::XorXnor => xor_xnor_lock(netlist, key_len, seed),
        GateLockScheme::Mux => mux_lock(netlist, key_len, seed),
    }
}

/// All nets reachable forward from `from` through gates (including `from`).
fn transitive_fanout(
    netlist: &Netlist,
    fanout: &[Vec<u32>],
    from: NetId,
) -> std::collections::HashSet<NetId> {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![from];
    while let Some(net) = stack.pop() {
        if !seen.insert(net) {
            continue;
        }
        if let Some(gates) = fanout.get(net.index()) {
            for &gi in gates {
                stack.push(netlist.gates()[gi as usize].output);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NetlistBuilder;
    use crate::equiv::check_netlists;
    use crate::sim::NetlistSimulator;

    fn sample_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.add(a, c);
        let m = b.mul(s, a);
        b.output_from_lane("y", m, 8);
        b.finish()
    }

    #[test]
    fn xor_xnor_lock_preserves_function_with_correct_key() {
        let original = sample_netlist();
        let mut locked = original.clone();
        let key = xor_xnor_lock(&mut locked, 8, 3).unwrap();
        assert_eq!(key.len(), 8);
        assert_eq!(locked.key_width(), 8);
        let r = check_netlists(&original, &locked, &[], key.bits(), 100, 9).unwrap();
        assert!(r.is_equivalent(), "{r:?}");
    }

    #[test]
    fn xor_xnor_lock_corrupts_with_wrong_key() {
        let original = sample_netlist();
        let mut locked = original.clone();
        let key = xor_xnor_lock(&mut locked, 8, 3).unwrap();
        let mut wrong = key.bits().to_vec();
        wrong[0] = !wrong[0];
        let r = check_netlists(&original, &locked, &[], &wrong, 100, 9).unwrap();
        assert!(!r.is_equivalent());
    }

    #[test]
    fn xor_gate_type_encodes_key_bit() {
        // The structural leak: inserted cell type == key bit value.
        let mut locked = sample_netlist();
        let before = locked.gates().len();
        let key = xor_xnor_lock(&mut locked, 16, 5).unwrap();
        let inserted = &locked.gates()[before..];
        for (gate, &bit) in inserted.iter().zip(key.bits()) {
            let expect = if bit { GateKind::Xnor } else { GateKind::Xor };
            assert_eq!(gate.kind, expect);
        }
    }

    #[test]
    fn mux_lock_preserves_function_with_correct_key() {
        let original = sample_netlist();
        let mut locked = original.clone();
        let key = mux_lock(&mut locked, 8, 7).unwrap();
        let r = check_netlists(&original, &locked, &[], key.bits(), 100, 2).unwrap();
        assert!(r.is_equivalent(), "{r:?}");
        // Netlist stays acyclic.
        assert!(NetlistSimulator::new(&locked).is_ok());
    }

    #[test]
    fn mux_lock_gate_type_is_key_independent() {
        let mut locked = sample_netlist();
        let before = locked.gates().len();
        let _key = mux_lock(&mut locked, 8, 7).unwrap();
        for gate in &locked.gates()[before..] {
            assert_eq!(gate.kind, GateKind::Mux);
        }
    }

    #[test]
    fn dense_mux_locking_stays_acyclic() {
        // Chained mux insertions create new paths through decoys; a stale
        // reachability view can admit a combinational cycle. Lock a large
        // fraction of a chain-heavy netlist to exercise exactly that.
        for seed in 0..10 {
            let mut locked = sample_netlist();
            locked.sweep();
            let budget = locked.gates().len() / 2;
            let key = mux_lock(&mut locked, budget, seed).unwrap();
            let sim = NetlistSimulator::new(&locked);
            assert!(sim.is_ok(), "seed {seed} produced a cycle");
            let original = sample_netlist();
            let r = check_netlists(&original, &locked, &[], key.bits(), 30, seed).unwrap();
            assert!(r.is_equivalent(), "seed {seed}: correct key must unlock");
        }
    }

    #[test]
    fn too_many_key_bits_is_an_error() {
        let mut n = sample_netlist();
        let gates = n.gates().len();
        assert!(matches!(
            xor_xnor_lock(&mut n, gates + 1, 0),
            Err(NetlistError::Lock(_))
        ));
    }

    #[test]
    fn locking_is_deterministic_per_seed() {
        let a = {
            let mut n = sample_netlist();
            (xor_xnor_lock(&mut n, 6, 11).unwrap(), n)
        };
        let b = {
            let mut n = sample_netlist();
            (xor_xnor_lock(&mut n, 6, 11).unwrap(), n)
        };
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
