//! Random-simulation equivalence checking between an RTL module and a
//! gate-level netlist (and between two netlists).
//!
//! Complements `mlrl_rtl::equiv` one level down: after lowering (or after
//! gate-level locking with the correct key installed) the two views must
//! agree on every output for every stimulus. Random vectors do not prove
//! equivalence, but across hundreds of 64-bit samples a lowering bug has
//! vanishing odds of hiding; the SAT substrate (`mlrl-sat`) offers the
//! complete decision procedure.
//!
//! The gate side batches vectors onto simulator lanes. The simulator width
//! is picked per call from [`configured_width`] clamped to the sample
//! count (a walk costs `W` word-ops per gate whether or not the lanes are
//! full, so small probes stay narrow). The stimulus stream is drawn
//! sample-major — all ports of a sample before the next sample — so the
//! RNG sequence, and therefore every canonical result, is identical at
//! every width.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlrl_rtl::ast::{Module, PortDir};
use mlrl_rtl::sim::Simulator;

use crate::error::{NetlistError, Result};
use crate::ir::Netlist;
use crate::sim::{pick_width, NetlistSimulator};

/// Outcome of a random-simulation cross-level check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheck {
    /// Number of stimulus vectors applied.
    pub samples: usize,
    /// Number of vectors on which some output diverged.
    pub mismatches: usize,
    /// First diverging output port, if any.
    pub first_mismatch: Option<String>,
}

impl CrossCheck {
    /// Whether every sample agreed on every output.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches == 0
    }
}

/// Runs `samples` random vectors through an RTL module and a netlist and
/// compares all outputs. Both sides receive the same `key`. Sequential
/// designs are clocked `ticks` edges per vector (0 = purely combinational
/// settle).
///
/// # Errors
///
/// Propagates construction and stimulus errors from either simulator;
/// returns [`NetlistError::Lower`] if the port lists disagree.
pub fn check_module_vs_netlist(
    module: &Module,
    netlist: &Netlist,
    key: &[bool],
    samples: usize,
    ticks: usize,
    seed: u64,
) -> Result<CrossCheck> {
    match pick_width(if ticks == 0 { samples } else { 0 }) {
        8 => check_module_vs_netlist_w::<8>(module, netlist, key, samples, ticks, seed),
        4 => check_module_vs_netlist_w::<4>(module, netlist, key, samples, ticks, seed),
        _ => check_module_vs_netlist_w::<1>(module, netlist, key, samples, ticks, seed),
    }
}

/// Width-pinned body of [`check_module_vs_netlist`]. Public so integration
/// tests can exercise explicit widths; results are width-independent.
#[doc(hidden)]
pub fn check_module_vs_netlist_w<const W: usize>(
    module: &Module,
    netlist: &Netlist,
    key: &[bool],
    samples: usize,
    ticks: usize,
    seed: u64,
) -> Result<CrossCheck> {
    for p in module.ports() {
        if netlist.port(&p.name).is_none() {
            return Err(NetlistError::Lower(format!(
                "netlist is missing port `{}`",
                p.name
            )));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rtl = Simulator::new(module).map_err(|e| NetlistError::Lower(e.to_string()))?;
    let mut gate = NetlistSimulator::<W>::with_width(netlist)?;
    rtl.set_key(key)
        .map_err(|e| NetlistError::Lower(e.to_string()))?;
    gate.set_key(key)?;

    let inputs: Vec<(String, u32)> = module
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input)
        .map(|p| (p.name.clone(), p.width))
        .collect();
    let outputs: Vec<String> = module
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .collect();

    let mut mismatches = 0;
    let mut first_mismatch = None;
    if ticks == 0 {
        // Combinational probe: the gate side batches up to 64*W vectors per
        // levelized walk; the RTL side replays the same vectors one by one.
        // The RNG draw order (sample-major, then port) matches the scalar
        // path exactly, so results are identical vector for vector.
        let mut done = 0usize;
        while done < samples {
            let lanes = (samples - done).min(NetlistSimulator::<W>::LANES);
            let mut vectors: Vec<Vec<u64>> = (0..inputs.len())
                .map(|_| Vec::with_capacity(lanes))
                .collect();
            for _ in 0..lanes {
                for (pi, (_, width)) in inputs.iter().enumerate() {
                    let v: u64 = rng.gen();
                    let v = if *width >= 64 {
                        v
                    } else {
                        v & ((1 << width) - 1)
                    };
                    vectors[pi].push(v);
                }
            }
            for (pi, (name, _)) in inputs.iter().enumerate() {
                gate.set_input_batch(name, &vectors[pi])?;
            }
            gate.settle_batch()?;
            #[allow(clippy::needless_range_loop)] // `lane` indexes the inner dim
            for lane in 0..lanes {
                for (pi, (name, _)) in inputs.iter().enumerate() {
                    rtl.set_input(name, vectors[pi][lane])
                        .map_err(|e| NetlistError::Lower(e.to_string()))?;
                }
                rtl.settle()
                    .map_err(|e| NetlistError::Lower(e.to_string()))?;
                let mut bad = false;
                for name in &outputs {
                    let rv = rtl
                        .get(name)
                        .map_err(|e| NetlistError::Lower(e.to_string()))?;
                    let gv = gate.output_lane(name, lane)?;
                    if rv != gv {
                        bad = true;
                        if first_mismatch.is_none() {
                            first_mismatch = Some(name.clone());
                        }
                    }
                }
                if bad {
                    mismatches += 1;
                }
            }
            done += lanes;
        }
    } else {
        // Sequential probe: state carries over from sample to sample, so
        // vectors cannot ride independent lanes; stay scalar.
        for _ in 0..samples {
            for (name, width) in &inputs {
                let v: u64 = rng.gen();
                let v = if *width >= 64 {
                    v
                } else {
                    v & ((1 << width) - 1)
                };
                rtl.set_input(name, v)
                    .map_err(|e| NetlistError::Lower(e.to_string()))?;
                gate.set_input(name, v)?;
            }
            for _ in 0..ticks {
                rtl.tick().map_err(|e| NetlistError::Lower(e.to_string()))?;
                gate.tick()?;
            }
            let mut bad = false;
            for name in &outputs {
                let rv = rtl
                    .get(name)
                    .map_err(|e| NetlistError::Lower(e.to_string()))?;
                let gv = gate.output(name)?;
                if rv != gv {
                    bad = true;
                    if first_mismatch.is_none() {
                        first_mismatch = Some(name.clone());
                    }
                }
            }
            if bad {
                mismatches += 1;
            }
        }
    }
    Ok(CrossCheck {
        samples,
        mismatches,
        first_mismatch,
    })
}

/// Runs `samples` random vectors through two netlists with (possibly
/// different) keys and compares all outputs. Used to verify that gate-level
/// locking preserves function under the correct key and corrupts it under
/// wrong keys.
///
/// # Errors
///
/// Propagates simulator errors; returns [`NetlistError::Lower`] if the port
/// lists disagree.
pub fn check_netlists(
    a: &Netlist,
    b: &Netlist,
    key_a: &[bool],
    key_b: &[bool],
    samples: usize,
    seed: u64,
) -> Result<CrossCheck> {
    match pick_width(samples) {
        8 => check_netlists_w::<8>(a, b, key_a, key_b, samples, seed),
        4 => check_netlists_w::<4>(a, b, key_a, key_b, samples, seed),
        _ => check_netlists_w::<1>(a, b, key_a, key_b, samples, seed),
    }
}

/// Width-pinned body of [`check_netlists`]. Public so integration tests can
/// exercise explicit widths; results are width-independent.
#[doc(hidden)]
pub fn check_netlists_w<const W: usize>(
    a: &Netlist,
    b: &Netlist,
    key_a: &[bool],
    key_b: &[bool],
    samples: usize,
    seed: u64,
) -> Result<CrossCheck> {
    for p in a.outputs() {
        if b.port(&p.name).is_none() {
            return Err(NetlistError::Lower(format!(
                "second netlist missing `{}`",
                p.name
            )));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sa = NetlistSimulator::<W>::with_width(a)?;
    let mut sb = NetlistSimulator::<W>::with_width(b)?;
    sa.set_key(key_a)?;
    sb.set_key(key_b)?;
    let mut mismatches = 0;
    let mut first_mismatch = None;
    // Both sides ride the lane words: one levelized walk per side per
    // 64*W vectors. The RNG draw order matches the scalar loop exactly.
    let mut done = 0usize;
    while done < samples {
        let lanes = (samples - done).min(NetlistSimulator::<W>::LANES);
        // Draw sample-major (all ports of a sample before the next sample)
        // to keep the vector stream identical to the scalar loop's.
        let mut vectors: Vec<Vec<u64>> = (0..a.inputs().len())
            .map(|_| Vec::with_capacity(lanes))
            .collect();
        for _ in 0..lanes {
            for (pi, p) in a.inputs().iter().enumerate() {
                let v: u64 = rng.gen();
                let v = if p.width() >= 64 {
                    v
                } else {
                    v & ((1 << p.width()) - 1)
                };
                vectors[pi].push(v);
            }
        }
        for (pi, p) in a.inputs().iter().enumerate() {
            sa.set_input_batch(&p.name, &vectors[pi])?;
            sb.set_input_batch(&p.name, &vectors[pi])?;
        }
        sa.settle_batch()?;
        sb.settle_batch()?;
        for lane in 0..lanes {
            let mut bad = false;
            for p in a.outputs() {
                if sa.output_lane(&p.name, lane)? != sb.output_lane(&p.name, lane)? {
                    bad = true;
                    if first_mismatch.is_none() {
                        first_mismatch = Some(p.name.clone());
                    }
                }
            }
            if bad {
                mismatches += 1;
            }
        }
        done += lanes;
    }
    Ok(CrossCheck {
        samples,
        mismatches,
        first_mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use mlrl_rtl::parser::parse_verilog;

    #[test]
    fn lowered_module_is_equivalent() {
        let m = parse_verilog(
            "module t(a, b, y);\n input [15:0] a, b;\n output [15:0] y;\n assign y = (a * b) ^ (a >> 3);\nendmodule",
        )
        .unwrap();
        let n = lower_module(&m).unwrap();
        let r = check_module_vs_netlist(&m, &n, &[], 200, 0, 7).unwrap();
        assert!(r.is_equivalent(), "{r:?}");
        assert_eq!(r.samples, 200);
    }

    #[test]
    fn sequential_design_is_equivalent_across_ticks() {
        let m = parse_verilog(
            "module t(clk, d, q);\n input clk;\n input [7:0] d;\n output [7:0] q;\n reg [7:0] r;\n assign q = r;\n always @(posedge clk) begin\n r <= d + r;\n end\nendmodule",
        )
        .unwrap();
        let n = lower_module(&m).unwrap();
        let r = check_module_vs_netlist(&m, &n, &[], 20, 3, 11).unwrap();
        assert!(r.is_equivalent(), "{r:?}");
    }

    #[test]
    fn detects_seeded_mismatch() {
        let m = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a + 1;\nendmodule",
        )
        .unwrap();
        let wrong = parse_verilog(
            "module t(a, y);\n input [7:0] a;\n output [7:0] y;\n assign y = a + 2;\nendmodule",
        )
        .unwrap();
        let n = lower_module(&wrong).unwrap();
        let r = check_module_vs_netlist(&m, &n, &[], 50, 0, 3).unwrap();
        assert!(!r.is_equivalent());
        assert_eq!(r.first_mismatch.as_deref(), Some("y"));
        assert_eq!(r.mismatches, 50);
    }

    #[test]
    fn widths_agree_on_results_and_rng_stream() {
        // Same seed, same samples, every width: identical CrossCheck — the
        // sample-major draw makes the chunk width invisible to the RNG.
        let m = parse_verilog(
            "module t(a, b, y);\n input [15:0] a, b;\n output [15:0] y;\n assign y = (a * b) ^ (a >> 3);\nendmodule",
        )
        .unwrap();
        let n = lower_module(&m).unwrap();
        let w1 = check_module_vs_netlist_w::<1>(&m, &n, &[], 300, 0, 7).unwrap();
        let w4 = check_module_vs_netlist_w::<4>(&m, &n, &[], 300, 0, 7).unwrap();
        let w8 = check_module_vs_netlist_w::<8>(&m, &n, &[], 300, 0, 7).unwrap();
        assert_eq!(w1, w4);
        assert_eq!(w1, w8);

        let wrong = parse_verilog(
            "module t(a, b, y);\n input [15:0] a, b;\n output [15:0] y;\n assign y = (a * b) ^ (a >> 2);\nendmodule",
        )
        .unwrap();
        let nw = lower_module(&wrong).unwrap();
        let c1 = check_netlists_w::<1>(&n, &nw, &[], &[], 300, 13).unwrap();
        let c4 = check_netlists_w::<4>(&n, &nw, &[], &[], 300, 13).unwrap();
        let c8 = check_netlists_w::<8>(&n, &nw, &[], &[], 300, 13).unwrap();
        assert_eq!(c1, c4);
        assert_eq!(c1, c8);
        assert!(!c1.is_equivalent());
    }
}
