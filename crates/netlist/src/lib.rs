//! # mlrl-netlist — gate-level substrate for ML-resilient logic locking
//!
//! The paper's threat model (§2.1) hands the attacker "a locked gate-level
//! netlist"; its motivation (Fig. 1) is that ML attacks demonstrably break
//! *gate-level* locking and asks whether the result extends to RTL. This
//! crate supplies that gate level:
//!
//! - a flat structural [netlist IR](ir) over single-bit nets with a small
//!   standard-cell-like gate set, flip-flops, and dedicated key inputs,
//! - a word-level [builder](build) with constant folding and structural
//!   hashing,
//! - a bit-exact [lowering](lower) from `mlrl_rtl` modules ("synthesis" in
//!   the paper's flow) under which RTL-locked designs stay locked,
//! - a levelized [simulator](sim) and random-stimulus [equivalence
//!   checks](equiv) against the RTL level,
//! - traditional [gate-level locking](lock) (EPIC-style XOR/XNOR key gates
//!   and key-controlled MUXes) — the baseline family the paper contrasts
//!   RTL locking against,
//! - a binaryen-style [optimization pass pipeline](opt) (constant
//!   folding, rewrite rules, structural hashing, dead-gate elimination)
//!   driven to a fixed point at selectable [`opt::OptLevel`]s,
//! - netlist [statistics](stats) and a [structural Verilog emitter](emit)
//!   that round-trips through the RTL parser.
//!
//! ## Quick example
//!
//! ```
//! use mlrl_rtl::parser::parse_verilog;
//! use mlrl_netlist::{equiv, lock, lower};
//!
//! // "Synthesize" an RTL design…
//! let m = parse_verilog("
//! module t(a, b, y);
//!   input [7:0] a, b;
//!   output [7:0] y;
//!   assign y = a * b + a;
//! endmodule")?;
//! let netlist = lower::lower_module(&m)?;
//!
//! // …lock it at gate level, and verify the key restores the function.
//! let mut locked = netlist.clone();
//! let key = lock::xor_xnor_lock(&mut locked, 8, 42)?;
//! let check = equiv::check_netlists(&netlist, &locked, &[], key.bits(), 100, 7)?;
//! assert!(check.is_equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Denied (not forbidden) so `sim::walk_tape` can carry the one sanctioned
// exception: runtime-dispatched `#[target_feature]` wrappers that let the
// multi-word kernels compile to AVX2/AVX-512 without global target flags.
#![deny(unsafe_code)]

pub mod build;
pub mod emit;
pub mod equiv;
pub mod error;
pub mod ir;
pub mod lock;
pub mod lower;
pub mod opt;
pub mod serdes;
pub mod sim;
pub mod stats;

pub use error::{NetlistError, Result};
pub use ir::{Gate, GateKind, NetId, Netlist};
