//! Gate-level netlist simulator — multi-word bit-parallel.
//!
//! Mirrors the RTL simulator's interface (`set_input` / `set_key` /
//! `settle` / `tick` / output reads) so the lowering can be validated by
//! running both levels side by side on the same stimulus.
//!
//! Every net holds `W` words of 64 independent boolean lanes (`[u64; W]`),
//! and gates evaluate bitwise over all words in one call
//! ([`GateKind::eval_words`]), so one levelized walk propagates up to
//! `64 * W` input vectors — or candidate keys — at once. `W` is a
//! const-generic width, defaulting to 1: `NetlistSimulator<'_>` is exactly
//! the old 64-lane simulator, and the wider instantiations
//! (`NetlistSimulator::<4>` → 256 lanes, `::<8>` → 512 lanes) are the same
//! single evaluation kernel with a longer word loop, which the compiler
//! autovectorizes (`[u64; 4]` ops lower to AVX2, `[u64; 8]` to AVX-512
//! where available). The scalar API is the 1-lane special case:
//! `set_input`/`set_key` broadcast a value into every lane and
//! `output`/`net` read lane 0, which keeps single-vector semantics
//! bit-identical to the old one-`bool`-per-net interpreter. The batch
//! entry points (`set_input_batch`, `set_key_batch`, `settle_batch`,
//! `output_lane`, `key_sweep_digests`) expose the remaining lanes to
//! training-set generation, random-stimulus equivalence proofs, and
//! wrong-key sweeps.
//!
//! At construction the netlist is compiled once into a flat, topologically
//! ordered gate tape over dense net indices (no per-gate pointer chasing
//! in the hot loop).

use std::sync::OnceLock;

use crate::error::{NetlistError, Result};
use crate::ir::{GateKind, NetId, Netlist, NO_DRIVER};

/// Number of boolean lanes per 64-bit word — the batch chunk unit. A
/// simulator of width `W` carries `W * LANES` lanes
/// ([`NetlistSimulator::LANES`]).
pub const LANES: usize = 64;

/// The simulator width picked at run time for width-dispatched call sites
/// (equivalence checks, key sweeps): reads `MLRL_SIM_WIDTH` once per
/// process (accepted values `1`, `4`, `8`; anything else falls back to the
/// default of 4 words = 256 lanes).
///
/// Callers still clamp down to the work actually available: a walk costs
/// `W` word-ops per gate regardless of how many lanes are live, so running
/// 25 samples at width 8 would do 8× the work of width 1 for the same
/// answer. Dispatchers therefore pick the widest configured width that a
/// workload can fill.
pub fn configured_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| match std::env::var("MLRL_SIM_WIDTH").ok().as_deref() {
        Some("1") => 1,
        Some("8") => 8,
        _ => 4,
    })
}

/// Picks the simulator width (in words) for a workload that needs
/// `lanes_needed` boolean lanes: the widest supported width that is both
/// allowed by [`configured_width`] and fully fillable by the workload.
/// Dispatchers match on the result and instantiate
/// `NetlistSimulator::<8>`, `::<4>`, or `::<1>` accordingly.
pub fn pick_width(lanes_needed: usize) -> usize {
    let needed = lanes_needed.div_ceil(64);
    let configured = configured_width();
    if configured >= 8 && needed >= 8 {
        8
    } else if configured >= 4 && needed >= 4 {
        4
    } else {
        1
    }
}

/// One compiled gate: kind plus dense net indices (unused inputs are 0,
/// which is the constant-0 net and never read for the kind's arity).
#[derive(Debug, Clone, Copy)]
struct GateOp {
    kind: GateKind,
    a: u32,
    b: u32,
    c: u32,
    out: u32,
}

/// A running simulation of one netlist, `64 * W` lanes wide.
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::ir::Netlist;
/// use mlrl_netlist::sim::NetlistSimulator;
///
/// let mut b = NetlistBuilder::new(Netlist::new("adder"));
/// let a = b.input_lane("a", 8);
/// let c = b.input_lane("b", 8);
/// let sum = b.add(a, c);
/// b.output_from_lane("y", sum, 8);
/// let n = b.finish();
///
/// let mut sim = NetlistSimulator::new(&n)?;
/// sim.set_input("a", 200)?;
/// sim.set_input("b", 100)?;
/// sim.settle()?;
/// assert_eq!(sim.output("y")?, 300 & 0xff);
/// # Ok::<(), mlrl_netlist::error::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistSimulator<'n, const W: usize = 1> {
    netlist: &'n Netlist,
    /// `W` 64-lane words per net.
    values: Vec<[u64; W]>,
    /// `W` 64-lane words per key bit.
    key: Vec<[u64; W]>,
    /// Gates compiled into topological evaluation order.
    tape: Vec<GateOp>,
    /// Flip-flop `(d, q)` net indices.
    dffs: Vec<(u32, u32)>,
    /// Reusable per-tick buffer of captured flip-flop data words.
    dff_next: Vec<[u64; W]>,
}

impl<'n> NetlistSimulator<'n> {
    /// Prepares a width-1 (64-lane) simulator: validates the netlist,
    /// levelizes its gates, and compiles the dense gate tape. Wider
    /// simulators come from [`NetlistSimulator::with_width`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if gates form a cycle and
    /// propagates [`Netlist::validate`] errors.
    pub fn new(netlist: &'n Netlist) -> Result<Self> {
        Self::with_width(netlist)
    }
}

impl<'n, const W: usize> NetlistSimulator<'n, W> {
    /// Total boolean lanes this simulator carries per net.
    pub const LANES: usize = 64 * W;

    /// Prepares a simulator of width `W` words (`64 * W` lanes):
    /// `NetlistSimulator::<4>::with_width(&n)` walks 256 vectors per
    /// settle. [`NetlistSimulator::new`] is the width-1 shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if gates form a cycle and
    /// propagates [`Netlist::validate`] errors.
    pub fn with_width(netlist: &'n Netlist) -> Result<Self> {
        netlist.validate()?;
        let order = levelize(netlist)?;
        let tape = order
            .into_iter()
            .map(|gi| {
                let g = &netlist.gates()[gi];
                GateOp {
                    kind: g.kind,
                    a: g.inputs[0].index() as u32,
                    b: g.inputs.get(1).map_or(0, |n| n.index() as u32),
                    c: g.inputs.get(2).map_or(0, |n| n.index() as u32),
                    out: g.output.index() as u32,
                }
            })
            .collect();
        let dffs = netlist
            .dffs()
            .iter()
            .map(|f| (f.d.index() as u32, f.q.index() as u32))
            .collect();
        let mut values = vec![[0u64; W]; netlist.net_count()];
        values[NetId::CONST1.index()] = [u64::MAX; W];
        Ok(Self {
            netlist,
            values,
            key: vec![[0; W]; netlist.key_width()],
            tape,
            dffs,
            dff_next: vec![[0; W]; netlist.dffs().len()],
        })
    }

    /// Resets every net (all lanes) to 0, as if freshly constructed. The
    /// installed key and the compiled gate tape are kept — the cheap way to
    /// reuse one simulator across independent trials.
    pub fn reset(&mut self) {
        self.values.fill([0; W]);
        self.values[NetId::CONST1.index()] = [u64::MAX; W];
    }

    /// Sets an input port value in *every* lane (masked to the port width).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<()> {
        let port = self
            .netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        for (i, &bit) in port.bits.iter().enumerate() {
            self.values[bit.index()] = broadcast(value >> i & 1 == 1);
        }
        Ok(())
    }

    /// Sets an input port to a different value per lane: lane `l` carries
    /// `values[l]`. Lanes beyond `values.len()` replicate the last entry,
    /// so every lane always holds a well-defined vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an input port
    /// and [`NetlistError::LaneOutOfRange`] if `values` is empty or wider
    /// than [`NetlistSimulator::LANES`].
    pub fn set_input_batch(&mut self, name: &str, values: &[u64]) -> Result<()> {
        Self::check_lanes(values.len())?;
        let port = self
            .netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        // Pivot lane-major values into bit-major net words one 64-lane
        // word at a time, loading each lane's value exactly once.
        let width = port.bits.len();
        let last = values.len() - 1;
        let mut cols = [0u64; 64];
        for w in 0..W {
            if width >= TRANSPOSE_MIN_WIDTH {
                for (l, col) in cols.iter_mut().enumerate() {
                    *col = values[(w * 64 + l).min(last)];
                }
                transpose64(&mut cols);
            } else {
                cols[..width].fill(0);
                for l in 0..64 {
                    let v = values[(w * 64 + l).min(last)];
                    for (i, col) in cols[..width].iter_mut().enumerate() {
                        *col |= (v >> i & 1) << l;
                    }
                }
            }
            for (i, &bit) in port.bits.iter().enumerate() {
                self.values[bit.index()][w] = cols[i];
            }
        }
        Ok(())
    }

    /// Installs the key bit vector (index 0 = `K[0]`) in every lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KeyTooShort`] if fewer bits are provided than
    /// the netlist consumes.
    pub fn set_key(&mut self, key: &[bool]) -> Result<()> {
        if key.len() < self.netlist.key_width() {
            return Err(NetlistError::KeyTooShort {
                required: self.netlist.key_width(),
                provided: key.len(),
            });
        }
        self.key.clear();
        self.key.extend(
            key[..self.netlist.key_width()]
                .iter()
                .map(|&b| broadcast(b)),
        );
        Ok(())
    }

    /// Installs a different key per lane — the key-sweep entry point: lane
    /// `l` simulates under `keys[l]`, so one settle evaluates up to
    /// `64 * W` candidate keys. Lanes beyond `keys.len()` replicate the
    /// last key.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KeyTooShort`] if any key is shorter than the
    /// netlist's key width and [`NetlistError::LaneOutOfRange`] if `keys`
    /// is empty or wider than [`NetlistSimulator::LANES`].
    pub fn set_key_batch(&mut self, keys: &[&[bool]]) -> Result<()> {
        Self::check_lanes(keys.len())?;
        let width = self.netlist.key_width();
        for key in keys {
            if key.len() < width {
                return Err(NetlistError::KeyTooShort {
                    required: width,
                    provided: key.len(),
                });
            }
        }
        self.key.clear();
        self.key.resize(width, [0; W]);
        // Same word-at-a-time transposition as `set_input_batch`: each
        // lane's key is walked once per word.
        let last = keys.len() - 1;
        for w in 0..W {
            for l in 0..64 {
                let key = keys[(w * 64 + l).min(last)];
                for (i, word) in self.key.iter_mut().enumerate() {
                    word[w] |= (key[i] as u64) << l;
                }
            }
        }
        Ok(())
    }

    /// Propagates all combinational logic once (one levelized pass over the
    /// compiled gate tape, all `64 * W` lanes in parallel).
    ///
    /// # Errors
    ///
    /// Infallible for a validated netlist; kept fallible for interface
    /// symmetry with the RTL simulator.
    pub fn settle(&mut self) -> Result<()> {
        mlrl_obs::counter_add("sim.settles", 1);
        mlrl_obs::counter_add("sim.lanes", Self::LANES as u64);
        for (i, &k) in self.netlist.key_bits().iter().enumerate() {
            self.values[k.index()] = self.key.get(i).copied().unwrap_or([0; W]);
        }
        walk_tape(&self.tape, &mut self.values);
        Ok(())
    }

    /// Synonym of [`NetlistSimulator::settle`] emphasizing the batch
    /// semantics at call sites whose lanes carry independent vectors: one
    /// topological walk evaluates all of them.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistSimulator::settle`].
    pub fn settle_batch(&mut self) -> Result<()> {
        self.settle()
    }

    /// Applies one clock edge: settles, captures every flip-flop's data
    /// input, commits all state atomically, then settles again. Each lane's
    /// state advances independently.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistSimulator::settle`] errors.
    pub fn tick(&mut self) -> Result<()> {
        self.settle()?;
        for (i, &(d, _)) in self.dffs.iter().enumerate() {
            self.dff_next[i] = self.values[d as usize];
        }
        for (i, &(_, q)) in self.dffs.iter().enumerate() {
            self.values[q as usize] = self.dff_next[i];
        }
        self.settle()
    }

    /// Current boolean value of a single net in lane 0.
    pub fn net(&self, net: NetId) -> bool {
        self.values[net.index()][0] & 1 == 1
    }

    /// Current first 64-lane word of a single net.
    pub fn net_word(&self, net: NetId) -> u64 {
        self.values[net.index()][0]
    }

    /// Current value of an output port in lane 0 as an integer (LSB-first
    /// bits).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an output port.
    pub fn output(&self, name: &str) -> Result<u64> {
        self.output_lane(name, 0)
    }

    /// Current value of an output port in the given lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an output
    /// port and [`NetlistError::LaneOutOfRange`] if
    /// `lane >= NetlistSimulator::LANES`.
    pub fn output_lane(&self, name: &str, lane: usize) -> Result<u64> {
        if lane >= Self::LANES {
            return Err(NetlistError::LaneOutOfRange {
                requested: lane,
                lanes: Self::LANES,
            });
        }
        let port = self
            .netlist
            .outputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        let mut v = 0u64;
        for (i, &bit) in port.bits.iter().enumerate() {
            v |= (self.values[bit.index()][lane / 64] >> (lane % 64) & 1) << i;
        }
        Ok(v)
    }

    /// Order-independent digest of every output-port value in lane 0,
    /// comparable with the RTL simulator's `outputs_digest` when ports
    /// match.
    pub fn outputs_digest(&self) -> Result<u64> {
        self.outputs_digest_lane(0)
    }

    /// Order-independent digest of every output-port value in one lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LaneOutOfRange`] if
    /// `lane >= NetlistSimulator::LANES`.
    pub fn outputs_digest_lane(&self, lane: usize) -> Result<u64> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for p in self.netlist.outputs() {
            digest ^= self.output_lane(&p.name, lane)?;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
        Ok(digest)
    }

    /// Output digests of the first `lanes` lanes in one pass — equal to
    /// calling [`NetlistSimulator::outputs_digest_lane`] per lane, but the
    /// ports are walked once (no per-lane name lookups) and each net word
    /// is loaded once, so reading all `64 * W` digests costs about as much
    /// as reading one.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LaneOutOfRange`] if `lanes` is zero or
    /// exceeds [`NetlistSimulator::LANES`].
    pub fn outputs_digest_batch(&self, lanes: usize) -> Result<Vec<u64>> {
        Self::check_lanes(lanes)?;
        let mut digests = vec![0xcbf2_9ce4_8422_2325u64; lanes];
        let mut rows = [0u64; 64];
        for p in self.netlist.outputs() {
            let width = p.bits.len();
            for w in 0..W {
                let base = w * 64;
                if base >= lanes {
                    break;
                }
                let block = lanes.min(base + 64) - base;
                if width >= TRANSPOSE_MIN_WIDTH {
                    rows.fill(0);
                    for (i, &bit) in p.bits.iter().enumerate() {
                        rows[i] = self.values[bit.index()][w];
                    }
                    transpose64(&mut rows);
                } else {
                    rows[..block].fill(0);
                    for (i, &bit) in p.bits.iter().enumerate() {
                        let word = self.values[bit.index()][w];
                        for (l, v) in rows[..block].iter_mut().enumerate() {
                            *v |= (word >> l & 1) << i;
                        }
                    }
                }
                for (d, &v) in digests[base..base + block].iter_mut().zip(&rows) {
                    *d ^= v;
                    *d = d.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        Ok(digests)
    }

    /// Key-sweep convenience: installs `keys` across the lanes, settles
    /// once, and returns one output digest per key — up to `64 * W`
    /// candidate keys evaluated in a single topological walk. Inputs keep
    /// whatever per-lane values were last installed.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistSimulator::set_key_batch`] errors.
    pub fn key_sweep_digests(&mut self, keys: &[&[bool]]) -> Result<Vec<u64>> {
        self.set_key_batch(keys)?;
        self.settle_batch()?;
        self.outputs_digest_batch(keys.len())
    }

    /// Forces a flip-flop state value by port-of-origin name lookup is not
    /// possible at gate level; sets the state net directly instead (every
    /// lane).
    pub fn set_state_net(&mut self, q: NetId, value: bool) {
        self.values[q.index()] = broadcast(value);
    }

    /// Rejects empty or over-wide batch slices.
    fn check_lanes(n: usize) -> Result<()> {
        if n == 0 || n > Self::LANES {
            return Err(NetlistError::LaneOutOfRange {
                requested: n,
                lanes: Self::LANES,
            });
        }
        Ok(())
    }
}

/// Expands one boolean into all `64 * W` lanes.
fn broadcast<const W: usize>(b: bool) -> [u64; W] {
    [if b { u64::MAX } else { 0 }; W]
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight fig. 7-6): after
/// the call, bit `c` of `a[r]` is bit `r` of the old `a[c]`. This is the
/// pivot between the two layouts the batch API straddles — lane-major
/// (one `u64` value per lane) and bit-major (one 64-lane word per port
/// bit) — at ~6 ops per word instead of one shift/or per bit per lane.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m = 0x0000_0000_ffff_ffffu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Port widths at or above this use [`transpose64`] in the batch entry
/// points; narrower ports stay on the direct bit loop, which does less
/// work than a full 64×64 transpose when only a few rows are live.
const TRANSPOSE_MIN_WIDTH: usize = 8;

/// One levelized pass over the compiled gate tape.
///
/// Dispatches once per walk to the widest SIMD level the CPU offers, so
/// the per-gate `[u64; W]` lane loops inside [`GateKind::eval_words`]
/// compile to AVX2 (4 lanes/op) or AVX-512 (8 lanes/op) vector code
/// instead of the x86-64 baseline — no global target flags, no non-std
/// dependency, and bit-identical results on every path (the kernels are
/// the same code monomorphized under wider features). Width 1 stays on
/// the scalar body: single-`u64` words gain nothing from vector units.
#[allow(unsafe_code)]
fn walk_tape<const W: usize>(tape: &[GateOp], values: &mut [[u64; W]]) {
    #[cfg(target_arch = "x86_64")]
    {
        if W >= 8 && is_x86_feature_detected!("avx512f") {
            // SAFETY: guarded by the avx512f runtime check above.
            return unsafe { walk_tape_avx512(tape, values) };
        }
        if W >= 4 && is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the avx2 runtime check above.
            return unsafe { walk_tape_avx2(tape, values) };
        }
    }
    walk_tape_body(tape, values);
}

/// [`walk_tape_body`] compiled with AVX-512 enabled: `[u64; 8]` lane
/// loops become single zmm operations. Only reachable behind the runtime
/// feature check in [`walk_tape`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx512f")]
unsafe fn walk_tape_avx512<const W: usize>(tape: &[GateOp], values: &mut [[u64; W]]) {
    walk_tape_body(tape, values);
}

/// [`walk_tape_body`] compiled with AVX2 enabled: `[u64; 4]` lane loops
/// become single ymm operations. Only reachable behind the runtime
/// feature check in [`walk_tape`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn walk_tape_avx2<const W: usize>(tape: &[GateOp], values: &mut [[u64; W]]) {
    walk_tape_body(tape, values);
}

#[inline(always)]
fn walk_tape_body<const W: usize>(tape: &[GateOp], values: &mut [[u64; W]]) {
    for op in tape {
        // Unused operand slots index the constant-0 net: loading them is
        // free and keeps a single shared eval_words kernel.
        let ins = [
            values[op.a as usize],
            values[op.b as usize],
            values[op.c as usize],
        ];
        values[op.out as usize] = op.kind.eval_words(&ins);
    }
}

/// Topologically orders gate indices so every gate is evaluated after its
/// combinational inputs. Flip-flop state nets are sources.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the gates form a cycle.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>> {
    let driver = netlist.driver_index();
    let n = netlist.gates().len();
    let mut order = Vec::with_capacity(n);
    // 0 = unvisited, 1 = in progress, 2 = done
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(start, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                state[i] = 2;
                order.push(i);
                continue;
            }
            if state[i] == 2 {
                continue;
            }
            if state[i] == 1 {
                return Err(NetlistError::CombinationalCycle(
                    netlist.gates()[i].output.0,
                ));
            }
            state[i] = 1;
            stack.push((i, true));
            for &inp in &netlist.gates()[i].inputs {
                let j = driver[inp.index()];
                if j != NO_DRIVER {
                    match state[j as usize] {
                        0 => stack.push((j as usize, false)),
                        1 => {
                            return Err(NetlistError::CombinationalCycle(inp.0));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn evaluates_simple_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        for (av, bv) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set_input("a", av).unwrap();
            sim.set_input("b", bv).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.output("y").unwrap(), av ^ bv);
        }
    }

    #[test]
    fn gates_evaluate_out_of_insertion_order() {
        // Insert the consumer gate before its producer.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let mid = n.add_net();
        let out = n.add_net();
        n.add_gate_to(GateKind::Not, vec![mid], out); // consumer first
        n.add_gate_to(GateKind::Not, vec![a], mid); // producer second
        n.add_output_port("y", vec![out]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
    }

    #[test]
    fn cycles_are_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let x = n.add_net();
        let y = n.add_net();
        n.add_gate_to(GateKind::And, vec![a, y], x);
        n.add_gate_to(GateKind::Buf, vec![x], y);
        n.add_output_port("y", vec![y]);
        assert!(matches!(
            NetlistSimulator::new(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn key_bits_drive_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let (_, k) = n.add_key_bit();
        let x = n.add_gate(GateKind::Xor, vec![a, k]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.set_key(&[true]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 0);
        sim.set_key(&[false]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
        assert!(matches!(
            NetlistSimulator::new(&n).unwrap().set_key(&[]),
            Err(NetlistError::KeyTooShort { .. })
        ));
    }

    #[test]
    fn dff_ticks_with_two_phase_commit() {
        // Two dffs swapping values: classic nonblocking-assignment check.
        let mut n = Netlist::new("t");
        let q0 = n.add_dff();
        let q1 = n.add_dff();
        n.set_dff_data(q0, q1).unwrap();
        n.set_dff_data(q1, q0).unwrap();
        n.add_output_port("a", vec![q0]);
        n.add_output_port("b", vec![q1]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_state_net(q0, true);
        sim.set_state_net(q1, false);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 0);
        assert_eq!(sim.output("b").unwrap(), 1);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 1);
        assert_eq!(sim.output("b").unwrap(), 0);
    }

    #[test]
    fn outputs_digest_changes_with_outputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 4);
        n.add_output_port("y", a.clone());
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 3).unwrap();
        sim.settle().unwrap();
        let d1 = sim.outputs_digest().unwrap();
        sim.set_input("a", 9).unwrap();
        sim.settle().unwrap();
        let d2 = sim.outputs_digest().unwrap();
        assert_ne!(d1, d2);
    }

    #[test]
    fn batched_inputs_evaluate_one_vector_per_lane() {
        // y = a + b over 8 bits; 64 different (a, b) pairs in one settle.
        let mut b = crate::build::NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.add(a, c);
        b.output_from_lane("y", s, 8);
        let n = b.finish();
        let mut sim = NetlistSimulator::new(&n).unwrap();
        let avs: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(37) & 0xff).collect();
        let bvs: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(91) & 0xff).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.set_input_batch("b", &bvs).unwrap();
        sim.settle_batch().unwrap();
        for lane in 0..64 {
            assert_eq!(
                sim.output_lane("y", lane).unwrap(),
                (avs[lane] + bvs[lane]) & 0xff,
                "lane {lane}"
            );
        }
        // Lane 0 of the batch is exactly the scalar read.
        assert_eq!(sim.output("y").unwrap(), (avs[0] + bvs[0]) & 0xff);
    }

    #[test]
    fn wide_sim_carries_one_vector_per_lane_past_64() {
        // The same adder at W=4: 256 distinct pairs in one settle, and the
        // lanes past the first word must agree with per-lane expectations.
        let mut b = crate::build::NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.add(a, c);
        b.output_from_lane("y", s, 8);
        let n = b.finish();
        let mut sim = NetlistSimulator::<4>::with_width(&n).unwrap();
        assert_eq!(NetlistSimulator::<4>::LANES, 256);
        let avs: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(37) & 0xff).collect();
        let bvs: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(91) & 0xff).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.set_input_batch("b", &bvs).unwrap();
        sim.settle_batch().unwrap();
        for lane in 0..256 {
            assert_eq!(
                sim.output_lane("y", lane).unwrap(),
                (avs[lane] + bvs[lane]) & 0xff,
                "lane {lane}"
            );
        }
        assert!(sim.output_lane("y", 256).is_err());
    }

    #[test]
    fn wide_key_sweep_matches_scalar_digests_past_64() {
        // 7-bit key space swept in one W=4 walk: 128 candidate keys, each
        // lane's digest must equal an independent scalar run.
        let mut b = crate::build::NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.mul(a, c);
        b.output_from_lane("y", s, 8);
        let mut n = b.finish();
        n.sweep();
        let _key = crate::lock::xor_xnor_lock(&mut n, 7, 99).unwrap();
        let keys: Vec<Vec<bool>> = (0..128u32)
            .map(|i| (0..7).map(|b| i >> b & 1 == 1).collect())
            .collect();
        let refs: Vec<&[bool]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut wide = NetlistSimulator::<4>::with_width(&n).unwrap();
        wide.set_input("a", 173).unwrap();
        wide.set_input("b", 91).unwrap();
        let digests = wide.key_sweep_digests(&refs).unwrap();
        assert_eq!(digests.len(), 128);
        for (key, digest) in keys.iter().zip(&digests) {
            let mut scalar = NetlistSimulator::new(&n).unwrap();
            scalar.set_input("a", 173).unwrap();
            scalar.set_input("b", 91).unwrap();
            scalar.set_key(key).unwrap();
            scalar.settle().unwrap();
            assert_eq!(scalar.outputs_digest().unwrap(), *digest);
        }
    }

    #[test]
    fn transpose64_matches_naive_bit_transpose() {
        let mut a = [0u64; 64];
        let mut x = 0x0123_4567_89ab_cdefu64;
        for v in a.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = x;
        }
        let orig = a;
        transpose64(&mut a);
        for (r, &row) in a.iter().enumerate() {
            for (c, &col) in orig.iter().enumerate() {
                assert_eq!(row >> c & 1, col >> r & 1, "({r},{c})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "transpose is an involution");
    }

    #[test]
    fn batch_digests_equal_per_lane_digests() {
        let mut b = crate::build::NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.mul(a, c);
        b.output_from_lane("y", s, 8);
        let n = b.finish();
        let mut sim = NetlistSimulator::<4>::with_width(&n).unwrap();
        let avs: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(37) & 0xff).collect();
        let bvs: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(91) & 0xff).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.set_input_batch("b", &bvs).unwrap();
        sim.settle_batch().unwrap();
        for lanes in [1, 63, 64, 65, 200, 256] {
            let batch = sim.outputs_digest_batch(lanes).unwrap();
            assert_eq!(batch.len(), lanes);
            for (lane, d) in batch.iter().enumerate() {
                assert_eq!(*d, sim.outputs_digest_lane(lane).unwrap(), "lane {lane}");
            }
        }
        assert!(sim.outputs_digest_batch(0).is_err());
        assert!(sim.outputs_digest_batch(257).is_err());
    }

    #[test]
    fn short_batches_replicate_the_last_lane() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 2);
        n.add_output_port("y", a.clone());
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input_batch("a", &[1, 2]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output_lane("y", 0).unwrap(), 1);
        for lane in 1..LANES {
            assert_eq!(sim.output_lane("y", lane).unwrap(), 2, "lane {lane}");
        }
    }

    #[test]
    fn key_sweep_evaluates_one_key_per_lane() {
        // y = a ^ k0, z = a ^ !k1: four candidate keys in one walk.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let (_, k0) = n.add_key_bit();
        let (_, k1) = n.add_key_bit();
        let y = n.add_gate(GateKind::Xor, vec![a, k0]);
        let nk1 = n.add_gate(GateKind::Not, vec![k1]);
        let z = n.add_gate(GateKind::Xor, vec![a, nk1]);
        n.add_output_port("y", vec![y]);
        n.add_output_port("z", vec![z]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        let keys: Vec<Vec<bool>> = (0..4).map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1]).collect();
        let refs: Vec<&[bool]> = keys.iter().map(|k| k.as_slice()).collect();
        let digests = sim.key_sweep_digests(&refs).unwrap();
        assert_eq!(digests.len(), 4);
        // Sweep digests must equal per-key scalar digests.
        for (key, digest) in keys.iter().zip(&digests) {
            let mut scalar = NetlistSimulator::new(&n).unwrap();
            scalar.set_input("a", 1).unwrap();
            scalar.set_key(key).unwrap();
            scalar.settle().unwrap();
            assert_eq!(scalar.outputs_digest().unwrap(), *digest, "key {key:?}");
        }
    }

    #[test]
    fn batched_lanes_tick_independently() {
        // A 1-bit accumulator q ^= a: lanes with a=1 toggle, lanes with
        // a=0 hold.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let q = n.add_dff();
        let d = n.add_gate(GateKind::Xor, vec![a, q]);
        n.set_dff_data(q, d).unwrap();
        n.add_output_port("y", vec![q]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        let avs: Vec<u64> = (0..64u64).map(|i| i & 1).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.tick().unwrap();
        sim.tick().unwrap();
        sim.tick().unwrap();
        for (lane, av) in avs.iter().enumerate() {
            assert_eq!(
                sim.output_lane("y", lane).unwrap(),
                *av, // 3 toggles = 1 for a=1, 0 for a=0
                "lane {lane}"
            );
        }
    }

    #[test]
    fn empty_and_oversized_batches_are_rejected() {
        let mut n = Netlist::new("t");
        n.add_input_port("a", 1);
        let c = NetId::CONST1;
        n.add_output_port("y", vec![c]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        assert!(sim.set_input_batch("a", &[]).is_err());
        assert!(sim.set_input_batch("a", &vec![0; LANES + 1]).is_err());
        assert!(sim.output_lane("y", LANES).is_err());
        // The W=4 instantiation accepts what W=1 rejects, up to its cap.
        let mut wide = NetlistSimulator::<4>::with_width(&n).unwrap();
        assert!(wide.set_input_batch("a", &vec![0; LANES + 1]).is_ok());
        assert!(wide.set_input_batch("a", &vec![0; 4 * LANES]).is_ok());
        assert!(wide.set_input_batch("a", &vec![0; 4 * LANES + 1]).is_err());
    }

    #[test]
    fn configured_width_is_a_supported_width() {
        assert!(matches!(configured_width(), 1 | 4 | 8));
    }
}
