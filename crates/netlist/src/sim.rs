//! Gate-level netlist simulator.
//!
//! Mirrors the RTL simulator's interface (`set_input` / `set_key` /
//! `settle` / `tick` / output reads) so the lowering can be validated by
//! running both levels side by side on the same stimulus.

use std::collections::HashMap;

use crate::error::{NetlistError, Result};
use crate::ir::{NetId, Netlist};

/// A running simulation of one netlist.
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::ir::Netlist;
/// use mlrl_netlist::sim::NetlistSimulator;
///
/// let mut b = NetlistBuilder::new(Netlist::new("adder"));
/// let a = b.input_lane("a", 8);
/// let c = b.input_lane("b", 8);
/// let sum = b.add(a, c);
/// b.output_from_lane("y", sum, 8);
/// let n = b.finish();
///
/// let mut sim = NetlistSimulator::new(&n)?;
/// sim.set_input("a", 200)?;
/// sim.set_input("b", 100)?;
/// sim.settle()?;
/// assert_eq!(sim.output("y")?, 300 & 0xff);
/// # Ok::<(), mlrl_netlist::error::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistSimulator<'n> {
    netlist: &'n Netlist,
    values: Vec<bool>,
    key: Vec<bool>,
    /// Gate indices in topological evaluation order.
    order: Vec<usize>,
}

impl<'n> NetlistSimulator<'n> {
    /// Prepares a simulator: validates the netlist and levelizes its gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if gates form a cycle and
    /// propagates [`Netlist::validate`] errors.
    pub fn new(netlist: &'n Netlist) -> Result<Self> {
        netlist.validate()?;
        let order = levelize(netlist)?;
        let mut values = vec![false; netlist.net_count()];
        values[NetId::CONST1.index()] = true;
        Ok(Self {
            netlist,
            values,
            key: vec![false; netlist.key_width()],
            order,
        })
    }

    /// Sets an input port value (masked to the port width).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<()> {
        let port = self
            .netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        for (i, &bit) in port.bits.iter().enumerate() {
            self.values[bit.index()] = value >> i & 1 == 1;
        }
        Ok(())
    }

    /// Installs the key bit vector (index 0 = `K[0]`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KeyTooShort`] if fewer bits are provided than
    /// the netlist consumes.
    pub fn set_key(&mut self, key: &[bool]) -> Result<()> {
        if key.len() < self.netlist.key_width() {
            return Err(NetlistError::KeyTooShort {
                required: self.netlist.key_width(),
                provided: key.len(),
            });
        }
        self.key = key[..self.netlist.key_width()].to_vec();
        Ok(())
    }

    /// Propagates all combinational logic once (levelized pass).
    ///
    /// # Errors
    ///
    /// Infallible for a validated netlist; kept fallible for interface
    /// symmetry with the RTL simulator.
    pub fn settle(&mut self) -> Result<()> {
        for (i, &k) in self.netlist.key_bits().iter().enumerate() {
            self.values[k.index()] = self.key.get(i).copied().unwrap_or(false);
        }
        for &gi in &self.order {
            let gate = &self.netlist.gates()[gi];
            let mut ins = [false; 3];
            for (j, &net) in gate.inputs.iter().enumerate() {
                ins[j] = self.values[net.index()];
            }
            self.values[gate.output.index()] = gate.kind.eval(&ins[..gate.inputs.len()]);
        }
        Ok(())
    }

    /// Applies one clock edge: settles, captures every flip-flop's data
    /// input, commits all state atomically, then settles again.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistSimulator::settle`] errors.
    pub fn tick(&mut self) -> Result<()> {
        self.settle()?;
        let next: Vec<(NetId, bool)> = self
            .netlist
            .dffs()
            .iter()
            .map(|f| (f.q, self.values[f.d.index()]))
            .collect();
        for (q, v) in next {
            self.values[q.index()] = v;
        }
        self.settle()
    }

    /// Current boolean value of a single net.
    pub fn net(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Current value of an output port as an integer (LSB-first bits).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an output port.
    pub fn output(&self, name: &str) -> Result<u64> {
        let port = self
            .netlist
            .outputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        let mut v = 0u64;
        for (i, &bit) in port.bits.iter().enumerate() {
            if self.values[bit.index()] {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Order-independent digest of every output-port value, comparable with
    /// the RTL simulator's `outputs_digest` when ports match.
    pub fn outputs_digest(&self) -> Result<u64> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for p in self.netlist.outputs() {
            digest ^= self.output(&p.name)?;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
        Ok(digest)
    }

    /// Forces a flip-flop state value by port-of-origin name lookup is not
    /// possible at gate level; sets the state net directly instead.
    pub fn set_state_net(&mut self, q: NetId, value: bool) {
        self.values[q.index()] = value;
    }
}

/// Topologically orders gate indices so every gate is evaluated after its
/// combinational inputs. Flip-flop state nets are sources.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the gates form a cycle.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>> {
    let driver: HashMap<NetId, usize> = netlist.driver_map();
    let n = netlist.gates().len();
    let mut order = Vec::with_capacity(n);
    // 0 = unvisited, 1 = in progress, 2 = done
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(start, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                state[i] = 2;
                order.push(i);
                continue;
            }
            if state[i] == 2 {
                continue;
            }
            if state[i] == 1 {
                return Err(NetlistError::CombinationalCycle(
                    netlist.gates()[i].output.0,
                ));
            }
            state[i] = 1;
            stack.push((i, true));
            for &inp in &netlist.gates()[i].inputs {
                if let Some(&j) = driver.get(&inp) {
                    match state[j] {
                        0 => stack.push((j, false)),
                        1 => {
                            return Err(NetlistError::CombinationalCycle(inp.0));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn evaluates_simple_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        for (av, bv) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set_input("a", av).unwrap();
            sim.set_input("b", bv).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.output("y").unwrap(), av ^ bv);
        }
    }

    #[test]
    fn gates_evaluate_out_of_insertion_order() {
        // Insert the consumer gate before its producer.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let mid = n.add_net();
        let out = n.add_net();
        n.add_gate_to(GateKind::Not, vec![mid], out); // consumer first
        n.add_gate_to(GateKind::Not, vec![a], mid); // producer second
        n.add_output_port("y", vec![out]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
    }

    #[test]
    fn cycles_are_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let x = n.add_net();
        let y = n.add_net();
        n.add_gate_to(GateKind::And, vec![a, y], x);
        n.add_gate_to(GateKind::Buf, vec![x], y);
        n.add_output_port("y", vec![y]);
        assert!(matches!(
            NetlistSimulator::new(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn key_bits_drive_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let (_, k) = n.add_key_bit();
        let x = n.add_gate(GateKind::Xor, vec![a, k]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.set_key(&[true]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 0);
        sim.set_key(&[false]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
        assert!(matches!(
            NetlistSimulator::new(&n).unwrap().set_key(&[]),
            Err(NetlistError::KeyTooShort { .. })
        ));
    }

    #[test]
    fn dff_ticks_with_two_phase_commit() {
        // Two dffs swapping values: classic nonblocking-assignment check.
        let mut n = Netlist::new("t");
        let q0 = n.add_dff();
        let q1 = n.add_dff();
        n.set_dff_data(q0, q1).unwrap();
        n.set_dff_data(q1, q0).unwrap();
        n.add_output_port("a", vec![q0]);
        n.add_output_port("b", vec![q1]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_state_net(q0, true);
        sim.set_state_net(q1, false);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 0);
        assert_eq!(sim.output("b").unwrap(), 1);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 1);
        assert_eq!(sim.output("b").unwrap(), 0);
    }

    #[test]
    fn outputs_digest_changes_with_outputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 4);
        n.add_output_port("y", a.clone());
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 3).unwrap();
        sim.settle().unwrap();
        let d1 = sim.outputs_digest().unwrap();
        sim.set_input("a", 9).unwrap();
        sim.settle().unwrap();
        let d2 = sim.outputs_digest().unwrap();
        assert_ne!(d1, d2);
    }
}
