//! Gate-level netlist simulator — 64-wide bit-parallel.
//!
//! Mirrors the RTL simulator's interface (`set_input` / `set_key` /
//! `settle` / `tick` / output reads) so the lowering can be validated by
//! running both levels side by side on the same stimulus.
//!
//! Every net holds a `u64` *word* of [`LANES`] independent boolean lanes,
//! and gates evaluate bitwise ([`GateKind::eval_word`]), so one levelized
//! walk propagates up to 64 input vectors — or 64 candidate keys — at
//! once. The scalar API is the 1-lane special case: `set_input`/`set_key`
//! broadcast a value into every lane and `output`/`net` read lane 0, which
//! keeps single-vector semantics bit-identical to the old one-`bool`-per-
//! net interpreter. The batch entry points (`set_input_batch`,
//! `set_key_batch`, `settle_batch`, `output_lane`, `key_sweep_digests`)
//! expose the other 63 lanes to training-set generation, random-stimulus
//! equivalence proofs, and wrong-key sweeps.
//!
//! At construction the netlist is compiled once into a flat, topologically
//! ordered gate tape over dense net indices (no per-gate `Vec` chasing in
//! the hot loop).

use std::collections::HashMap;

use crate::error::{NetlistError, Result};
use crate::ir::{GateKind, NetId, Netlist};

/// Number of independent boolean lanes per net word.
pub const LANES: usize = 64;

/// One compiled gate: kind plus dense net indices (unused inputs are 0,
/// which is the constant-0 net and never read for the kind's arity).
#[derive(Debug, Clone, Copy)]
struct GateOp {
    kind: GateKind,
    a: u32,
    b: u32,
    c: u32,
    out: u32,
}

/// A running simulation of one netlist.
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::ir::Netlist;
/// use mlrl_netlist::sim::NetlistSimulator;
///
/// let mut b = NetlistBuilder::new(Netlist::new("adder"));
/// let a = b.input_lane("a", 8);
/// let c = b.input_lane("b", 8);
/// let sum = b.add(a, c);
/// b.output_from_lane("y", sum, 8);
/// let n = b.finish();
///
/// let mut sim = NetlistSimulator::new(&n)?;
/// sim.set_input("a", 200)?;
/// sim.set_input("b", 100)?;
/// sim.settle()?;
/// assert_eq!(sim.output("y")?, 300 & 0xff);
/// # Ok::<(), mlrl_netlist::error::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistSimulator<'n> {
    netlist: &'n Netlist,
    /// One 64-lane word per net.
    values: Vec<u64>,
    /// One 64-lane word per key bit.
    key: Vec<u64>,
    /// Gates compiled into topological evaluation order.
    tape: Vec<GateOp>,
    /// Flip-flop `(d, q)` net indices.
    dffs: Vec<(u32, u32)>,
    /// Reusable per-tick buffer of captured flip-flop data words.
    dff_next: Vec<u64>,
}

impl<'n> NetlistSimulator<'n> {
    /// Prepares a simulator: validates the netlist, levelizes its gates,
    /// and compiles the dense gate tape.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if gates form a cycle and
    /// propagates [`Netlist::validate`] errors.
    pub fn new(netlist: &'n Netlist) -> Result<Self> {
        netlist.validate()?;
        let order = levelize(netlist)?;
        let tape = order
            .into_iter()
            .map(|gi| {
                let g = &netlist.gates()[gi];
                GateOp {
                    kind: g.kind,
                    a: g.inputs[0].index() as u32,
                    b: g.inputs.get(1).map_or(0, |n| n.index() as u32),
                    c: g.inputs.get(2).map_or(0, |n| n.index() as u32),
                    out: g.output.index() as u32,
                }
            })
            .collect();
        let dffs = netlist
            .dffs()
            .iter()
            .map(|f| (f.d.index() as u32, f.q.index() as u32))
            .collect();
        let mut values = vec![0u64; netlist.net_count()];
        values[NetId::CONST1.index()] = u64::MAX;
        Ok(Self {
            netlist,
            values,
            key: vec![0; netlist.key_width()],
            tape,
            dffs,
            dff_next: vec![0; netlist.dffs().len()],
        })
    }

    /// Resets every net (all lanes) to 0, as if freshly constructed. The
    /// installed key and the compiled gate tape are kept — the cheap way to
    /// reuse one simulator across independent trials.
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.values[NetId::CONST1.index()] = u64::MAX;
    }

    /// Sets an input port value in *every* lane (masked to the port width).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an input port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<()> {
        let port = self
            .netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        for (i, &bit) in port.bits.iter().enumerate() {
            self.values[bit.index()] = broadcast(value >> i & 1 == 1);
        }
        Ok(())
    }

    /// Sets an input port to a different value per lane: lane `l` carries
    /// `values[l]`. Lanes beyond `values.len()` replicate the last entry,
    /// so every lane always holds a well-defined vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an input port
    /// and [`NetlistError::LaneOutOfRange`] if `values` is empty or wider
    /// than [`LANES`].
    pub fn set_input_batch(&mut self, name: &str, values: &[u64]) -> Result<()> {
        check_lanes(values.len())?;
        let port = self
            .netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        for (i, &bit) in port.bits.iter().enumerate() {
            let mut word = 0u64;
            for lane in 0..LANES {
                let v = values[lane.min(values.len() - 1)];
                word |= (v >> i & 1) << lane;
            }
            self.values[bit.index()] = word;
        }
        Ok(())
    }

    /// Installs the key bit vector (index 0 = `K[0]`) in every lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KeyTooShort`] if fewer bits are provided than
    /// the netlist consumes.
    pub fn set_key(&mut self, key: &[bool]) -> Result<()> {
        if key.len() < self.netlist.key_width() {
            return Err(NetlistError::KeyTooShort {
                required: self.netlist.key_width(),
                provided: key.len(),
            });
        }
        self.key.clear();
        self.key.extend(
            key[..self.netlist.key_width()]
                .iter()
                .map(|&b| broadcast(b)),
        );
        Ok(())
    }

    /// Installs a different key per lane — the key-sweep entry point: lane
    /// `l` simulates under `keys[l]`, so one settle evaluates up to 64
    /// candidate keys. Lanes beyond `keys.len()` replicate the last key.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::KeyTooShort`] if any key is shorter than the
    /// netlist's key width and [`NetlistError::LaneOutOfRange`] if `keys`
    /// is empty or wider than [`LANES`].
    pub fn set_key_batch(&mut self, keys: &[&[bool]]) -> Result<()> {
        check_lanes(keys.len())?;
        let width = self.netlist.key_width();
        for key in keys {
            if key.len() < width {
                return Err(NetlistError::KeyTooShort {
                    required: width,
                    provided: key.len(),
                });
            }
        }
        self.key.clear();
        for i in 0..width {
            let mut word = 0u64;
            for lane in 0..LANES {
                let key = keys[lane.min(keys.len() - 1)];
                word |= (key[i] as u64) << lane;
            }
            self.key.push(word);
        }
        Ok(())
    }

    /// Propagates all combinational logic once (one levelized pass over the
    /// compiled gate tape, all 64 lanes in parallel).
    ///
    /// # Errors
    ///
    /// Infallible for a validated netlist; kept fallible for interface
    /// symmetry with the RTL simulator.
    pub fn settle(&mut self) -> Result<()> {
        for (i, &k) in self.netlist.key_bits().iter().enumerate() {
            self.values[k.index()] = self.key.get(i).copied().unwrap_or(0);
        }
        for op in &self.tape {
            let v = &mut self.values;
            // Unused operand slots index the constant-0 net: loading them
            // is free and keeps a single shared eval_word semantics.
            let ins = [v[op.a as usize], v[op.b as usize], v[op.c as usize]];
            v[op.out as usize] = op.kind.eval_word(&ins);
        }
        Ok(())
    }

    /// Synonym of [`NetlistSimulator::settle`] emphasizing the batch
    /// semantics at call sites whose lanes carry independent vectors: one
    /// topological walk evaluates all of them.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistSimulator::settle`].
    pub fn settle_batch(&mut self) -> Result<()> {
        self.settle()
    }

    /// Applies one clock edge: settles, captures every flip-flop's data
    /// input, commits all state atomically, then settles again. Each lane's
    /// state advances independently.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistSimulator::settle`] errors.
    pub fn tick(&mut self) -> Result<()> {
        self.settle()?;
        for (i, &(d, _)) in self.dffs.iter().enumerate() {
            self.dff_next[i] = self.values[d as usize];
        }
        for (i, &(_, q)) in self.dffs.iter().enumerate() {
            self.values[q as usize] = self.dff_next[i];
        }
        self.settle()
    }

    /// Current boolean value of a single net in lane 0.
    pub fn net(&self, net: NetId) -> bool {
        self.values[net.index()] & 1 == 1
    }

    /// Current 64-lane word of a single net.
    pub fn net_word(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Current value of an output port in lane 0 as an integer (LSB-first
    /// bits).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an output port.
    pub fn output(&self, name: &str) -> Result<u64> {
        self.output_lane(name, 0)
    }

    /// Current value of an output port in the given lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if `name` is not an output
    /// port and [`NetlistError::LaneOutOfRange`] if `lane >= LANES`.
    pub fn output_lane(&self, name: &str, lane: usize) -> Result<u64> {
        if lane >= LANES {
            return Err(NetlistError::LaneOutOfRange {
                requested: lane,
                lanes: LANES,
            });
        }
        let port = self
            .netlist
            .outputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))?;
        let mut v = 0u64;
        for (i, &bit) in port.bits.iter().enumerate() {
            v |= (self.values[bit.index()] >> lane & 1) << i;
        }
        Ok(v)
    }

    /// Order-independent digest of every output-port value in lane 0,
    /// comparable with the RTL simulator's `outputs_digest` when ports
    /// match.
    pub fn outputs_digest(&self) -> Result<u64> {
        self.outputs_digest_lane(0)
    }

    /// Order-independent digest of every output-port value in one lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LaneOutOfRange`] if `lane >= LANES`.
    pub fn outputs_digest_lane(&self, lane: usize) -> Result<u64> {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for p in self.netlist.outputs() {
            digest ^= self.output_lane(&p.name, lane)?;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
        Ok(digest)
    }

    /// Key-sweep convenience: installs `keys` across the lanes, settles
    /// once, and returns one output digest per key — up to 64 candidate
    /// keys evaluated in a single topological walk. Inputs keep whatever
    /// per-lane values were last installed.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistSimulator::set_key_batch`] errors.
    pub fn key_sweep_digests(&mut self, keys: &[&[bool]]) -> Result<Vec<u64>> {
        self.set_key_batch(keys)?;
        self.settle_batch()?;
        (0..keys.len())
            .map(|lane| self.outputs_digest_lane(lane))
            .collect()
    }

    /// Forces a flip-flop state value by port-of-origin name lookup is not
    /// possible at gate level; sets the state net directly instead (every
    /// lane).
    pub fn set_state_net(&mut self, q: NetId, value: bool) {
        self.values[q.index()] = broadcast(value);
    }
}

/// Expands one boolean into all 64 lanes.
fn broadcast(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

/// Rejects empty or over-wide batch slices.
fn check_lanes(n: usize) -> Result<()> {
    if n == 0 || n > LANES {
        return Err(NetlistError::LaneOutOfRange {
            requested: n,
            lanes: LANES,
        });
    }
    Ok(())
}

/// Topologically orders gate indices so every gate is evaluated after its
/// combinational inputs. Flip-flop state nets are sources.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the gates form a cycle.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>> {
    let driver: HashMap<NetId, usize> = netlist.driver_map();
    let n = netlist.gates().len();
    let mut order = Vec::with_capacity(n);
    // 0 = unvisited, 1 = in progress, 2 = done
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(start, false)];
        while let Some((i, children_done)) = stack.pop() {
            if children_done {
                state[i] = 2;
                order.push(i);
                continue;
            }
            if state[i] == 2 {
                continue;
            }
            if state[i] == 1 {
                return Err(NetlistError::CombinationalCycle(
                    netlist.gates()[i].output.0,
                ));
            }
            state[i] = 1;
            stack.push((i, true));
            for &inp in &netlist.gates()[i].inputs {
                if let Some(&j) = driver.get(&inp) {
                    match state[j] {
                        0 => stack.push((j, false)),
                        1 => {
                            return Err(NetlistError::CombinationalCycle(inp.0));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn evaluates_simple_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let b = n.add_input_port("b", 1)[0];
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        for (av, bv) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set_input("a", av).unwrap();
            sim.set_input("b", bv).unwrap();
            sim.settle().unwrap();
            assert_eq!(sim.output("y").unwrap(), av ^ bv);
        }
    }

    #[test]
    fn gates_evaluate_out_of_insertion_order() {
        // Insert the consumer gate before its producer.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let mid = n.add_net();
        let out = n.add_net();
        n.add_gate_to(GateKind::Not, vec![mid], out); // consumer first
        n.add_gate_to(GateKind::Not, vec![a], mid); // producer second
        n.add_output_port("y", vec![out]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
    }

    #[test]
    fn cycles_are_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let x = n.add_net();
        let y = n.add_net();
        n.add_gate_to(GateKind::And, vec![a, y], x);
        n.add_gate_to(GateKind::Buf, vec![x], y);
        n.add_output_port("y", vec![y]);
        assert!(matches!(
            NetlistSimulator::new(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn key_bits_drive_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let (_, k) = n.add_key_bit();
        let x = n.add_gate(GateKind::Xor, vec![a, k]);
        n.add_output_port("y", vec![x]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        sim.set_key(&[true]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 0);
        sim.set_key(&[false]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output("y").unwrap(), 1);
        assert!(matches!(
            NetlistSimulator::new(&n).unwrap().set_key(&[]),
            Err(NetlistError::KeyTooShort { .. })
        ));
    }

    #[test]
    fn dff_ticks_with_two_phase_commit() {
        // Two dffs swapping values: classic nonblocking-assignment check.
        let mut n = Netlist::new("t");
        let q0 = n.add_dff();
        let q1 = n.add_dff();
        n.set_dff_data(q0, q1).unwrap();
        n.set_dff_data(q1, q0).unwrap();
        n.add_output_port("a", vec![q0]);
        n.add_output_port("b", vec![q1]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_state_net(q0, true);
        sim.set_state_net(q1, false);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 0);
        assert_eq!(sim.output("b").unwrap(), 1);
        sim.tick().unwrap();
        assert_eq!(sim.output("a").unwrap(), 1);
        assert_eq!(sim.output("b").unwrap(), 0);
    }

    #[test]
    fn outputs_digest_changes_with_outputs() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 4);
        n.add_output_port("y", a.clone());
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 3).unwrap();
        sim.settle().unwrap();
        let d1 = sim.outputs_digest().unwrap();
        sim.set_input("a", 9).unwrap();
        sim.settle().unwrap();
        let d2 = sim.outputs_digest().unwrap();
        assert_ne!(d1, d2);
    }

    #[test]
    fn batched_inputs_evaluate_one_vector_per_lane() {
        // y = a + b over 8 bits; 64 different (a, b) pairs in one settle.
        let mut b = crate::build::NetlistBuilder::new(Netlist::new("t"));
        let a = b.input_lane("a", 8);
        let c = b.input_lane("b", 8);
        let s = b.add(a, c);
        b.output_from_lane("y", s, 8);
        let n = b.finish();
        let mut sim = NetlistSimulator::new(&n).unwrap();
        let avs: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(37) & 0xff).collect();
        let bvs: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(91) & 0xff).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.set_input_batch("b", &bvs).unwrap();
        sim.settle_batch().unwrap();
        for lane in 0..64 {
            assert_eq!(
                sim.output_lane("y", lane).unwrap(),
                (avs[lane] + bvs[lane]) & 0xff,
                "lane {lane}"
            );
        }
        // Lane 0 of the batch is exactly the scalar read.
        assert_eq!(sim.output("y").unwrap(), (avs[0] + bvs[0]) & 0xff);
    }

    #[test]
    fn short_batches_replicate_the_last_lane() {
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 2);
        n.add_output_port("y", a.clone());
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input_batch("a", &[1, 2]).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.output_lane("y", 0).unwrap(), 1);
        for lane in 1..LANES {
            assert_eq!(sim.output_lane("y", lane).unwrap(), 2, "lane {lane}");
        }
    }

    #[test]
    fn key_sweep_evaluates_one_key_per_lane() {
        // y = a ^ k0, z = a ^ !k1: four candidate keys in one walk.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let (_, k0) = n.add_key_bit();
        let (_, k1) = n.add_key_bit();
        let y = n.add_gate(GateKind::Xor, vec![a, k0]);
        let nk1 = n.add_gate(GateKind::Not, vec![k1]);
        let z = n.add_gate(GateKind::Xor, vec![a, nk1]);
        n.add_output_port("y", vec![y]);
        n.add_output_port("z", vec![z]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        sim.set_input("a", 1).unwrap();
        let keys: Vec<Vec<bool>> = (0..4).map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1]).collect();
        let refs: Vec<&[bool]> = keys.iter().map(|k| k.as_slice()).collect();
        let digests = sim.key_sweep_digests(&refs).unwrap();
        assert_eq!(digests.len(), 4);
        // Sweep digests must equal per-key scalar digests.
        for (key, digest) in keys.iter().zip(&digests) {
            let mut scalar = NetlistSimulator::new(&n).unwrap();
            scalar.set_input("a", 1).unwrap();
            scalar.set_key(key).unwrap();
            scalar.settle().unwrap();
            assert_eq!(scalar.outputs_digest().unwrap(), *digest, "key {key:?}");
        }
    }

    #[test]
    fn batched_lanes_tick_independently() {
        // A 1-bit accumulator q ^= a: lanes with a=1 toggle, lanes with
        // a=0 hold.
        let mut n = Netlist::new("t");
        let a = n.add_input_port("a", 1)[0];
        let q = n.add_dff();
        let d = n.add_gate(GateKind::Xor, vec![a, q]);
        n.set_dff_data(q, d).unwrap();
        n.add_output_port("y", vec![q]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        let avs: Vec<u64> = (0..64u64).map(|i| i & 1).collect();
        sim.set_input_batch("a", &avs).unwrap();
        sim.tick().unwrap();
        sim.tick().unwrap();
        sim.tick().unwrap();
        for (lane, av) in avs.iter().enumerate() {
            assert_eq!(
                sim.output_lane("y", lane).unwrap(),
                *av, // 3 toggles = 1 for a=1, 0 for a=0
                "lane {lane}"
            );
        }
    }

    #[test]
    fn empty_and_oversized_batches_are_rejected() {
        let mut n = Netlist::new("t");
        n.add_input_port("a", 1);
        let c = NetId::CONST1;
        n.add_output_port("y", vec![c]);
        let mut sim = NetlistSimulator::new(&n).unwrap();
        assert!(sim.set_input_batch("a", &[]).is_err());
        assert!(sim.set_input_batch("a", &vec![0; LANES + 1]).is_err());
        assert!(sim.output_lane("y", LANES).is_err());
    }
}
