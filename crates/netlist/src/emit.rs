//! Structural Verilog emitter for gate-level netlists.
//!
//! Emits one continuous assignment per gate over single-bit wires, plus
//! word-level port declarations that concatenate the bit nets. The output is
//! within the subset accepted by `mlrl_rtl::parser`, which gives a free
//! cross-level round-trip check: emit the netlist, re-parse it as RTL, and
//! simulate both against each other.

use std::fmt::Write as _;

use crate::error::Result;
use crate::ir::{GateKind, NetId, Netlist};

fn net_name(netlist: &Netlist, net: NetId) -> String {
    if net == NetId::CONST0 {
        "1'b0".to_owned()
    } else if net == NetId::CONST1 {
        "1'b1".to_owned()
    } else if let Some(i) = netlist.key_bits().iter().position(|&k| k == net) {
        format!("K[{i}]")
    } else {
        format!("n{}", net.0)
    }
}

/// Emits a netlist as structural Verilog.
///
/// Word ports become `input`/`output` declarations plus per-bit unpacking /
/// packing assigns; each gate becomes one `assign` with the matching
/// operator (`~`, `&`, `|`, `^`, ternary for MUX); flip-flops become a
/// single clocked always block. A `clk` input is added iff the netlist is
/// sequential, and a `K` input iff it consumes key bits.
///
/// # Errors
///
/// Infallible today; kept fallible for interface stability.
///
/// # Examples
///
/// ```
/// use mlrl_netlist::build::NetlistBuilder;
/// use mlrl_netlist::emit::emit_structural_verilog;
/// use mlrl_netlist::ir::Netlist;
///
/// let mut b = NetlistBuilder::new(Netlist::new("t"));
/// let a = b.input_lane("a", 2);
/// let c = b.input_lane("b", 2);
/// let s = b.xor_lane(a, c);
/// b.output_from_lane("y", s, 2);
/// let text = emit_structural_verilog(&b.finish())?;
/// assert!(text.contains("module t"));
/// assert!(text.contains("^"));
/// # Ok::<(), mlrl_netlist::error::NetlistError>(())
/// ```
pub fn emit_structural_verilog(netlist: &Netlist) -> Result<String> {
    let mut out = String::new();
    let has_dffs = !netlist.is_combinational();
    // A lowered sequential design usually already carries its RTL `clk`
    // input; only synthesize one when none exists.
    let needs_clk_port = has_dffs && !netlist.inputs().iter().any(|p| p.name == "clk");

    // Header.
    let mut port_names: Vec<String> = Vec::new();
    if needs_clk_port {
        port_names.push("clk".to_owned());
    }
    if netlist.key_width() > 0 {
        port_names.push("K".to_owned());
    }
    port_names.extend(netlist.inputs().iter().map(|p| p.name.clone()));
    port_names.extend(netlist.outputs().iter().map(|p| p.name.clone()));
    let _ = writeln!(out, "module {}({});", netlist.name(), port_names.join(", "));

    if needs_clk_port {
        let _ = writeln!(out, "  input clk;");
    }
    if netlist.key_width() > 0 {
        let _ = writeln!(out, "  input [{}:0] K;", netlist.key_width() - 1);
    }
    for p in netlist.inputs() {
        let _ = writeln!(
            out,
            "  input [{}:0] {};",
            p.width().saturating_sub(1),
            p.name
        );
    }
    for p in netlist.outputs() {
        let _ = writeln!(
            out,
            "  output [{}:0] {};",
            p.width().saturating_sub(1),
            p.name
        );
    }

    // Wire declarations: gate outputs are wires, dff states are regs.
    for g in netlist.gates() {
        let _ = writeln!(out, "  wire n{};", g.output.0);
    }
    for f in netlist.dffs() {
        let _ = writeln!(out, "  reg n{};", f.q.0);
    }

    // Input unpacking.
    for p in netlist.inputs() {
        for (i, &bit) in p.bits.iter().enumerate() {
            let _ = writeln!(out, "  wire n{};", bit.0);
            let _ = writeln!(out, "  assign n{} = {}[{}];", bit.0, p.name, i);
        }
    }

    // Gates.
    for g in netlist.gates() {
        let ins: Vec<String> = g.inputs.iter().map(|&n| net_name(netlist, n)).collect();
        let rhs = match g.kind {
            GateKind::Buf => ins[0].clone(),
            GateKind::Not => format!("~{}", ins[0]),
            GateKind::And => format!("{} & {}", ins[0], ins[1]),
            GateKind::Or => format!("{} | {}", ins[0], ins[1]),
            GateKind::Nand => format!("~({} & {})", ins[0], ins[1]),
            GateKind::Nor => format!("~({} | {})", ins[0], ins[1]),
            GateKind::Xor => format!("{} ^ {}", ins[0], ins[1]),
            GateKind::Xnor => format!("{} ~^ {}", ins[0], ins[1]),
            GateKind::Mux => format!("{} ? {} : {}", ins[0], ins[1], ins[2]),
        };
        let _ = writeln!(out, "  assign n{} = {};", g.output.0, rhs);
    }

    // Flip-flops.
    if has_dffs {
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for f in netlist.dffs() {
            let _ = writeln!(out, "    n{} <= {};", f.q.0, net_name(netlist, f.d));
        }
        let _ = writeln!(out, "  end");
    }

    // Output packing: build each output word from its bit nets.
    for p in netlist.outputs() {
        for (i, &bit) in p.bits.iter().enumerate() {
            let _ = writeln!(out, "  wire {}_b{};", p.name, i);
            let _ = writeln!(
                out,
                "  assign {}_b{} = {};",
                p.name,
                i,
                net_name(netlist, bit)
            );
        }
        // y = b0 | (b1 << 1) | ...
        let parts: Vec<String> = (0..p.width())
            .map(|i| {
                if i == 0 {
                    format!("{}_b0", p.name)
                } else {
                    format!("({}_b{} << {})", p.name, i, i)
                }
            })
            .collect();
        let _ = writeln!(out, "  assign {} = {};", p.name, parts.join(" | "));
    }

    let _ = writeln!(out, "endmodule");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NetlistBuilder;
    use crate::lock::xor_xnor_lock;
    use crate::sim::NetlistSimulator;
    use mlrl_rtl::parser::parse_verilog;
    use mlrl_rtl::sim::Simulator;

    #[test]
    fn emitted_netlist_reparses_and_matches() {
        let mut b = NetlistBuilder::new(NetlistBuilder::new(crate::ir::Netlist::new("t")).finish());
        let a = b.input_lane("a", 4);
        let c = b.input_lane("b", 4);
        let s = b.add(a, c);
        b.output_from_lane("y", s, 4);
        let n = b.finish();
        let text = emit_structural_verilog(&n).unwrap();
        let m = parse_verilog(&text).unwrap();
        let mut rtl = Simulator::new(&m).unwrap();
        let mut gate = NetlistSimulator::new(&n).unwrap();
        for (av, bv) in [(0u64, 0u64), (3, 5), (15, 15), (9, 8)] {
            rtl.set_input("a", av).unwrap();
            rtl.set_input("b", bv).unwrap();
            gate.set_input("a", av).unwrap();
            gate.set_input("b", bv).unwrap();
            rtl.settle().unwrap();
            gate.settle().unwrap();
            assert_eq!(rtl.get("y").unwrap(), gate.output("y").unwrap());
        }
    }

    #[test]
    fn locked_netlist_emits_key_port() {
        let mut b = NetlistBuilder::new(crate::ir::Netlist::new("t"));
        let a = b.input_lane("a", 2);
        let c = b.input_lane("b", 2);
        let s = b.and_lane(a, c);
        b.output_from_lane("y", s, 2);
        let mut n = b.finish();
        xor_xnor_lock(&mut n, 2, 1).unwrap();
        let text = emit_structural_verilog(&n).unwrap();
        assert!(text.contains("input [1:0] K;"));
        assert!(text.contains("K[0]"));
    }

    #[test]
    fn sequential_netlist_emits_always_block() {
        let mut n = crate::ir::Netlist::new("t");
        let q = n.add_dff();
        let d = n.add_gate(crate::ir::GateKind::Not, vec![q]);
        n.set_dff_data(q, d).unwrap();
        n.add_output_port("y", vec![q]);
        let text = emit_structural_verilog(&n).unwrap();
        assert!(text.contains("always @(posedge clk)"));
        assert!(text.contains("input clk;"));
    }
}
